//! Prefetch-lifecycle observability: the [`PrefetchLedger`].
//!
//! The aggregate prefetch counters in [`CacheStats`](crate::CacheStats)
//! (`pf_useful`, `pf_late`, `pf_useless`) say *how many* prefetches helped,
//! but not *which* predictions produced them, *who* triggered them, or *how
//! long* they were in flight. The ledger tracks every prefetch through its
//! full lifecycle:
//!
//! ```text
//! issued ──► in flight ──► filled ──► used timely     (pf_useful)
//!    │            │                   used late        (pf_late)
//!    │            └──────────────────► used late       (demand merged in flight)
//!    │                                 evicted unused  (pf_useless)
//!    └──► dropped (duplicate / MSHR)
//! ```
//!
//! and attributes each one to the prediction event that produced it
//! ([`PrefetchSource`]: Bingo's long `PC+Address` event, its voted short
//! `PC+Offset` event, or a multi-event cascade level) and to the trigger
//! PC, mirroring the paper's per-event quality analysis.
//!
//! **Zero cost when disabled.** The level is checked once per access
//! ([`PrefetchLedger::enabled`], a single branch on a two-variant check);
//! with [`TelemetryLevel::Off`] no record is ever allocated and the
//! simulated machine is untouched either way — telemetry observes fills and
//! evictions, it never changes them. `telemetry_on_is_invisible` in
//! `tests/telemetry.rs` locks the on/off miss streams bit-for-bit equal.
//!
//! **Agreement with the cache counters.** The ledger classifies a use as
//! timely or late by observing the same events that increment `pf_useful` /
//! `pf_late`, and closes unused records on the same evictions that
//! increment `pf_useless`, so at end of run `timely == pf_useful`,
//! `late == pf_late`, and `unused == pf_useless` exactly — including across
//! a warmup reset. This equality is test-locked, making the ledger a
//! cross-check of the attribution logic rather than a second opinion.

use std::collections::{HashMap, VecDeque};

/// How much prefetch-lifecycle instrumentation to collect.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum TelemetryLevel {
    /// No instrumentation; the hot path pays one branch per access.
    #[default]
    Off,
    /// Lifecycle counters plus per-source and per-PC attribution.
    Counts,
    /// [`Counts`](TelemetryLevel::Counts) plus a bounded ring buffer of
    /// recent lifecycle events for debugging.
    Trace,
}

impl TelemetryLevel {
    /// Whether any instrumentation is active.
    pub fn enabled(self) -> bool {
        self != TelemetryLevel::Off
    }

    /// Parses the spelling used by the `BINGO_TELEMETRY` knob
    /// (case-insensitive `off` / `counts` / `trace`); `None` on anything
    /// else so callers can abort loudly.
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(TelemetryLevel::Off),
            "counts" | "on" | "1" => Some(TelemetryLevel::Counts),
            "trace" | "2" => Some(TelemetryLevel::Trace),
            _ => None,
        }
    }
}

/// The prediction event that produced a prefetch, reported by the
/// prefetcher via [`Prefetcher::last_burst_source`] and threaded through
/// the ledger for per-event-kind accuracy.
///
/// [`Prefetcher::last_burst_source`]: crate::prefetch::Prefetcher::last_burst_source
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum PrefetchSource {
    /// The prefetcher does not attribute its predictions (baselines).
    #[default]
    Unattributed,
    /// Bingo's long event: an exact `PC+Address` history match.
    LongEvent,
    /// Bingo's short event: a `PC+Offset` match resolved by footprint
    /// voting.
    ShortVote,
    /// A multi-event cascade hit at the given table index (0 = longest
    /// event, in the configured lookup order).
    CascadeLevel(u8),
}

/// Number of per-source counter slots: unattributed, long, short, plus one
/// per cascade level (the event cascade is at most 5 tables deep).
const SOURCE_SLOTS: usize = 8;

impl PrefetchSource {
    /// Dense counter-slot index in `0..SOURCE_SLOTS`. Cascade levels
    /// beyond the deepest configured cascade share the last slot.
    fn slot(self) -> usize {
        match self {
            PrefetchSource::Unattributed => 0,
            PrefetchSource::LongEvent => 1,
            PrefetchSource::ShortVote => 2,
            PrefetchSource::CascadeLevel(i) => 3 + (i as usize).min(SOURCE_SLOTS - 4),
        }
    }

    /// Stable human-readable label, used in reports and the JSON export.
    pub fn label(self) -> &'static str {
        match self {
            PrefetchSource::Unattributed => "unattributed",
            PrefetchSource::LongEvent => "long",
            PrefetchSource::ShortVote => "short",
            PrefetchSource::CascadeLevel(0) => "cascade0",
            PrefetchSource::CascadeLevel(1) => "cascade1",
            PrefetchSource::CascadeLevel(2) => "cascade2",
            PrefetchSource::CascadeLevel(3) => "cascade3",
            PrefetchSource::CascadeLevel(_) => "cascade4+",
        }
    }

    fn of_slot(slot: usize) -> PrefetchSource {
        match slot {
            0 => PrefetchSource::Unattributed,
            1 => PrefetchSource::LongEvent,
            2 => PrefetchSource::ShortVote,
            i => PrefetchSource::CascadeLevel((i - 3) as u8),
        }
    }
}

/// Why an issued prefetch candidate never reached DRAM.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The block was already resident or in flight.
    Duplicate,
    /// No prefetch-eligible MSHR was available.
    MshrFull,
    /// The bounded prefetch queue had no free slot
    /// ([`SystemConfig::prefetch_queue_depth`](crate::SystemConfig)).
    QueueFull,
}

/// Lifecycle counters attributed to one prediction source or trigger PC.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SourceCounters {
    /// Prefetches issued toward DRAM.
    pub issued: u64,
    /// Filled and demanded before eviction (arrived in time).
    pub timely: u64,
    /// Demanded while still in flight (arrived late, partially covered).
    pub late: u64,
    /// Filled and evicted (or still resident at end of run) undemanded.
    pub unused: u64,
    /// Candidates filtered before issue (duplicate or MSHR-full).
    pub dropped: u64,
}

impl SourceCounters {
    /// Accuracy over this source's settled prefetches, with the paper's
    /// convention that late counts as useful. 0 when nothing settled.
    pub fn accuracy(&self) -> f64 {
        let used = self.timely + self.late;
        let judged = used + self.unused;
        if judged == 0 {
            0.0
        } else {
            used as f64 / judged as f64
        }
    }
}

/// One entry of the [`TelemetryLevel::Trace`] ring buffer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// Cycle of the transition.
    pub cycle: u64,
    /// Block the prefetch targeted.
    pub block: u64,
    /// Which transition happened.
    pub kind: LifecycleEventKind,
}

/// The lifecycle transition recorded by a [`LifecycleEvent`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LifecycleEventKind {
    /// Prefetch issued toward DRAM.
    Issued {
        /// Prediction source of the prefetch.
        source: PrefetchSource,
        /// Trigger PC.
        pc: u64,
    },
    /// Candidate filtered before issue.
    Dropped {
        /// Why it was filtered.
        reason: DropReason,
    },
    /// Fill landed in the cache.
    Filled,
    /// First demand touched the filled line.
    UsedTimely,
    /// Demand merged with the fill while in flight.
    UsedLate,
    /// Line evicted without ever being demanded.
    EvictedUnused,
}

/// Bound of the trace ring buffer: enough context to see what led up to a
/// condition without the memory footprint scaling with run length.
pub const TRACE_RING_CAPACITY: usize = 512;

/// Hot-list length of the per-trigger-PC report.
pub const HOT_PC_LIMIT: usize = 16;

/// One in-flight-or-resident prefetch the ledger is still tracking.
#[derive(Copy, Clone, Debug)]
struct OpenRecord {
    source: PrefetchSource,
    pc: u64,
    /// Core whose prefetcher issued this prefetch; per-core lifecycle
    /// credit goes to the issuer even when another core demands the block.
    core: usize,
    issued_at: u64,
    filled_at: Option<u64>,
    /// Whether the record's fill belongs to the measurement window. Records
    /// already *filled* when the warmup reset hits are excluded from
    /// end-of-run unused accounting, mirroring the cache's per-line
    /// `measured` flag; records still in flight will fill post-reset and
    /// stay measured.
    measured: bool,
}

/// Aggregate lifecycle counters (the unattributed totals).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
struct LedgerCounts {
    issued: u64,
    dropped_duplicate: u64,
    dropped_mshr: u64,
    dropped_queue: u64,
    timely: u64,
    late: u64,
    unused: u64,
    fills: u64,
    fill_latency_sum: u64,
    orphans: u64,
}

/// Per-prefetch lifecycle ledger, keyed by block address.
///
/// Owned by the memory system, which reports issues, drops, fills, uses,
/// and evictions; see the module docs for the lifecycle and the
/// equality guarantees against [`CacheStats`](crate::CacheStats).
#[derive(Debug)]
pub struct PrefetchLedger {
    level: TelemetryLevel,
    open: HashMap<u64, OpenRecord>,
    counts: LedgerCounts,
    by_source: [SourceCounters; SOURCE_SLOTS],
    by_pc: HashMap<u64, SourceCounters>,
    /// Per-issuing-core lifecycle counters on the shared LLC/DRAM path,
    /// indexed by core id and grown on demand. Deliberately *not* part of
    /// [`TelemetryReport`]: adding fields there would invalidate the
    /// committed differential-corpus golden results.
    by_core: Vec<SourceCounters>,
    ring: VecDeque<LifecycleEvent>,
    in_flight_at_end: u64,
}

impl PrefetchLedger {
    /// Creates a ledger at the given level. [`TelemetryLevel::Off`] costs
    /// nothing beyond the struct itself.
    pub fn new(level: TelemetryLevel) -> Self {
        PrefetchLedger {
            level,
            open: HashMap::new(),
            counts: LedgerCounts::default(),
            by_source: [SourceCounters::default(); SOURCE_SLOTS],
            by_pc: HashMap::new(),
            by_core: Vec::new(),
            ring: VecDeque::new(),
            in_flight_at_end: 0,
        }
    }

    /// Per-issuing-core lifecycle counters (index = core id). Cores that
    /// never issued a prefetch may be absent from the tail.
    pub fn by_core(&self) -> &[SourceCounters] {
        &self.by_core
    }

    fn core_mut(&mut self, core: usize) -> &mut SourceCounters {
        if self.by_core.len() <= core {
            self.by_core.resize(core + 1, SourceCounters::default());
        }
        &mut self.by_core[core]
    }

    /// The configured level.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Whether any instrumentation is active — the hot path's single
    /// branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level.enabled()
    }

    fn trace(&mut self, cycle: u64, block: u64, kind: LifecycleEventKind) {
        if self.level != TelemetryLevel::Trace {
            return;
        }
        if self.ring.len() == TRACE_RING_CAPACITY {
            self.ring.pop_front();
        }
        self.ring.push_back(LifecycleEvent { cycle, block, kind });
    }

    /// The trace ring buffer (empty below [`TelemetryLevel::Trace`]).
    pub fn events(&self) -> &VecDeque<LifecycleEvent> {
        &self.ring
    }

    /// Records a prefetch issued toward DRAM on behalf of `core`.
    pub fn issued(&mut self, core: usize, block: u64, pc: u64, source: PrefetchSource, cycle: u64) {
        if !self.enabled() {
            return;
        }
        self.counts.issued += 1;
        self.by_source[source.slot()].issued += 1;
        self.by_pc.entry(pc).or_default().issued += 1;
        self.core_mut(core).issued += 1;
        if let Some(stale) = self.open.insert(
            block,
            OpenRecord {
                source,
                pc,
                core,
                issued_at: cycle,
                filled_at: None,
                measured: true,
            },
        ) {
            // A fresh issue over a still-open record means the memory
            // system and the ledger disagree about the block's state
            // (possible only under injected faults or direct-drive tests
            // that bypass filtering). Never panic, never double-count:
            // the stale record is counted as an orphan and forgotten.
            let _ = stale;
            self.counts.orphans += 1;
        }
        self.trace(cycle, block, LifecycleEventKind::Issued { source, pc });
    }

    /// Records a candidate of `core` filtered before issue.
    pub fn dropped(
        &mut self,
        core: usize,
        block: u64,
        pc: u64,
        source: PrefetchSource,
        cycle: u64,
        reason: DropReason,
    ) {
        if !self.enabled() {
            return;
        }
        match reason {
            DropReason::Duplicate => self.counts.dropped_duplicate += 1,
            DropReason::MshrFull => self.counts.dropped_mshr += 1,
            DropReason::QueueFull => self.counts.dropped_queue += 1,
        }
        self.by_source[source.slot()].dropped += 1;
        self.by_pc.entry(pc).or_default().dropped += 1;
        self.core_mut(core).dropped += 1;
        self.trace(cycle, block, LifecycleEventKind::Dropped { reason });
    }

    /// Records a fill landing. A no-op unless the block has an open
    /// prefetch record (demand fills share this call site).
    pub fn filled(&mut self, block: u64, cycle: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(rec) = self.open.get_mut(&block) {
            if rec.filled_at.is_none() {
                rec.filled_at = Some(cycle);
                self.counts.fills += 1;
                self.counts.fill_latency_sum += cycle.saturating_sub(rec.issued_at);
                self.trace(cycle, block, LifecycleEventKind::Filled);
            }
        }
    }

    fn close(&mut self, block: u64) -> Option<OpenRecord> {
        let rec = self.open.remove(&block);
        if rec.is_none() {
            // A use/eviction for a block the ledger never saw issued:
            // counted, never fatal (see `issued` on desync).
            self.counts.orphans += 1;
        }
        rec
    }

    /// Records the first demand touch of a filled prefetched line
    /// (the event that increments `pf_useful`).
    pub fn used_timely(&mut self, block: u64, cycle: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(rec) = self.close(block) {
            self.counts.timely += 1;
            self.by_source[rec.source.slot()].timely += 1;
            self.by_pc.entry(rec.pc).or_default().timely += 1;
            self.core_mut(rec.core).timely += 1;
        }
        self.trace(cycle, block, LifecycleEventKind::UsedTimely);
    }

    /// Records a demand merging with a still-in-flight prefetch
    /// (the event that increments `pf_late`).
    pub fn used_late(&mut self, block: u64, cycle: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(rec) = self.close(block) {
            self.counts.late += 1;
            self.by_source[rec.source.slot()].late += 1;
            self.by_pc.entry(rec.pc).or_default().late += 1;
            self.core_mut(rec.core).late += 1;
        }
        self.trace(cycle, block, LifecycleEventKind::UsedLate);
    }

    /// Records the eviction of a never-demanded prefetched line
    /// (the event that increments `pf_useless`).
    pub fn evicted_unused(&mut self, block: u64, cycle: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(rec) = self.close(block) {
            self.counts.unused += 1;
            self.by_source[rec.source.slot()].unused += 1;
            self.by_pc.entry(rec.pc).or_default().unused += 1;
            self.core_mut(rec.core).unused += 1;
        }
        self.trace(cycle, block, LifecycleEventKind::EvictedUnused);
    }

    /// End-of-warmup reset: zeroes every counter (mirroring
    /// [`Cache::reset_stats`](crate::Cache::reset_stats)) while keeping
    /// open records, so prefetches spanning the warmup boundary still close
    /// correctly. Records already filled are marked pre-measurement so
    /// [`finalize`](PrefetchLedger::finalize) skips them, exactly like the
    /// cache's per-line `measured` flag.
    pub fn on_stats_reset(&mut self) {
        if !self.enabled() {
            return;
        }
        self.counts = LedgerCounts::default();
        self.by_source = [SourceCounters::default(); SOURCE_SLOTS];
        self.by_pc.clear();
        self.by_core.clear();
        self.ring.clear();
        self.in_flight_at_end = 0;
        for rec in self.open.values_mut() {
            if rec.filled_at.is_some() {
                rec.measured = false;
            }
        }
    }

    /// End-of-run settlement, paired with the drain that folds resident
    /// unused prefetched lines into `pf_useless`: every still-open record
    /// that was filled inside the measurement window counts as unused; the
    /// rest (still in flight, or filled pre-measurement) are dropped.
    /// Consumes the open set, so draining twice cannot double-count.
    pub fn finalize(&mut self) {
        if !self.enabled() {
            return;
        }
        let open = std::mem::take(&mut self.open);
        for (_, rec) in open {
            if rec.filled_at.is_none() {
                self.in_flight_at_end += 1;
            } else if rec.measured {
                self.counts.unused += 1;
                self.by_source[rec.source.slot()].unused += 1;
                self.by_pc.entry(rec.pc).or_default().unused += 1;
                self.core_mut(rec.core).unused += 1;
            }
        }
    }

    /// Builds the aggregate report; `None` when the ledger is off, so a
    /// disabled run is distinguishable from a run with zero prefetches.
    pub fn report(&self) -> Option<TelemetryReport> {
        if !self.enabled() {
            return None;
        }
        let by_source = (0..SOURCE_SLOTS)
            .filter(|&i| self.by_source[i] != SourceCounters::default())
            .map(|i| {
                (
                    PrefetchSource::of_slot(i).label().to_string(),
                    self.by_source[i],
                )
            })
            .collect();
        // Deterministic hot list: issued descending, PC ascending as the
        // tie break, truncated to HOT_PC_LIMIT.
        let mut hot_pcs: Vec<(u64, SourceCounters)> =
            self.by_pc.iter().map(|(&pc, &c)| (pc, c)).collect();
        hot_pcs.sort_by(|a, b| b.1.issued.cmp(&a.1.issued).then(a.0.cmp(&b.0)));
        hot_pcs.truncate(HOT_PC_LIMIT);
        Some(TelemetryReport {
            issued: self.counts.issued,
            dropped_duplicate: self.counts.dropped_duplicate,
            dropped_mshr: self.counts.dropped_mshr,
            dropped_queue: self.counts.dropped_queue,
            timely: self.counts.timely,
            late: self.counts.late,
            unused: self.counts.unused,
            fills: self.counts.fills,
            fill_latency_sum: self.counts.fill_latency_sum,
            in_flight_at_end: self.in_flight_at_end,
            orphans: self.counts.orphans,
            by_source,
            hot_pcs,
        })
    }
}

/// The aggregate prefetch-lifecycle report of one run, attached to
/// [`SimResult`](crate::SimResult) when telemetry is enabled.
///
/// All counts cover the measurement window (post-warmup). The aggregate
/// counters agree exactly with the LLC's `pf_*` counters (`timely ==
/// pf_useful`, `late == pf_late`, `unused == pf_useless`); what the report
/// adds is attribution (per prediction source, per trigger PC) and
/// in-flight latency.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Prefetches issued toward DRAM.
    pub issued: u64,
    /// Candidates dropped as duplicates (resident or in flight).
    pub dropped_duplicate: u64,
    /// Candidates dropped for lack of a prefetch-eligible MSHR.
    pub dropped_mshr: u64,
    /// Candidates dropped because the bounded prefetch queue was full.
    pub dropped_queue: u64,
    /// Settled as used-timely (== LLC `pf_useful`).
    pub timely: u64,
    /// Settled as used-late (== LLC `pf_late`).
    pub late: u64,
    /// Settled as unused (evicted undemanded or resident-unused at end of
    /// run; == LLC `pf_useless`).
    pub unused: u64,
    /// Prefetch fills observed (excludes prefetches demanded in flight,
    /// which settle at the merge, before their fill lands).
    pub fills: u64,
    /// Total issue-to-fill cycles over [`fills`](TelemetryReport::fills).
    pub fill_latency_sum: u64,
    /// Records still in flight when the run was finalized (0 after a full
    /// drain).
    pub in_flight_at_end: u64,
    /// Lifecycle transitions for blocks the ledger was not tracking —
    /// always 0 unless filtering was bypassed; never fatal.
    pub orphans: u64,
    /// Per-prediction-source counters, labeled, in a fixed source order
    /// (only sources with activity appear).
    pub by_source: Vec<(String, SourceCounters)>,
    /// Busiest trigger PCs by issued count (at most [`HOT_PC_LIMIT`]),
    /// deterministically ordered.
    pub hot_pcs: Vec<(u64, SourceCounters)>,
}

impl TelemetryReport {
    /// Fraction of *used* prefetches that arrived before their demand —
    /// the timeliness metric. 0 when nothing was used.
    pub fn timeliness(&self) -> f64 {
        let used = self.timely + self.late;
        if used == 0 {
            0.0
        } else {
            self.timely as f64 / used as f64
        }
    }

    /// Accuracy over settled prefetches (late counts as useful), matching
    /// [`CacheStats::accuracy`](crate::CacheStats::accuracy).
    pub fn accuracy(&self) -> f64 {
        let used = self.timely + self.late;
        let judged = used + self.unused;
        if judged == 0 {
            0.0
        } else {
            used as f64 / judged as f64
        }
    }

    /// Mean issue-to-fill latency in cycles over observed prefetch fills.
    pub fn avg_fill_latency(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.fill_latency_sum as f64 / self.fills as f64
        }
    }

    /// The counters attributed to a source label ("long", "short", ...).
    pub fn source(&self, label: &str) -> Option<&SourceCounters> {
        self.by_source
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_ledger() -> PrefetchLedger {
        PrefetchLedger::new(TelemetryLevel::Counts)
    }

    #[test]
    fn level_parsing() {
        assert_eq!(TelemetryLevel::parse("off"), Some(TelemetryLevel::Off));
        assert_eq!(
            TelemetryLevel::parse(" Counts "),
            Some(TelemetryLevel::Counts)
        );
        assert_eq!(TelemetryLevel::parse("TRACE"), Some(TelemetryLevel::Trace));
        assert_eq!(TelemetryLevel::parse("verbose"), None);
        assert!(!TelemetryLevel::Off.enabled());
        assert!(TelemetryLevel::Counts.enabled());
    }

    #[test]
    fn off_ledger_records_nothing_and_reports_none() {
        let mut led = PrefetchLedger::new(TelemetryLevel::Off);
        led.issued(0, 1, 0x400, PrefetchSource::LongEvent, 10);
        led.filled(1, 50);
        led.used_timely(1, 60);
        led.finalize();
        assert!(led.report().is_none());
        assert!(led.events().is_empty());
    }

    #[test]
    fn timely_lifecycle_attributes_source_and_pc() {
        let mut led = counting_ledger();
        led.issued(0, 7, 0x400, PrefetchSource::LongEvent, 10);
        led.filled(7, 100);
        led.used_timely(7, 150);
        led.finalize();
        let r = led.report().expect("counts level reports");
        assert_eq!((r.issued, r.timely, r.late, r.unused), (1, 1, 0, 0));
        assert_eq!(r.fills, 1);
        assert_eq!(r.fill_latency_sum, 90);
        assert_eq!(r.orphans, 0);
        assert_eq!(r.source("long").expect("long active").timely, 1);
        assert!(r.source("short").is_none(), "inactive sources are omitted");
        assert_eq!(r.hot_pcs, vec![(0x400, *r.source("long").unwrap())]);
        assert_eq!(r.timeliness(), 1.0);
        assert_eq!(r.accuracy(), 1.0);
    }

    #[test]
    fn late_use_settles_before_fill() {
        let mut led = counting_ledger();
        led.issued(0, 7, 0x400, PrefetchSource::ShortVote, 10);
        led.used_late(7, 20);
        // The fill still lands later, but the record is already settled.
        led.filled(7, 100);
        led.finalize();
        let r = led.report().unwrap();
        assert_eq!((r.timely, r.late, r.unused), (0, 1, 0));
        assert_eq!(r.fills, 0, "late prefetches settle before their fill");
        assert_eq!(r.timeliness(), 0.0);
        assert_eq!(r.accuracy(), 1.0, "late still counts as useful");
    }

    #[test]
    fn unused_eviction_and_end_of_run_residue() {
        let mut led = counting_ledger();
        led.issued(0, 1, 0xa, PrefetchSource::Unattributed, 0);
        led.filled(1, 10);
        led.evicted_unused(1, 99);
        // Second prefetch: filled, never used, still resident at drain.
        led.issued(0, 2, 0xa, PrefetchSource::Unattributed, 0);
        led.filled(2, 10);
        // Third prefetch: still in flight at drain.
        led.issued(0, 3, 0xa, PrefetchSource::Unattributed, 0);
        led.finalize();
        let r = led.report().unwrap();
        assert_eq!(r.unused, 2, "evicted + resident-unused both settle unused");
        assert_eq!(r.in_flight_at_end, 1);
        assert_eq!(r.accuracy(), 0.0);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut led = counting_ledger();
        led.issued(0, 1, 0xa, PrefetchSource::Unattributed, 0);
        led.filled(1, 10);
        led.finalize();
        led.finalize();
        assert_eq!(led.report().unwrap().unused, 1, "no double count");
    }

    #[test]
    fn drops_are_counted_per_reason() {
        let mut led = counting_ledger();
        led.dropped(
            0,
            1,
            0x4,
            PrefetchSource::LongEvent,
            0,
            DropReason::Duplicate,
        );
        led.dropped(
            0,
            2,
            0x4,
            PrefetchSource::LongEvent,
            0,
            DropReason::MshrFull,
        );
        led.dropped(
            0,
            3,
            0x4,
            PrefetchSource::LongEvent,
            0,
            DropReason::QueueFull,
        );
        let r = led.report().unwrap();
        assert_eq!(r.dropped_duplicate, 1);
        assert_eq!(r.dropped_mshr, 1);
        assert_eq!(r.dropped_queue, 1);
        assert_eq!(r.source("long").unwrap().dropped, 3);
    }

    #[test]
    fn orphan_transitions_never_panic_or_count_classes() {
        let mut led = counting_ledger();
        led.used_timely(42, 5); // never issued
        led.evicted_unused(43, 6); // never issued
        led.filled(44, 7); // no record: ignored entirely
                           // Re-issue over an open record.
        led.issued(0, 45, 0x4, PrefetchSource::ShortVote, 0);
        led.issued(0, 45, 0x4, PrefetchSource::ShortVote, 1);
        let r = led.report().unwrap();
        assert_eq!(r.orphans, 3);
        assert_eq!((r.timely, r.late, r.unused), (0, 0, 0));
        assert_eq!(r.issued, 2);
    }

    #[test]
    fn warmup_reset_zeroes_counters_but_keeps_open_records() {
        let mut led = counting_ledger();
        // Filled pre-reset: excluded from finalize.
        led.issued(0, 1, 0xa, PrefetchSource::LongEvent, 0);
        led.filled(1, 10);
        // In flight across the reset: fill lands post-reset, stays measured.
        led.issued(0, 2, 0xb, PrefetchSource::ShortVote, 5);
        led.on_stats_reset();
        assert_eq!(led.report().unwrap().issued, 0, "counters wiped");
        led.filled(2, 20);
        // Pre-reset-filled record still closes correctly if used.
        led.used_timely(1, 30);
        led.finalize();
        let r = led.report().unwrap();
        assert_eq!(r.timely, 1, "pre-warmup prefetch used post-warmup counts");
        assert_eq!(r.unused, 1, "post-reset fill settles unused at drain");
        assert_eq!(r.orphans, 0);
    }

    #[test]
    fn trace_ring_is_bounded_and_ordered() {
        let mut led = PrefetchLedger::new(TelemetryLevel::Trace);
        for i in 0..(TRACE_RING_CAPACITY as u64 + 100) {
            led.issued(0, i, 0x4, PrefetchSource::Unattributed, i);
        }
        assert_eq!(led.events().len(), TRACE_RING_CAPACITY);
        assert_eq!(led.events().front().unwrap().cycle, 100, "oldest dropped");
        assert_eq!(
            led.events().back().unwrap().cycle,
            TRACE_RING_CAPACITY as u64 + 99
        );
    }

    #[test]
    fn counts_level_keeps_no_ring() {
        let mut led = counting_ledger();
        led.issued(0, 1, 0x4, PrefetchSource::Unattributed, 0);
        assert!(led.events().is_empty());
    }

    #[test]
    fn hot_pc_list_is_deterministic_and_bounded() {
        let mut led = counting_ledger();
        for pc in 0..(HOT_PC_LIMIT as u64 + 10) {
            // Give PC 5 the most issues; everyone else one each.
            let n = if pc == 5 { 3 } else { 1 };
            for i in 0..n {
                led.issued(0, pc * 1000 + i, pc, PrefetchSource::Unattributed, 0);
            }
        }
        let r = led.report().unwrap();
        assert_eq!(r.hot_pcs.len(), HOT_PC_LIMIT);
        assert_eq!(r.hot_pcs[0].0, 5, "busiest PC first");
        // Ties broken by ascending PC.
        assert_eq!(r.hot_pcs[1].0, 0);
        assert_eq!(r.hot_pcs[2].0, 1);
    }

    #[test]
    fn source_slots_cover_cascades() {
        assert_eq!(PrefetchSource::CascadeLevel(0).label(), "cascade0");
        assert_eq!(PrefetchSource::CascadeLevel(4).label(), "cascade4+");
        assert_eq!(PrefetchSource::CascadeLevel(9).label(), "cascade4+");
        // Deep cascade levels share the last slot rather than indexing out
        // of bounds.
        let mut led = counting_ledger();
        led.issued(0, 1, 0x4, PrefetchSource::CascadeLevel(200), 0);
        assert_eq!(led.report().unwrap().source("cascade4+").unwrap().issued, 1);
    }

    #[test]
    fn per_core_credit_follows_the_issuing_core() {
        let mut led = counting_ledger();
        // Core 1 issues; the demand that uses it could come from anyone —
        // lifecycle credit stays with the issuer.
        led.issued(1, 7, 0x400, PrefetchSource::LongEvent, 0);
        led.filled(7, 50);
        led.used_timely(7, 60);
        // Core 0 issues one that settles unused, and drops a candidate.
        led.issued(0, 8, 0x404, PrefetchSource::ShortVote, 0);
        led.filled(8, 50);
        led.evicted_unused(8, 99);
        led.dropped(
            0,
            9,
            0x404,
            PrefetchSource::ShortVote,
            1,
            DropReason::Duplicate,
        );
        led.finalize();
        let by_core = led.by_core();
        assert_eq!(by_core.len(), 2);
        assert_eq!(
            (by_core[0].issued, by_core[0].unused, by_core[0].dropped),
            (1, 1, 1)
        );
        assert_eq!((by_core[1].issued, by_core[1].timely), (1, 1));
        // The report itself is unchanged — old golden results stay valid.
        let r = led.report().unwrap();
        assert_eq!((r.issued, r.timely, r.unused), (2, 1, 1));
    }

    #[test]
    fn per_core_counters_survive_into_finalize_and_reset_clears_them() {
        let mut led = counting_ledger();
        led.issued(2, 7, 0x400, PrefetchSource::LongEvent, 0);
        led.filled(7, 50);
        led.finalize();
        assert_eq!(led.by_core()[2].unused, 1, "resident-unused credits issuer");
        led.on_stats_reset();
        assert!(
            led.by_core().is_empty(),
            "warmup reset wipes per-core credit"
        );
    }

    #[test]
    fn report_metrics_handle_zero_denominators() {
        let r = TelemetryReport::default();
        assert_eq!(r.timeliness(), 0.0);
        assert_eq!(r.accuracy(), 0.0);
        assert_eq!(r.avg_fill_latency(), 0.0);
    }
}
