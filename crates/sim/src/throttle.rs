//! Adaptive prefetch throttling driven by resource-pressure feedback.
//!
//! Aggressive spatial prefetching is only profitable while its predictions
//! are accurate and memory bandwidth is plentiful; under pressure the same
//! 31-block bursts evict useful lines and queue demand fills behind
//! prefetch traffic. The [`ThrottleController`] watches per-epoch deltas
//! of the prefetch counters in [`CacheStats`] — judging accuracy as
//! used-vs-issued, which is timely, rather than waiting for evictions to
//! settle `pf_useless` — together with the DRAM bandwidth split
//! ([`DramStats::prefetch_reads`], [`DramStats::demand_wait_cycles`]) and
//! degrades the effective prefetch degree one [`ThrottleLevel`] at a time —
//! full burst → raised-vote burst → trigger-block-only → off — with
//! hysteresis in both directions, in the spirit of DSPatch's
//! bandwidth-aware aggressiveness control and Triangel's accuracy gating.
//!
//! Throttling is *strictly subtractive*: at every level the prefetcher's
//! prediction set is a subset of what it would have emitted unthrottled,
//! and training/table state evolves identically. The differential harness
//! checks this against the executable specification.
//!
//! On a multi-core chip the single chip-wide controller has a measured
//! fairness bug: one core's useless prefetch storm trips the shared
//! verdict and clamps every core's prefetcher, starving the polite
//! neighbors. [`ThrottleMode::Percore`] replaces it with one controller
//! per core, each judging only that core's attributed share of the shared
//! LLC/DRAM ([`CoreSignals`]), coordinated by a chip-level starvation
//! watchdog ([`PercoreThrottle`]) that clamps *only* cores hogging
//! prefetch bandwidth when the min/max per-core progress ratio crosses
//! the QoS SLO.

use std::collections::HashMap;

use crate::dram::DramStats;
use crate::stats::{CacheStats, CoreQos, QosReport};

/// How prefetch throttling is driven, selected by the `BINGO_THROTTLE`
/// knob.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ThrottleMode {
    /// No throttling. The memory system carries no controller at all, so
    /// disabled throttling is bit-for-bit invisible.
    #[default]
    Off,
    /// A fixed conservative degree ([`ThrottleLevel::RaisedVote`]) with no
    /// feedback — the classic "static degree" operating point.
    Static,
    /// Closed-loop control: per-epoch accuracy, lateness, and bandwidth
    /// share move the level up and down the ladder with hysteresis.
    Feedback,
    /// One [`Feedback`](ThrottleMode::Feedback)-style controller *per
    /// core*, each judging its own attributed share of the shared
    /// LLC/DRAM, plus the chip-level starvation watchdog
    /// ([`PercoreThrottle`]). A storm core throttles alone; polite
    /// neighbors keep their full aggressiveness.
    Percore,
}

impl ThrottleMode {
    /// Whether a controller is active at all.
    pub fn enabled(self) -> bool {
        self != ThrottleMode::Off
    }

    /// Parses the spelling used by the `BINGO_THROTTLE` knob
    /// (case-insensitive `off` / `static` / `feedback` / `percore`);
    /// `None` on anything else so callers can abort loudly.
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(ThrottleMode::Off),
            "static" | "1" => Some(ThrottleMode::Static),
            "feedback" | "on" | "2" => Some(ThrottleMode::Feedback),
            "percore" | "3" => Some(ThrottleMode::Percore),
            _ => None,
        }
    }
}

impl std::fmt::Display for ThrottleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThrottleMode::Off => write!(f, "off"),
            ThrottleMode::Static => write!(f, "static"),
            ThrottleMode::Feedback => write!(f, "feedback"),
            ThrottleMode::Percore => write!(f, "percore"),
        }
    }
}

/// Effective prefetcher aggressiveness, ordered from least to most
/// throttled. Every step down the ladder only *removes* candidates from
/// the burst a prefetcher would emit unthrottled — never adds or reorders
/// — so a throttled run's prediction set is always a subset of the
/// unthrottled one.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ThrottleLevel {
    /// Unrestricted bursts (identical to no throttling).
    #[default]
    Full,
    /// Bingo raises its short-event vote threshold to
    /// [`RAISED_VOTE_THRESHOLD`](crate::throttle::RAISED_VOTE_THRESHOLD)
    /// so only widely agreed-upon blocks survive; cascade prefetchers
    /// halve their burst.
    RaisedVote,
    /// Only the first predicted block of each burst is issued.
    TriggerOnly,
    /// No prefetches are issued at all (training continues, so recovery
    /// is instant when pressure lifts).
    Stopped,
}

impl ThrottleLevel {
    /// One step more throttled (saturates at [`ThrottleLevel::Stopped`]).
    pub fn degraded(self) -> Self {
        match self {
            ThrottleLevel::Full => ThrottleLevel::RaisedVote,
            ThrottleLevel::RaisedVote => ThrottleLevel::TriggerOnly,
            ThrottleLevel::TriggerOnly | ThrottleLevel::Stopped => ThrottleLevel::Stopped,
        }
    }

    /// One step less throttled (saturates at [`ThrottleLevel::Full`]).
    pub fn upgraded(self) -> Self {
        match self {
            ThrottleLevel::Full | ThrottleLevel::RaisedVote => ThrottleLevel::Full,
            ThrottleLevel::TriggerOnly => ThrottleLevel::RaisedVote,
            ThrottleLevel::Stopped => ThrottleLevel::TriggerOnly,
        }
    }

    /// Ladder position (0 = [`Full`](ThrottleLevel::Full), 3 =
    /// [`Stopped`](ThrottleLevel::Stopped)) — the stable numeric form
    /// reports and checkpoints carry.
    pub fn index(self) -> u8 {
        match self {
            ThrottleLevel::Full => 0,
            ThrottleLevel::RaisedVote => 1,
            ThrottleLevel::TriggerOnly => 2,
            ThrottleLevel::Stopped => 3,
        }
    }
}

impl std::fmt::Display for ThrottleLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThrottleLevel::Full => write!(f, "full"),
            ThrottleLevel::RaisedVote => write!(f, "raised-vote"),
            ThrottleLevel::TriggerOnly => write!(f, "trigger-only"),
            ThrottleLevel::Stopped => write!(f, "stopped"),
        }
    }
}

/// Bingo's effective short-event vote threshold at
/// [`ThrottleLevel::RaisedVote`] (the paper's default is 0.2; 0.75 keeps
/// only blocks most matching footprints agree on).
pub const RAISED_VOTE_THRESHOLD: f64 = 0.75;

/// Demand accesses per evaluation epoch.
pub const EPOCH_ACCESSES: u64 = 2048;

/// An epoch whose used-to-issued prefetch ratio falls below this is bad.
///
/// Accuracy is judged *issued-based* — `(Δpf_useful + Δpf_late) /
/// Δpf_issued` — not on eviction-settled counts: a useless prefetch into
/// an 8 MB LLC is not evicted (hence not counted `pf_useless`) for
/// millions of cycles, far too late to steer anything. Issued-vs-used is
/// timely and converges to true accuracy in steady state; its only bias
/// is the sub-epoch in-flight lag at ramp-up.
pub const ACCURACY_FLOOR: f64 = 0.5;

/// Used-to-issued ratio above which an epoch counts as good (between the
/// floor and this the epoch is neutral: streaks reset, level holds).
pub const ACCURACY_TARGET: f64 = 0.75;

/// Minimum prefetches issued in an epoch for its accuracy to count as
/// evidence; below this the epoch is neutral (sampling noise on a handful
/// of prefetches must not walk the ladder).
pub const MIN_EVIDENCE: u64 = 8;

/// Prefetch share of DRAM reads above which an epoch is bad regardless of
/// accuracy — even accurate prefetching must yield when it starves demand
/// fills of bandwidth.
pub const BANDWIDTH_CEILING: f64 = 0.6;

/// Average DRAM queue wait per read, in multiples of the channel's
/// per-transfer service time, above which the memory system counts as
/// *congested*. Past this point every read is queued behind several others
/// and the channel is the bottleneck, so a wasted prefetch transfer costs
/// a full service slot that a demand fill wanted.
pub const CONGESTION_WAIT_FACTOR: f64 = 2.0;

/// [`ACCURACY_FLOOR`] while the DRAM channel is congested. Moderately
/// accurate prefetching is profitable when bandwidth is spare — a 70%-hit
/// burst still hides latency — but on a saturated channel a useful
/// prefetch only *moves* a transfer earlier while a useless one *adds*
/// a transfer, so the break-even accuracy climbs steeply.
pub const CONGESTED_ACCURACY_FLOOR: f64 = 0.85;

/// [`ACCURACY_TARGET`] while the DRAM channel is congested.
pub const CONGESTED_ACCURACY_TARGET: f64 = 0.95;

/// Consecutive bad epochs before degrading one level.
pub const DEGRADE_AFTER: u32 = 2;

/// Consecutive good epochs before upgrading one level (the starting
/// upgrade patience; failed probes back it off, see
/// [`MAX_UPGRADE_PATIENCE`]).
pub const UPGRADE_AFTER: u32 = 4;

/// Epochs an upgrade must survive without degrading back for the probe to
/// count as successful.
pub const PROBE_WINDOW: u32 = 4;

/// Ceiling on the backed-off upgrade patience. Without backoff the
/// controller limit-cycles on steadily hostile traffic: good epochs at
/// the throttled level earn an upgrade, the restored aggressiveness is
/// promptly judged bad, and the two full-blast epochs per cycle cost real
/// bandwidth. Doubling the patience after every failed probe makes those
/// probes geometrically rarer, while one survived probe resets patience
/// to [`UPGRADE_AFTER`] so genuine pressure relief still recovers fast.
pub const MAX_UPGRADE_PATIENCE: u32 = 64;

/// Default starvation SLO for [`ThrottleMode::Percore`]: the watchdog
/// flags an epoch when the minimum-to-maximum per-core progress ratio
/// falls *strictly below* this (a ratio exactly at the SLO is
/// compliant). Deliberately loose — heterogeneous mixes have legitimate
/// progress imbalance; the watchdog is a backstop against pathological
/// starvation, not a fairness equalizer. Override with `BINGO_QOS_SLO`.
pub const DEFAULT_QOS_SLO: f64 = 0.25;

/// Consecutive starved watchdog epochs before the watchdog clamps the
/// offending core(s) — the watchdog-side hysteresis, mirroring
/// [`DEGRADE_AFTER`].
pub const WATCHDOG_STARVED_AFTER: u32 = 2;

/// Cumulative controller activity, for diagnostics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ThrottleStats {
    /// Completed evaluation epochs.
    pub epochs: u64,
    /// Epochs judged bad (inaccurate or bandwidth-starving).
    pub bad_epochs: u64,
    /// Epochs judged good (accurate and within the bandwidth budget).
    pub good_epochs: u64,
    /// Level degradations applied.
    pub degrades: u64,
    /// Level upgrades applied.
    pub upgrades: u64,
}

/// Counter snapshot at the previous epoch boundary, so each epoch is
/// judged on its own deltas.
#[derive(Copy, Clone, Debug, Default)]
struct Snapshot {
    pf_issued: u64,
    pf_useful: u64,
    pf_late: u64,
    prefetch_reads: u64,
    reads: u64,
    queue_wait_cycles: u64,
}

impl Snapshot {
    fn of(llc: &CacheStats, dram: &DramStats) -> Self {
        Snapshot {
            pf_issued: llc.pf_issued,
            pf_useful: llc.pf_useful,
            pf_late: llc.pf_late,
            prefetch_reads: dram.prefetch_reads,
            reads: dram.reads,
            queue_wait_cycles: dram.queue_wait_cycles,
        }
    }

    /// The per-core view: one core's attributed counters in the same
    /// shape the chip-wide judge reads, so both paths share the judging
    /// math verbatim. Used prefetches are not split timely/late per core;
    /// the judge only ever sums the two.
    fn of_signals(sig: &CoreSignals) -> Self {
        Snapshot {
            pf_issued: sig.pf_issued,
            pf_useful: sig.pf_used,
            pf_late: 0,
            prefetch_reads: sig.prefetch_reads,
            reads: sig.reads,
            queue_wait_cycles: sig.queue_wait_cycles,
        }
    }
}

/// Cumulative per-core attribution counters on the shared LLC/DRAM — the
/// per-core analogue of the `(CacheStats, DramStats)` pair the chip-wide
/// controller judges from. Maintained by the memory system only in
/// [`ThrottleMode::Percore`]; the counters are monotone (they survive the
/// warmup stats reset untouched), so epoch deltas are always well
/// defined.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreSignals {
    /// Resolved demand accesses issued by this core — the per-core epoch
    /// clock and the watchdog's progress proxy.
    pub demand_accesses: u64,
    /// Prefetches this core's prefetcher issued toward DRAM.
    pub pf_issued: u64,
    /// Issued prefetches later demanded (timely or late), credited to
    /// the *issuing* core regardless of which core demanded the line.
    pub pf_used: u64,
    /// DRAM reads carrying this core's prefetches.
    pub prefetch_reads: u64,
    /// All DRAM reads attributed to this core: its demand misses plus
    /// its prefetches.
    pub reads: u64,
    /// DRAM queue-wait cycles attributed to this core's reads.
    pub queue_wait_cycles: u64,
}

impl CoreSignals {
    /// Counter deltas since `prev` (saturating, like the chip-wide
    /// judge's snapshot arithmetic).
    fn delta_since(&self, prev: &CoreSignals) -> CoreSignals {
        CoreSignals {
            demand_accesses: self.demand_accesses.saturating_sub(prev.demand_accesses),
            pf_issued: self.pf_issued.saturating_sub(prev.pf_issued),
            pf_used: self.pf_used.saturating_sub(prev.pf_used),
            prefetch_reads: self.prefetch_reads.saturating_sub(prev.prefetch_reads),
            reads: self.reads.saturating_sub(prev.reads),
            queue_wait_cycles: self
                .queue_wait_cycles
                .saturating_sub(prev.queue_wait_cycles),
        }
    }
}

/// The per-epoch verdict driving the hysteresis streaks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Verdict {
    Good,
    Neutral,
    Bad,
}

/// Closed-loop prefetch-aggressiveness controller.
///
/// Owned by the memory system when `BINGO_THROTTLE` is not `off`; fed one
/// [`on_access`](ThrottleController::on_access) call per demand access.
/// Every [`EPOCH_ACCESSES`] accesses it judges the elapsed epoch from the
/// LLC and DRAM counter deltas and walks the [`ThrottleLevel`] ladder.
#[derive(Debug)]
pub struct ThrottleController {
    mode: ThrottleMode,
    level: ThrottleLevel,
    accesses: u64,
    snap: Snapshot,
    bad_streak: u32,
    good_streak: u32,
    /// Good epochs currently required for an upgrade; starts at
    /// [`UPGRADE_AFTER`], doubles on every failed probe (capped at
    /// [`MAX_UPGRADE_PATIENCE`]), resets on a survived one.
    upgrade_patience: u32,
    /// An in-flight upgrade probe: the level upgraded to and the epochs
    /// elapsed since. `None` when no probe is outstanding.
    probe: Option<(ThrottleLevel, u32)>,
    /// DRAM per-transfer service time, used to normalize queue-wait cycles
    /// into a congestion signal. `None` disables congestion gating (the
    /// memory system always supplies it; see
    /// [`with_dram_service_cycles`](ThrottleController::with_dram_service_cycles)).
    dram_service_cycles: Option<u64>,
    /// Accesses per evaluation epoch; [`EPOCH_ACCESSES`] for the chip-wide
    /// controller, scaled down by the core count for per-core controllers
    /// (see [`with_epoch_accesses`](ThrottleController::with_epoch_accesses)).
    epoch_accesses: u64,
    /// Cumulative controller activity.
    pub stats: ThrottleStats,
}

impl ThrottleController {
    /// Creates a controller for an enabled mode.
    ///
    /// # Panics
    ///
    /// Panics on [`ThrottleMode::Off`]: disabled throttling must carry no
    /// controller at all (that is what keeps it bit-for-bit invisible).
    pub fn new(mode: ThrottleMode) -> Self {
        assert!(mode.enabled(), "ThrottleMode::Off needs no controller");
        ThrottleController {
            mode,
            level: match mode {
                ThrottleMode::Static => ThrottleLevel::RaisedVote,
                _ => ThrottleLevel::Full,
            },
            accesses: 0,
            snap: Snapshot::default(),
            bad_streak: 0,
            good_streak: 0,
            upgrade_patience: UPGRADE_AFTER,
            probe: None,
            dram_service_cycles: None,
            epoch_accesses: EPOCH_ACCESSES,
            stats: ThrottleStats::default(),
        }
    }

    /// Overrides the accesses-per-epoch clock. A per-core controller sees
    /// only its own core's demand accesses — roughly a `1/n` slice of the
    /// chip's — so [`PercoreThrottle`] sets `EPOCH_ACCESSES / n` to keep
    /// the reaction *cadence* (and the per-core evidence behind each
    /// verdict) equal to the chip-wide controller's. Without the scaling a
    /// per-core ladder walks `n`× slower than the chip-wide one and loses
    /// the graceful-degradation bound on short adversarial runs.
    ///
    /// # Panics
    ///
    /// Panics on a zero epoch length.
    pub fn with_epoch_accesses(mut self, accesses: u64) -> Self {
        assert!(accesses > 0, "epoch length must be nonzero");
        self.epoch_accesses = accesses;
        self
    }

    /// Supplies the DRAM per-transfer service time so the controller can
    /// tell a congested channel (average queue wait of several service
    /// slots per read) from a lightly loaded one, and demand
    /// [`CONGESTED_ACCURACY_FLOOR`]/[`CONGESTED_ACCURACY_TARGET`] accuracy
    /// while congested. Without it congestion gating is disabled.
    pub fn with_dram_service_cycles(mut self, transfer_cycles: u64) -> Self {
        self.dram_service_cycles = Some(transfer_cycles);
        self
    }

    /// The mode the controller was built for.
    pub fn mode(&self) -> ThrottleMode {
        self.mode
    }

    /// The current effective level.
    pub fn level(&self) -> ThrottleLevel {
        self.level
    }

    /// Counts one demand access; at epoch boundaries judges the elapsed
    /// epoch and returns `Some(new_level)` if the level changed (the
    /// caller pushes it to the prefetchers).
    #[inline]
    pub fn on_access(&mut self, llc: &CacheStats, dram: &DramStats) -> Option<ThrottleLevel> {
        self.accesses += 1;
        if self.accesses < self.epoch_accesses {
            return None;
        }
        self.epoch_boundary(Snapshot::of(llc, dram))
    }

    /// The per-core twin of [`on_access`](ThrottleController::on_access):
    /// counts one of the owning core's demand accesses and judges epochs
    /// from that core's attributed [`CoreSignals`] instead of the
    /// chip-wide counters. Same verdict math, same hysteresis; the epoch
    /// clock is scaled to the core count by [`PercoreThrottle`] (see
    /// [`with_epoch_accesses`](ThrottleController::with_epoch_accesses)).
    #[inline]
    pub fn on_core_access(&mut self, sig: &CoreSignals) -> Option<ThrottleLevel> {
        self.accesses += 1;
        if self.accesses < self.epoch_accesses {
            return None;
        }
        self.epoch_boundary(Snapshot::of_signals(sig))
    }

    /// The 1-in-[`EPOCH_ACCESSES`] slow path of
    /// [`on_access`](ThrottleController::on_access), kept out of line so
    /// the per-access counter bump inlines into the memory system's demand
    /// path without dragging the epoch-judging code with it.
    #[inline(never)]
    fn epoch_boundary(&mut self, now: Snapshot) -> Option<ThrottleLevel> {
        self.accesses = 0;
        self.stats.epochs += 1;
        let verdict = self.judge(&now);
        self.snap = now;
        if self.mode == ThrottleMode::Static {
            // Static mode keeps its fixed conservative level; epochs are
            // still counted so diagnostics stay comparable.
            return None;
        }
        let before = self.level;
        // Age the outstanding probe; one that outlives its window at the
        // probed (or better) level succeeded — pressure genuinely lifted.
        if let Some((target, age)) = self.probe.as_mut() {
            *age += 1;
            if *age > PROBE_WINDOW && self.level <= *target {
                self.upgrade_patience = UPGRADE_AFTER;
                self.probe = None;
            }
        }
        match verdict {
            Verdict::Bad => {
                self.stats.bad_epochs += 1;
                self.good_streak = 0;
                self.bad_streak += 1;
                if self.bad_streak >= DEGRADE_AFTER {
                    self.bad_streak = 0;
                    self.level = self.level.degraded();
                    if self.level != before {
                        self.stats.degrades += 1;
                        if self.probe.take().is_some() {
                            // The upgrade was promptly punished: back off
                            // before probing again.
                            self.upgrade_patience =
                                (self.upgrade_patience * 2).min(MAX_UPGRADE_PATIENCE);
                        }
                    }
                }
            }
            Verdict::Good => {
                self.stats.good_epochs += 1;
                self.bad_streak = 0;
                self.good_streak += 1;
                if self.good_streak >= self.upgrade_patience {
                    self.good_streak = 0;
                    self.level = self.level.upgraded();
                    if self.level != before {
                        self.stats.upgrades += 1;
                        self.probe = Some((self.level, 0));
                    }
                }
            }
            Verdict::Neutral => {
                self.bad_streak = 0;
                self.good_streak = 0;
            }
        }
        (self.level != before).then_some(self.level)
    }

    /// One externally forced step down the ladder — the starvation
    /// watchdog's clamp. Streaks clear, any outstanding probe is
    /// cancelled, and the upgrade patience doubles (capped at
    /// [`MAX_UPGRADE_PATIENCE`]), so a clamped core neither climbs
    /// straight back out of the clamp nor probes into it at the old
    /// cadence — repeated interventions get geometrically rarer probes,
    /// exactly like organically failed ones.
    pub fn force_degrade(&mut self) -> Option<ThrottleLevel> {
        let before = self.level;
        self.level = self.level.degraded();
        self.bad_streak = 0;
        self.good_streak = 0;
        self.probe = None;
        self.upgrade_patience = (self.upgrade_patience * 2).min(MAX_UPGRADE_PATIENCE);
        if self.level == before {
            return None;
        }
        self.stats.degrades += 1;
        Some(self.level)
    }

    /// Re-bases the counter snapshot after external statistics resets (the
    /// end-of-warmup reset), keeping the learned level and streaks — like
    /// predictor tables, controller state survives warmup.
    pub fn on_stats_reset(&mut self) {
        self.snap = Snapshot::default();
        self.accesses = 0;
    }

    fn judge(&self, now: &Snapshot) -> Verdict {
        // saturating_sub: an external reset between boundaries (warmup)
        // re-bases via on_stats_reset, but stay safe against torn views.
        let useful = now.pf_useful.saturating_sub(self.snap.pf_useful);
        let late = now.pf_late.saturating_sub(self.snap.pf_late);
        let issued = now.pf_issued.saturating_sub(self.snap.pf_issued);
        let pf_reads = now.prefetch_reads.saturating_sub(self.snap.prefetch_reads);
        let reads = now.reads.saturating_sub(self.snap.reads);
        let queue_wait = now
            .queue_wait_cycles
            .saturating_sub(self.snap.queue_wait_cycles);
        let used = useful + late;
        if issued == 0 {
            // Nothing issued: the prefetcher is quiet (Stopped, or nothing
            // triggered) and any settlements are free wins from earlier
            // epochs. Counts as good, so a stopped prefetcher probes its
            // way back up once pressure could have lifted.
            return Verdict::Good;
        }
        if issued < MIN_EVIDENCE {
            return Verdict::Neutral;
        }
        // Issued-based accuracy (see ACCURACY_FLOOR): how much of what the
        // prefetcher asked for this epoch did demand actually want? Can
        // exceed 1.0 when prior epochs' prefetches settle late — that only
        // strengthens a good verdict.
        let accuracy = used as f64 / issued as f64;
        let bw_share = if reads == 0 {
            0.0
        } else {
            pf_reads as f64 / reads as f64
        };
        // Congestion raises the accuracy bar: when reads queue several
        // service slots deep on average, the channel is the bottleneck and
        // wasted transfers directly delay demand fills.
        let congested = self.dram_service_cycles.is_some_and(|svc| {
            reads > 0 && queue_wait as f64 / reads as f64 > CONGESTION_WAIT_FACTOR * svc as f64
        });
        let (floor, target) = if congested {
            (CONGESTED_ACCURACY_FLOOR, CONGESTED_ACCURACY_TARGET)
        } else {
            (ACCURACY_FLOOR, ACCURACY_TARGET)
        };
        if accuracy < floor || bw_share > BANDWIDTH_CEILING {
            Verdict::Bad
        } else if accuracy >= target {
            Verdict::Good
        } else {
            Verdict::Neutral
        }
    }
}

/// Cumulative starvation-watchdog activity, for diagnostics and the
/// [`QosReport`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Completed chip-level watchdog epochs.
    pub epochs: u64,
    /// Epochs whose min/max progress ratio fell below the SLO.
    pub starved_epochs: u64,
    /// Forced level degradations applied to offender cores.
    pub clamps: u64,
    /// Offenders spared by the never-all-stopped arbiter rule.
    pub exempted: u64,
}

/// The chip-level starvation watchdog coordinating the per-core
/// controllers.
///
/// Every [`EPOCH_ACCESSES`] resolved demand accesses *chip-wide* it
/// compares per-core progress (resolved demand accesses in the window, the
/// in-simulator proxy for per-core IPC). When the minimum-to-maximum
/// ratio over active cores falls strictly below the SLO for
/// [`WATCHDOG_STARVED_AFTER`] consecutive epochs, it force-degrades only
/// the cores consuming more than their fair share of prefetch bandwidth —
/// never the starved core, and never the last core standing (see
/// [`Watchdog::decide`]).
#[derive(Debug)]
struct Watchdog {
    slo: f64,
    accesses: u64,
    prev: Vec<CoreSignals>,
    starved_streak: u32,
    stats: WatchdogStats,
}

/// The watchdog's verdict for one chip epoch: which cores to clamp, and
/// whether an offender was exempted to satisfy the never-all-stopped
/// invariant.
#[derive(Debug, Default, PartialEq, Eq)]
struct WatchdogVerdict {
    starved: bool,
    clamp: Vec<usize>,
    exempted: bool,
}

impl Watchdog {
    /// Pure clamp decision for one epoch window. `levels` are the cores'
    /// current throttle levels, `delta` their window counter deltas.
    /// Separated from the counter plumbing so the edge cases (exact-SLO
    /// ratio, all-cores-offending) are unit-testable in isolation.
    fn decide(&mut self, levels: &[ThrottleLevel], delta: &[CoreSignals]) -> WatchdogVerdict {
        self.stats.epochs += 1;
        let n = levels.len();
        let mut verdict = WatchdogVerdict::default();
        // A core with zero window progress is idle (it met its
        // instruction target), not starved — contention in this machine
        // slows demand down, it cannot stop it entirely. Fewer than two
        // active cores means there is no contention question to judge.
        let active: Vec<usize> = (0..n).filter(|&i| delta[i].demand_accesses > 0).collect();
        if active.len() < 2 {
            self.starved_streak = 0;
            return verdict;
        }
        let progress = |i: usize| delta[i].demand_accesses;
        let max = active.iter().map(|&i| progress(i)).max().expect("active");
        let starved_core = *active
            .iter()
            .min_by_key(|&&i| (progress(i), i))
            .expect("active");
        // Strict comparison: a ratio exactly at the SLO is compliant.
        if progress(starved_core) as f64 / max as f64 >= self.slo {
            self.starved_streak = 0;
            return verdict;
        }
        verdict.starved = true;
        self.stats.starved_epochs += 1;
        self.starved_streak += 1;
        if self.starved_streak < WATCHDOG_STARVED_AFTER {
            return verdict;
        }
        self.starved_streak = 0;
        let total_pf: u64 = delta.iter().map(|d| d.prefetch_reads).sum();
        if total_pf == 0 {
            // Imbalance without prefetch traffic is not ours to fix.
            return verdict;
        }
        // Offenders: every core (other than the starved one) drawing more
        // than its fair 1/n share of the window's prefetch bandwidth;
        // if nobody crosses that bar, the single largest consumer.
        let fair = total_pf as f64 / n as f64;
        let mut clamp: Vec<usize> = (0..n)
            .filter(|&i| i != starved_core && delta[i].prefetch_reads as f64 > fair)
            .collect();
        if clamp.is_empty() {
            let top = (0..n)
                .filter(|&i| i != starved_core && delta[i].prefetch_reads > 0)
                .max_by_key(|&i| (delta[i].prefetch_reads, std::cmp::Reverse(i)));
            match top {
                Some(i) => clamp.push(i),
                None => return verdict, // all prefetch traffic is the starved core's own
            }
        }
        // Never clamp the whole chip to Stopped: if applying the clamps
        // would leave every core at Stopped, spare the offender whose
        // window accuracy is best (ties: fewer prefetch reads, then lower
        // index) so at least one prefetcher keeps probing for recovery.
        let clamped_level = |i: usize, clamp: &[usize]| {
            if clamp.contains(&i) {
                levels[i].degraded()
            } else {
                levels[i]
            }
        };
        if (0..n).all(|i| clamped_level(i, &clamp) == ThrottleLevel::Stopped) {
            let accuracy = |i: usize| {
                if delta[i].pf_issued == 0 {
                    1.0
                } else {
                    delta[i].pf_used as f64 / delta[i].pf_issued as f64
                }
            };
            let spare = clamp
                .iter()
                .copied()
                .reduce(|best, i| {
                    match accuracy(i).total_cmp(&accuracy(best)).then(
                        delta[best]
                            .prefetch_reads
                            .cmp(&delta[i].prefetch_reads)
                            .then(best.cmp(&i)),
                    ) {
                        std::cmp::Ordering::Greater => i,
                        _ => best,
                    }
                })
                .expect("clamp set is non-empty");
            clamp.retain(|&i| i != spare);
            verdict.exempted = true;
            self.stats.exempted += 1;
        }
        verdict.clamp = clamp;
        verdict
    }
}

/// Per-core prefetch throttling for [`ThrottleMode::Percore`]: one
/// [`ThrottleController`] per core, fed that core's attributed
/// [`CoreSignals`], plus the chip-level starvation [`Watchdog`].
///
/// Owned by the memory system only when the mode is `Percore` — every
/// other mode leaves this struct unconstructed, which is what keeps the
/// new path bit-for-bit invisible to `off`/`static`/`feedback` runs.
#[derive(Debug)]
pub struct PercoreThrottle {
    cores: Vec<ThrottleController>,
    signals: Vec<CoreSignals>,
    /// In-flight-or-resident prefetched blocks mapped to their issuing
    /// core, so demand uses credit the issuer. Entries close on use or
    /// on unused eviction; bounded by resident + in-flight prefetches.
    owner: HashMap<u64, usize>,
    watchdog: Watchdog,
}

impl PercoreThrottle {
    /// Creates one feedback controller per core and the watchdog.
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero or `slo` is not a ratio in `(0, 1]`.
    pub fn new(cores: usize, slo: f64) -> Self {
        assert!(cores > 0, "per-core throttling needs at least one core");
        assert!(
            slo.is_finite() && slo > 0.0 && slo <= 1.0,
            "QoS SLO must be a ratio in (0, 1], got {slo}"
        );
        // A per-core controller only sees its core's ~1/n slice of the
        // chip's demand accesses, so its epoch clock is scaled to keep
        // the reaction cadence — and the per-core evidence behind each
        // verdict — equal to the chip-wide feedback controller's. The
        // floor keeps a many-core epoch from shrinking into sampling
        // noise territory.
        let epoch = (EPOCH_ACCESSES / cores as u64).max(4 * MIN_EVIDENCE);
        PercoreThrottle {
            // Each per-core controller runs the feedback policy over its
            // core's attributed signals; Percore is the chip-level mode.
            cores: (0..cores)
                .map(|_| ThrottleController::new(ThrottleMode::Feedback).with_epoch_accesses(epoch))
                .collect(),
            signals: vec![CoreSignals::default(); cores],
            owner: HashMap::new(),
            watchdog: Watchdog {
                slo,
                accesses: 0,
                prev: vec![CoreSignals::default(); cores],
                starved_streak: 0,
                stats: WatchdogStats::default(),
            },
        }
    }

    /// Supplies the DRAM per-transfer service time to every per-core
    /// controller (see
    /// [`ThrottleController::with_dram_service_cycles`]).
    pub fn with_dram_service_cycles(mut self, transfer_cycles: u64) -> Self {
        for c in &mut self.cores {
            *c = std::mem::replace(c, ThrottleController::new(ThrottleMode::Feedback))
                .with_dram_service_cycles(transfer_cycles);
        }
        self
    }

    /// Number of cores under control.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The current effective level of one core's prefetcher.
    pub fn level(&self, core: usize) -> ThrottleLevel {
        self.cores[core].level()
    }

    /// One core's controller activity counters.
    pub fn controller_stats(&self, core: usize) -> &ThrottleStats {
        &self.cores[core].stats
    }

    /// The watchdog's activity counters.
    pub fn watchdog_stats(&self) -> &WatchdogStats {
        &self.watchdog.stats
    }

    /// Counts one resolved demand access by `core`: ticks that core's
    /// epoch clock and controller, and the chip-wide watchdog clock.
    /// Returns whether *any* core's level changed — the caller then
    /// re-pushes every core's level to its prefetcher (cheap: epoch
    /// boundaries only).
    #[inline]
    pub fn on_access(&mut self, core: usize) -> bool {
        self.signals[core].demand_accesses += 1;
        let mut changed = self.cores[core]
            .on_core_access(&self.signals[core])
            .is_some();
        self.watchdog.accesses += 1;
        if self.watchdog.accesses >= EPOCH_ACCESSES {
            self.watchdog.accesses = 0;
            changed |= self.watchdog_epoch();
        }
        changed
    }

    /// Chip-level watchdog epoch: snapshot the window deltas, decide,
    /// clamp. Out of line for the same reason as
    /// [`ThrottleController::epoch_boundary`].
    #[inline(never)]
    fn watchdog_epoch(&mut self) -> bool {
        let delta: Vec<CoreSignals> = self
            .signals
            .iter()
            .zip(&self.watchdog.prev)
            .map(|(now, prev)| now.delta_since(prev))
            .collect();
        self.watchdog.prev.copy_from_slice(&self.signals);
        let levels: Vec<ThrottleLevel> = self.cores.iter().map(ThrottleController::level).collect();
        let verdict = self.watchdog.decide(&levels, &delta);
        let mut changed = false;
        for &i in &verdict.clamp {
            if self.cores[i].force_degrade().is_some() {
                self.watchdog.stats.clamps += 1;
                changed = true;
            }
        }
        changed
    }

    /// Attributes an issued prefetch (and its tagged DRAM read) to the
    /// issuing core.
    pub fn note_pf_issued(&mut self, core: usize, block: u64, queue_wait: u64) {
        let s = &mut self.signals[core];
        s.pf_issued += 1;
        s.prefetch_reads += 1;
        s.reads += 1;
        s.queue_wait_cycles += queue_wait;
        self.owner.insert(block, core);
    }

    /// Credits a demanded prefetched line (timely or late) to the core
    /// that issued it.
    pub fn note_pf_used(&mut self, block: u64) {
        if let Some(core) = self.owner.remove(&block) {
            self.signals[core].pf_used += 1;
        }
    }

    /// Closes the attribution entry of a prefetched line evicted unused.
    pub fn note_pf_evicted_unused(&mut self, block: u64) {
        self.owner.remove(&block);
    }

    /// Attributes a demand DRAM read (and its queue wait) to the core
    /// that missed.
    pub fn note_demand_read(&mut self, core: usize, queue_wait: u64) {
        let s = &mut self.signals[core];
        s.reads += 1;
        s.queue_wait_cycles += queue_wait;
    }

    /// One core's cumulative attributed signals.
    pub fn signals(&self, core: usize) -> &CoreSignals {
        &self.signals[core]
    }

    /// Builds the end-of-run [`QosReport`] from the per-core signals,
    /// controller stats, and watchdog stats.
    pub fn report(&self) -> QosReport {
        QosReport {
            cores: self
                .cores
                .iter()
                .zip(&self.signals)
                .map(|(ctrl, sig)| CoreQos {
                    demand_accesses: sig.demand_accesses,
                    pf_issued: sig.pf_issued,
                    pf_used: sig.pf_used,
                    prefetch_reads: sig.prefetch_reads,
                    reads: sig.reads,
                    epochs: ctrl.stats.epochs,
                    degrades: ctrl.stats.degrades,
                    upgrades: ctrl.stats.upgrades,
                    final_level: ctrl.level().index(),
                })
                .collect(),
            watchdog_epochs: self.watchdog.stats.epochs,
            watchdog_starved_epochs: self.watchdog.stats.starved_epochs,
            watchdog_clamps: self.watchdog.stats.clamps,
            watchdog_exempted: self.watchdog.stats.exempted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick_epoch(
        c: &mut ThrottleController,
        llc: &CacheStats,
        dram: &DramStats,
    ) -> Option<ThrottleLevel> {
        let mut change = None;
        for _ in 0..EPOCH_ACCESSES {
            if let Some(l) = c.on_access(llc, dram) {
                change = Some(l);
            }
        }
        change
    }

    fn stats_with(useful: u64, useless: u64) -> (CacheStats, DramStats) {
        let llc = CacheStats {
            pf_issued: useful + useless,
            pf_useful: useful,
            pf_useless: useless,
            ..CacheStats::default()
        };
        (llc, DramStats::default())
    }

    #[test]
    fn parse_accepts_knob_spellings() {
        assert_eq!(ThrottleMode::parse("off"), Some(ThrottleMode::Off));
        assert_eq!(ThrottleMode::parse(" STATIC "), Some(ThrottleMode::Static));
        assert_eq!(
            ThrottleMode::parse("feedback"),
            Some(ThrottleMode::Feedback)
        );
        assert_eq!(
            ThrottleMode::parse("Feedback"),
            Some(ThrottleMode::Feedback)
        );
        assert_eq!(ThrottleMode::parse("none"), Some(ThrottleMode::Off));
        assert_eq!(ThrottleMode::parse("percore"), Some(ThrottleMode::Percore));
        assert_eq!(
            ThrottleMode::parse(" PerCore "),
            Some(ThrottleMode::Percore)
        );
        assert_eq!(ThrottleMode::parse("3"), Some(ThrottleMode::Percore));
        assert_eq!(ThrottleMode::parse("aggressive"), None);
        assert_eq!(ThrottleMode::parse(""), None);
        assert_eq!(ThrottleMode::Percore.to_string(), "percore");
        assert!(ThrottleMode::Percore.enabled());
    }

    #[test]
    fn ladder_is_monotone_and_saturating() {
        let mut l = ThrottleLevel::Full;
        let mut seen = vec![l];
        for _ in 0..5 {
            l = l.degraded();
            seen.push(l);
        }
        assert_eq!(
            &seen[..4],
            &[
                ThrottleLevel::Full,
                ThrottleLevel::RaisedVote,
                ThrottleLevel::TriggerOnly,
                ThrottleLevel::Stopped
            ]
        );
        assert_eq!(l, ThrottleLevel::Stopped, "degrade saturates");
        assert_eq!(ThrottleLevel::Full.upgraded(), ThrottleLevel::Full);
        assert!(ThrottleLevel::Full < ThrottleLevel::Stopped);
    }

    #[test]
    #[should_panic(expected = "needs no controller")]
    fn off_mode_refuses_a_controller() {
        let _ = ThrottleController::new(ThrottleMode::Off);
    }

    #[test]
    fn static_mode_pins_raised_vote() {
        let mut c = ThrottleController::new(ThrottleMode::Static);
        assert_eq!(c.level(), ThrottleLevel::RaisedVote);
        let (llc, dram) = stats_with(0, 1000); // terrible accuracy
        for _ in 0..10 {
            assert_eq!(tick_epoch(&mut c, &llc, &dram), None);
        }
        assert_eq!(c.level(), ThrottleLevel::RaisedVote);
        assert_eq!(c.stats.epochs, 10);
    }

    #[test]
    fn sustained_inaccuracy_degrades_to_stopped() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let (mut llc, dram) = stats_with(0, 0);
        let mut changes = Vec::new();
        for epoch in 1..=8u64 {
            // Fresh useless prefetches settle every epoch.
            llc.pf_issued = epoch * 100;
            llc.pf_useless = epoch * 100;
            if let Some(l) = tick_epoch(&mut c, &llc, &dram) {
                changes.push(l);
            }
        }
        assert_eq!(
            changes,
            vec![
                ThrottleLevel::RaisedVote,
                ThrottleLevel::TriggerOnly,
                ThrottleLevel::Stopped
            ],
            "one degrade per {DEGRADE_AFTER} bad epochs, saturating"
        );
        assert_eq!(c.stats.degrades, 3);
    }

    #[test]
    fn quiet_epochs_let_a_stopped_prefetcher_recover() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let (mut llc, dram) = stats_with(0, 0);
        for epoch in 1..=6u64 {
            llc.pf_issued = epoch * 100;
            llc.pf_useless = epoch * 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Stopped);
        // Stopped: no new prefetch activity at all -> quiet epochs are
        // good, and every UPGRADE_AFTER of them climb one level.
        let frozen = llc.clone();
        for _ in 0..u64::from(UPGRADE_AFTER) * 3 {
            tick_epoch(&mut c, &frozen, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Full, "full recovery");
        assert_eq!(c.stats.upgrades, 3);
    }

    #[test]
    fn accurate_epochs_hold_full_aggressiveness() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let (mut llc, dram) = stats_with(0, 0);
        for epoch in 1..=10u64 {
            llc.pf_issued = epoch * 100;
            llc.pf_useful = epoch * 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Full);
        assert_eq!(c.stats.degrades, 0);
        assert_eq!(c.stats.good_epochs, 10);
    }

    #[test]
    fn bandwidth_hogging_is_bad_even_when_accurate() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let mut dram = DramStats::default();
        for epoch in 1..=4u64 {
            llc.pf_issued = epoch * 100;
            llc.pf_useful = epoch * 100; // perfectly accurate
            dram.prefetch_reads = epoch * 90; // ...but 90% of all reads
            dram.reads = epoch * 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert!(c.level() > ThrottleLevel::Full, "bandwidth ceiling fired");
        assert!(c.stats.bad_epochs >= 2);
    }

    #[test]
    fn sustained_issue_without_use_is_bad() {
        // Issuing epoch after epoch with demand never touching a prefetched
        // block is exactly what a useless storm looks like — the in-flight
        // lag excuse only lasts a fraction of one epoch.
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let dram = DramStats::default();
        for epoch in 1..=6u64 {
            llc.pf_issued = epoch * 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert!(c.level() > ThrottleLevel::Full);
        assert!(c.stats.bad_epochs >= 4);
    }

    #[test]
    fn tiny_samples_are_neutral_evidence() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let dram = DramStats::default();
        for epoch in 1..=6u64 {
            // A trickle below MIN_EVIDENCE, all of it useless: too little
            // to walk the ladder either way.
            llc.pf_issued = epoch * (MIN_EVIDENCE - 1);
            tick_epoch(&mut c, &llc, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Full);
        assert_eq!(c.stats.bad_epochs, 0);
        assert_eq!(c.stats.good_epochs, 0);
    }

    #[test]
    fn congestion_raises_the_accuracy_bar() {
        // 80% accuracy: comfortably good on an idle channel, bad on one
        // where reads queue several service slots deep.
        let run = |queue_wait_per_read: u64| {
            let mut c =
                ThrottleController::new(ThrottleMode::Feedback).with_dram_service_cycles(14);
            let mut llc = CacheStats::default();
            let mut dram = DramStats::default();
            for _ in 0..6 {
                llc.pf_issued += 100;
                llc.pf_useful += 80;
                dram.reads += 100;
                dram.queue_wait_cycles += 100 * queue_wait_per_read;
                tick_epoch(&mut c, &llc, &dram);
            }
            c
        };
        let idle = run(0);
        assert_eq!(idle.level(), ThrottleLevel::Full);
        assert!(idle.stats.bad_epochs == 0 && idle.stats.good_epochs >= 4);
        let congested = run(100); // far past CONGESTION_WAIT_FACTOR * 14
        assert!(congested.level() > ThrottleLevel::Full);
        assert!(congested.stats.bad_epochs >= 4);
    }

    #[test]
    fn failed_probes_back_off_exponentially() {
        // Steadily hostile traffic: every epoch spent at Full issues
        // useless prefetches (Bad), every throttled epoch is accurate
        // (Good). Without backoff the controller limit-cycles, spending a
        // third of all epochs at full blast; with it the probes must get
        // geometrically rarer.
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let dram = DramStats::default();
        let mut full_epochs = 0u32;
        for _ in 0..120 {
            if c.level() == ThrottleLevel::Full {
                full_epochs += 1;
                llc.pf_issued += 100; // nothing used: Bad
            } else {
                llc.pf_issued += 100;
                llc.pf_useful += 100; // accurate when throttled: Good
            }
            tick_epoch(&mut c, &llc, &dram);
        }
        // Limit-cycling would put ~40 of 120 epochs at Full; backoff caps
        // the early oscillation plus ever-rarer probes well below that.
        assert!(
            full_epochs <= 16,
            "{full_epochs} full-blast epochs despite hostile traffic"
        );
        assert!(c.stats.degrades > c.stats.upgrades);
    }

    #[test]
    fn surviving_a_probe_restores_upgrade_patience() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let dram = DramStats::default();
        // Drive to Stopped with a couple of failed probes to inflate the
        // patience.
        for _ in 0..40 {
            llc.pf_issued += 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Stopped);
        // Pressure lifts: quiet epochs from here on. Recovery to Full must
        // complete despite the earlier failures — each survived probe
        // resets the patience, so the climb accelerates back to the
        // UPGRADE_AFTER cadence instead of paying the inflated patience at
        // every rung.
        let mut recovery = 0u32;
        while c.level() != ThrottleLevel::Full {
            tick_epoch(&mut c, &llc, &dram);
            recovery += 1;
            assert!(recovery < 300, "recovery stalled at {}", c.level());
        }
        assert!(
            recovery <= MAX_UPGRADE_PATIENCE + 3 * (UPGRADE_AFTER + PROBE_WINDOW) + 8,
            "recovery took {recovery} epochs"
        );
    }

    #[test]
    fn stats_reset_rebases_the_snapshot() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let (llc, dram) = stats_with(1000, 0);
        tick_epoch(&mut c, &llc, &dram);
        // Warmup reset: counters go back to zero without controller resets
        // looking like negative deltas.
        c.on_stats_reset();
        let (llc2, dram2) = stats_with(10, 0);
        tick_epoch(&mut c, &llc2, &dram2);
        assert_eq!(c.stats.epochs, 2);
        assert_eq!(c.stats.good_epochs, 2);
    }

    #[test]
    fn force_degrade_steps_cancels_probe_and_backs_off() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        assert_eq!(c.force_degrade(), Some(ThrottleLevel::RaisedVote));
        assert_eq!(c.upgrade_patience, UPGRADE_AFTER * 2);
        assert_eq!(c.stats.degrades, 1);
        assert_eq!(c.force_degrade(), Some(ThrottleLevel::TriggerOnly));
        assert_eq!(c.force_degrade(), Some(ThrottleLevel::Stopped));
        // Saturated: no level change, still backs the patience off.
        assert_eq!(c.force_degrade(), None);
        assert_eq!(c.stats.degrades, 3);
        assert_eq!(c.upgrade_patience, UPGRADE_AFTER * 16);
        assert!(c.probe.is_none());
    }

    /// Satellite: backed-off patience must saturate, never wrap, over
    /// runs long enough for thousands of failed probes.
    #[test]
    fn probe_backoff_saturates_without_overflow_on_long_runs() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let dram = DramStats::default();
        for _ in 0..20_000 {
            llc.pf_issued += 100;
            if c.level() != ThrottleLevel::Full {
                llc.pf_useful += 100; // accurate only while throttled
            }
            tick_epoch(&mut c, &llc, &dram);
            assert!(c.upgrade_patience <= MAX_UPGRADE_PATIENCE);
        }
        // Probes became geometrically rare but never stopped entirely.
        assert!(c.stats.upgrades > 0);
        assert!(c.stats.degrades >= c.stats.upgrades);
        // And hammering force_degrade on top cannot wrap either.
        for _ in 0..10_000 {
            c.force_degrade();
            assert!(c.upgrade_patience <= MAX_UPGRADE_PATIENCE);
        }
    }

    // ---- per-core bank + starvation watchdog ------------------------

    /// Ticks `pt` for one full chip epoch with per-core access shares
    /// given in `share` (must sum to EPOCH_ACCESSES), interleaved
    /// round-robin so per-core and chip clocks advance together.
    fn tick_chip_epoch(pt: &mut PercoreThrottle, share: &[u64]) {
        assert_eq!(share.iter().sum::<u64>(), EPOCH_ACCESSES);
        let mut left: Vec<u64> = share.to_vec();
        let mut remaining: u64 = left.iter().sum();
        while remaining > 0 {
            for (core, l) in left.iter_mut().enumerate() {
                if *l > 0 {
                    *l -= 1;
                    remaining -= 1;
                    pt.on_access(core);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ratio in (0, 1]")]
    fn percore_rejects_slo_above_one() {
        let _ = PercoreThrottle::new(2, 1.5);
    }

    #[test]
    fn storm_core_throttles_alone() {
        let mut pt = PercoreThrottle::new(2, DEFAULT_QOS_SLO);
        // Each chip epoch is split between the two cores, so a per-core
        // controller epoch takes two outer iterations; 16 iterations give
        // each controller 8 epochs — enough for the full ladder descent.
        for _ in 0..16 {
            // Core 0: accurate prefetching. Core 1: pure waste. Both also
            // carry demand reads so the bandwidth share stays moderate.
            for _ in 0..(EPOCH_ACCESSES / 2) {
                pt.note_pf_issued(0, u64::MAX, 0);
                pt.note_pf_used(u64::MAX);
                pt.note_pf_issued(1, 0, 0);
                for core in 0..2 {
                    pt.note_demand_read(core, 0);
                    pt.note_demand_read(core, 0);
                }
            }
            tick_chip_epoch(&mut pt, &[EPOCH_ACCESSES / 2, EPOCH_ACCESSES / 2]);
        }
        assert_eq!(pt.level(0), ThrottleLevel::Full, "polite core untouched");
        assert_eq!(pt.level(1), ThrottleLevel::Stopped, "storm core clamped");
        assert!(pt.controller_stats(1).degrades >= 3);
        assert_eq!(pt.controller_stats(0).degrades, 0);
    }

    #[test]
    fn percore_report_carries_attribution_and_levels() {
        let mut pt = PercoreThrottle::new(2, DEFAULT_QOS_SLO);
        pt.note_pf_issued(0, 7, 5);
        pt.note_pf_used(7);
        pt.note_demand_read(1, 9);
        pt.on_access(0);
        pt.on_access(1);
        let r = pt.report();
        assert_eq!(r.cores.len(), 2);
        assert_eq!(r.cores[0].pf_issued, 1);
        assert_eq!(r.cores[0].pf_used, 1);
        assert_eq!(r.cores[0].prefetch_reads, 1);
        assert_eq!(r.cores[0].demand_accesses, 1);
        assert_eq!(r.cores[1].reads, 1);
        assert_eq!(r.cores[1].pf_issued, 0);
        assert_eq!(r.cores[0].final_level, 0);
    }

    #[test]
    fn used_prefetches_credit_the_issuing_core() {
        let mut pt = PercoreThrottle::new(2, DEFAULT_QOS_SLO);
        pt.note_pf_issued(1, 42, 0);
        // Core 0 demands the line core 1 prefetched: the credit is the
        // issuer's.
        pt.note_pf_used(42);
        assert_eq!(pt.signals(1).pf_used, 1);
        assert_eq!(pt.signals(0).pf_used, 0);
        // Closed entries do not double-credit.
        pt.note_pf_used(42);
        assert_eq!(pt.signals(1).pf_used, 1);
        // Unused evictions close silently.
        pt.note_pf_issued(0, 43, 0);
        pt.note_pf_evicted_unused(43);
        pt.note_pf_used(43);
        assert_eq!(pt.signals(0).pf_used, 0);
    }

    /// Helper for direct watchdog-decision tests.
    fn watchdog(slo: f64, cores: usize) -> Watchdog {
        Watchdog {
            slo,
            accesses: 0,
            prev: vec![CoreSignals::default(); cores],
            starved_streak: 0,
            stats: WatchdogStats::default(),
        }
    }

    fn delta(progress: u64, pf_reads: u64) -> CoreSignals {
        CoreSignals {
            demand_accesses: progress,
            pf_issued: pf_reads,
            pf_used: 0,
            prefetch_reads: pf_reads,
            reads: progress + pf_reads,
            queue_wait_cycles: 0,
        }
    }

    /// Satellite: an epoch whose progress ratio lands *exactly* on the
    /// SLO threshold is compliant — only strictly-below counts as
    /// starved.
    #[test]
    fn progress_ratio_exactly_at_the_slo_is_compliant() {
        let levels = [ThrottleLevel::Full, ThrottleLevel::Full];
        let mut wd = watchdog(0.5, 2);
        for _ in 0..4 {
            let v = wd.decide(&levels, &[delta(1000, 500), delta(2000, 0)]);
            assert!(!v.starved, "ratio == SLO must not count as starved");
            assert!(v.clamp.is_empty());
        }
        assert_eq!(wd.stats.starved_epochs, 0);
        // One access less — with the fast core hogging the prefetch
        // bandwidth — and the same windows are starved epochs.
        let v = wd.decide(&levels, &[delta(999, 0), delta(2000, 500)]);
        assert!(v.starved);
        assert_eq!(wd.starved_streak, 1, "first starved epoch arms hysteresis");
        assert!(v.clamp.is_empty(), "hysteresis defers the clamp");
        let v = wd.decide(&levels, &[delta(999, 0), delta(2000, 500)]);
        assert_eq!(v.clamp, vec![1], "second consecutive starved epoch clamps");
    }

    #[test]
    fn watchdog_clamps_only_bandwidth_hogs_never_the_starved_core() {
        let levels = [ThrottleLevel::Full; 3];
        let mut wd = watchdog(0.5, 3);
        // Core 0 starves; cores 1 and 2 split prefetch traffic, but only
        // core 2 exceeds the fair 1/3 share.
        let window = [delta(100, 0), delta(2000, 100), delta(2000, 500)];
        wd.decide(&levels, &window);
        let v = wd.decide(&levels, &window);
        assert_eq!(v.clamp, vec![2]);
    }

    #[test]
    fn compliant_epochs_reset_the_starved_streak() {
        let levels = [ThrottleLevel::Full, ThrottleLevel::Full];
        let mut wd = watchdog(0.5, 2);
        let starving = [delta(100, 0), delta(2000, 800)];
        let fine = [delta(2000, 0), delta(2000, 800)];
        wd.decide(&levels, &starving);
        wd.decide(&levels, &fine);
        let v = wd.decide(&levels, &starving);
        assert!(
            v.clamp.is_empty(),
            "a compliant epoch between two starved ones must disarm the clamp"
        );
    }

    #[test]
    fn idle_cores_are_not_starved_cores() {
        let levels = [ThrottleLevel::Full, ThrottleLevel::Full];
        let mut wd = watchdog(0.5, 2);
        // Core 0 finished its instruction target: zero progress, but that
        // is idleness, not starvation.
        for _ in 0..4 {
            let v = wd.decide(&levels, &[delta(0, 0), delta(2000, 800)]);
            assert!(!v.starved);
            assert!(v.clamp.is_empty());
        }
    }

    /// Satellite: simultaneous degrade pressure on every core must never
    /// clamp the whole chip to Stopped — the best-accuracy offender is
    /// spared.
    #[test]
    fn watchdog_never_clamps_every_core_to_stopped() {
        let mut pt = PercoreThrottle::new(3, 0.9);
        // Drive every core's controller to TriggerOnly, one forced step
        // at a time, so any further clamp would mean Stopped.
        for core in 0..3 {
            pt.cores[core].force_degrade();
            pt.cores[core].force_degrade();
        }
        // Core 0 starves; cores 1 and 2 both hog prefetch bandwidth, but
        // core 2 is the (relatively) accurate one.
        let mut window = [delta(100, 0), delta(2000, 900), delta(2000, 900)];
        window[2].pf_used = 500;
        // Starved core 0 is already headed to Stopped too via its own
        // controller in the worst case; force it there outright.
        pt.cores[0].force_degrade();
        let levels_now: Vec<ThrottleLevel> = (0..3).map(|i| pt.level(i)).collect();
        assert_eq!(levels_now[0], ThrottleLevel::Stopped);
        pt.watchdog.decide(&levels_now, &window); // arm hysteresis
        let v = pt.watchdog.decide(&levels_now, &window);
        assert_eq!(v.clamp, vec![1], "the accurate offender is spared");
        assert!(v.exempted);
        for &i in &v.clamp {
            pt.cores[i].force_degrade();
        }
        assert!(
            (0..3).any(|i| pt.level(i) != ThrottleLevel::Stopped),
            "some core must stay un-stopped"
        );
        assert_eq!(pt.watchdog_stats().exempted, 1);
    }

    /// The recovery-time bound the chaos property suite leans on: once
    /// signals turn clean, a clamped core returns to Full within
    /// `MAX_UPGRADE_PATIENCE + 3 * (UPGRADE_AFTER + PROBE_WINDOW) + 8`
    /// of its own epochs, even from Stopped with fully backed-off
    /// patience.
    #[test]
    fn clamped_core_recovers_within_the_bounded_epoch_count() {
        let mut pt = PercoreThrottle::new(2, DEFAULT_QOS_SLO);
        for _ in 0..6 {
            pt.cores[1].force_degrade(); // Stopped, patience saturated
        }
        assert_eq!(pt.level(1), ThrottleLevel::Stopped);
        let bound = MAX_UPGRADE_PATIENCE + 3 * (UPGRADE_AFTER + PROBE_WINDOW) + 8;
        let mut epochs = 0u32;
        while pt.level(1) != ThrottleLevel::Full {
            // Clean epoch: no prefetch activity on core 1 at all (the
            // prefetcher is stopped), both cores progressing equally.
            tick_chip_epoch(&mut pt, &[EPOCH_ACCESSES / 2, EPOCH_ACCESSES / 2]);
            // Two controller epochs per chip epoch do not fire here: each
            // core only saw half an epoch of accesses, so count chip
            // epochs until the per-core epoch lands.
            epochs += 1;
            assert!(
                epochs <= 2 * bound,
                "recovery exceeded the bound at {}",
                pt.level(1)
            );
        }
        assert!(pt.controller_stats(1).upgrades >= 3);
    }
}
