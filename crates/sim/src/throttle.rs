//! Adaptive prefetch throttling driven by resource-pressure feedback.
//!
//! Aggressive spatial prefetching is only profitable while its predictions
//! are accurate and memory bandwidth is plentiful; under pressure the same
//! 31-block bursts evict useful lines and queue demand fills behind
//! prefetch traffic. The [`ThrottleController`] watches per-epoch deltas
//! of the prefetch counters in [`CacheStats`] — judging accuracy as
//! used-vs-issued, which is timely, rather than waiting for evictions to
//! settle `pf_useless` — together with the DRAM bandwidth split
//! ([`DramStats::prefetch_reads`], [`DramStats::demand_wait_cycles`]) and
//! degrades the effective prefetch degree one [`ThrottleLevel`] at a time —
//! full burst → raised-vote burst → trigger-block-only → off — with
//! hysteresis in both directions, in the spirit of DSPatch's
//! bandwidth-aware aggressiveness control and Triangel's accuracy gating.
//!
//! Throttling is *strictly subtractive*: at every level the prefetcher's
//! prediction set is a subset of what it would have emitted unthrottled,
//! and training/table state evolves identically. The differential harness
//! checks this against the executable specification.

use crate::dram::DramStats;
use crate::stats::CacheStats;

/// How prefetch throttling is driven, selected by the `BINGO_THROTTLE`
/// knob.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ThrottleMode {
    /// No throttling. The memory system carries no controller at all, so
    /// disabled throttling is bit-for-bit invisible.
    #[default]
    Off,
    /// A fixed conservative degree ([`ThrottleLevel::RaisedVote`]) with no
    /// feedback — the classic "static degree" operating point.
    Static,
    /// Closed-loop control: per-epoch accuracy, lateness, and bandwidth
    /// share move the level up and down the ladder with hysteresis.
    Feedback,
}

impl ThrottleMode {
    /// Whether a controller is active at all.
    pub fn enabled(self) -> bool {
        self != ThrottleMode::Off
    }

    /// Parses the spelling used by the `BINGO_THROTTLE` knob
    /// (case-insensitive `off` / `static` / `feedback`); `None` on
    /// anything else so callers can abort loudly.
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(ThrottleMode::Off),
            "static" | "1" => Some(ThrottleMode::Static),
            "feedback" | "on" | "2" => Some(ThrottleMode::Feedback),
            _ => None,
        }
    }
}

impl std::fmt::Display for ThrottleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThrottleMode::Off => write!(f, "off"),
            ThrottleMode::Static => write!(f, "static"),
            ThrottleMode::Feedback => write!(f, "feedback"),
        }
    }
}

/// Effective prefetcher aggressiveness, ordered from least to most
/// throttled. Every step down the ladder only *removes* candidates from
/// the burst a prefetcher would emit unthrottled — never adds or reorders
/// — so a throttled run's prediction set is always a subset of the
/// unthrottled one.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ThrottleLevel {
    /// Unrestricted bursts (identical to no throttling).
    #[default]
    Full,
    /// Bingo raises its short-event vote threshold to
    /// [`RAISED_VOTE_THRESHOLD`](crate::throttle::RAISED_VOTE_THRESHOLD)
    /// so only widely agreed-upon blocks survive; cascade prefetchers
    /// halve their burst.
    RaisedVote,
    /// Only the first predicted block of each burst is issued.
    TriggerOnly,
    /// No prefetches are issued at all (training continues, so recovery
    /// is instant when pressure lifts).
    Stopped,
}

impl ThrottleLevel {
    /// One step more throttled (saturates at [`ThrottleLevel::Stopped`]).
    pub fn degraded(self) -> Self {
        match self {
            ThrottleLevel::Full => ThrottleLevel::RaisedVote,
            ThrottleLevel::RaisedVote => ThrottleLevel::TriggerOnly,
            ThrottleLevel::TriggerOnly | ThrottleLevel::Stopped => ThrottleLevel::Stopped,
        }
    }

    /// One step less throttled (saturates at [`ThrottleLevel::Full`]).
    pub fn upgraded(self) -> Self {
        match self {
            ThrottleLevel::Full | ThrottleLevel::RaisedVote => ThrottleLevel::Full,
            ThrottleLevel::TriggerOnly => ThrottleLevel::RaisedVote,
            ThrottleLevel::Stopped => ThrottleLevel::TriggerOnly,
        }
    }
}

impl std::fmt::Display for ThrottleLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThrottleLevel::Full => write!(f, "full"),
            ThrottleLevel::RaisedVote => write!(f, "raised-vote"),
            ThrottleLevel::TriggerOnly => write!(f, "trigger-only"),
            ThrottleLevel::Stopped => write!(f, "stopped"),
        }
    }
}

/// Bingo's effective short-event vote threshold at
/// [`ThrottleLevel::RaisedVote`] (the paper's default is 0.2; 0.75 keeps
/// only blocks most matching footprints agree on).
pub const RAISED_VOTE_THRESHOLD: f64 = 0.75;

/// Demand accesses per evaluation epoch.
pub const EPOCH_ACCESSES: u64 = 2048;

/// An epoch whose used-to-issued prefetch ratio falls below this is bad.
///
/// Accuracy is judged *issued-based* — `(Δpf_useful + Δpf_late) /
/// Δpf_issued` — not on eviction-settled counts: a useless prefetch into
/// an 8 MB LLC is not evicted (hence not counted `pf_useless`) for
/// millions of cycles, far too late to steer anything. Issued-vs-used is
/// timely and converges to true accuracy in steady state; its only bias
/// is the sub-epoch in-flight lag at ramp-up.
pub const ACCURACY_FLOOR: f64 = 0.5;

/// Used-to-issued ratio above which an epoch counts as good (between the
/// floor and this the epoch is neutral: streaks reset, level holds).
pub const ACCURACY_TARGET: f64 = 0.75;

/// Minimum prefetches issued in an epoch for its accuracy to count as
/// evidence; below this the epoch is neutral (sampling noise on a handful
/// of prefetches must not walk the ladder).
pub const MIN_EVIDENCE: u64 = 8;

/// Prefetch share of DRAM reads above which an epoch is bad regardless of
/// accuracy — even accurate prefetching must yield when it starves demand
/// fills of bandwidth.
pub const BANDWIDTH_CEILING: f64 = 0.6;

/// Average DRAM queue wait per read, in multiples of the channel's
/// per-transfer service time, above which the memory system counts as
/// *congested*. Past this point every read is queued behind several others
/// and the channel is the bottleneck, so a wasted prefetch transfer costs
/// a full service slot that a demand fill wanted.
pub const CONGESTION_WAIT_FACTOR: f64 = 2.0;

/// [`ACCURACY_FLOOR`] while the DRAM channel is congested. Moderately
/// accurate prefetching is profitable when bandwidth is spare — a 70%-hit
/// burst still hides latency — but on a saturated channel a useful
/// prefetch only *moves* a transfer earlier while a useless one *adds*
/// a transfer, so the break-even accuracy climbs steeply.
pub const CONGESTED_ACCURACY_FLOOR: f64 = 0.85;

/// [`ACCURACY_TARGET`] while the DRAM channel is congested.
pub const CONGESTED_ACCURACY_TARGET: f64 = 0.95;

/// Consecutive bad epochs before degrading one level.
pub const DEGRADE_AFTER: u32 = 2;

/// Consecutive good epochs before upgrading one level (the starting
/// upgrade patience; failed probes back it off, see
/// [`MAX_UPGRADE_PATIENCE`]).
pub const UPGRADE_AFTER: u32 = 4;

/// Epochs an upgrade must survive without degrading back for the probe to
/// count as successful.
pub const PROBE_WINDOW: u32 = 4;

/// Ceiling on the backed-off upgrade patience. Without backoff the
/// controller limit-cycles on steadily hostile traffic: good epochs at
/// the throttled level earn an upgrade, the restored aggressiveness is
/// promptly judged bad, and the two full-blast epochs per cycle cost real
/// bandwidth. Doubling the patience after every failed probe makes those
/// probes geometrically rarer, while one survived probe resets patience
/// to [`UPGRADE_AFTER`] so genuine pressure relief still recovers fast.
pub const MAX_UPGRADE_PATIENCE: u32 = 64;

/// Cumulative controller activity, for diagnostics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ThrottleStats {
    /// Completed evaluation epochs.
    pub epochs: u64,
    /// Epochs judged bad (inaccurate or bandwidth-starving).
    pub bad_epochs: u64,
    /// Epochs judged good (accurate and within the bandwidth budget).
    pub good_epochs: u64,
    /// Level degradations applied.
    pub degrades: u64,
    /// Level upgrades applied.
    pub upgrades: u64,
}

/// Counter snapshot at the previous epoch boundary, so each epoch is
/// judged on its own deltas.
#[derive(Copy, Clone, Debug, Default)]
struct Snapshot {
    pf_issued: u64,
    pf_useful: u64,
    pf_late: u64,
    prefetch_reads: u64,
    reads: u64,
    queue_wait_cycles: u64,
}

impl Snapshot {
    fn of(llc: &CacheStats, dram: &DramStats) -> Self {
        Snapshot {
            pf_issued: llc.pf_issued,
            pf_useful: llc.pf_useful,
            pf_late: llc.pf_late,
            prefetch_reads: dram.prefetch_reads,
            reads: dram.reads,
            queue_wait_cycles: dram.queue_wait_cycles,
        }
    }
}

/// The per-epoch verdict driving the hysteresis streaks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Verdict {
    Good,
    Neutral,
    Bad,
}

/// Closed-loop prefetch-aggressiveness controller.
///
/// Owned by the memory system when `BINGO_THROTTLE` is not `off`; fed one
/// [`on_access`](ThrottleController::on_access) call per demand access.
/// Every [`EPOCH_ACCESSES`] accesses it judges the elapsed epoch from the
/// LLC and DRAM counter deltas and walks the [`ThrottleLevel`] ladder.
#[derive(Debug)]
pub struct ThrottleController {
    mode: ThrottleMode,
    level: ThrottleLevel,
    accesses: u64,
    snap: Snapshot,
    bad_streak: u32,
    good_streak: u32,
    /// Good epochs currently required for an upgrade; starts at
    /// [`UPGRADE_AFTER`], doubles on every failed probe (capped at
    /// [`MAX_UPGRADE_PATIENCE`]), resets on a survived one.
    upgrade_patience: u32,
    /// An in-flight upgrade probe: the level upgraded to and the epochs
    /// elapsed since. `None` when no probe is outstanding.
    probe: Option<(ThrottleLevel, u32)>,
    /// DRAM per-transfer service time, used to normalize queue-wait cycles
    /// into a congestion signal. `None` disables congestion gating (the
    /// memory system always supplies it; see
    /// [`with_dram_service_cycles`](ThrottleController::with_dram_service_cycles)).
    dram_service_cycles: Option<u64>,
    /// Cumulative controller activity.
    pub stats: ThrottleStats,
}

impl ThrottleController {
    /// Creates a controller for an enabled mode.
    ///
    /// # Panics
    ///
    /// Panics on [`ThrottleMode::Off`]: disabled throttling must carry no
    /// controller at all (that is what keeps it bit-for-bit invisible).
    pub fn new(mode: ThrottleMode) -> Self {
        assert!(mode.enabled(), "ThrottleMode::Off needs no controller");
        ThrottleController {
            mode,
            level: match mode {
                ThrottleMode::Static => ThrottleLevel::RaisedVote,
                _ => ThrottleLevel::Full,
            },
            accesses: 0,
            snap: Snapshot::default(),
            bad_streak: 0,
            good_streak: 0,
            upgrade_patience: UPGRADE_AFTER,
            probe: None,
            dram_service_cycles: None,
            stats: ThrottleStats::default(),
        }
    }

    /// Supplies the DRAM per-transfer service time so the controller can
    /// tell a congested channel (average queue wait of several service
    /// slots per read) from a lightly loaded one, and demand
    /// [`CONGESTED_ACCURACY_FLOOR`]/[`CONGESTED_ACCURACY_TARGET`] accuracy
    /// while congested. Without it congestion gating is disabled.
    pub fn with_dram_service_cycles(mut self, transfer_cycles: u64) -> Self {
        self.dram_service_cycles = Some(transfer_cycles);
        self
    }

    /// The mode the controller was built for.
    pub fn mode(&self) -> ThrottleMode {
        self.mode
    }

    /// The current effective level.
    pub fn level(&self) -> ThrottleLevel {
        self.level
    }

    /// Counts one demand access; at epoch boundaries judges the elapsed
    /// epoch and returns `Some(new_level)` if the level changed (the
    /// caller pushes it to the prefetchers).
    #[inline]
    pub fn on_access(&mut self, llc: &CacheStats, dram: &DramStats) -> Option<ThrottleLevel> {
        self.accesses += 1;
        if self.accesses < EPOCH_ACCESSES {
            return None;
        }
        self.epoch_boundary(llc, dram)
    }

    /// The 1-in-[`EPOCH_ACCESSES`] slow path of
    /// [`on_access`](ThrottleController::on_access), kept out of line so
    /// the per-access counter bump inlines into the memory system's demand
    /// path without dragging the epoch-judging code with it.
    #[inline(never)]
    fn epoch_boundary(&mut self, llc: &CacheStats, dram: &DramStats) -> Option<ThrottleLevel> {
        self.accesses = 0;
        self.stats.epochs += 1;
        let verdict = self.judge(llc, dram);
        self.snap = Snapshot::of(llc, dram);
        if self.mode == ThrottleMode::Static {
            // Static mode keeps its fixed conservative level; epochs are
            // still counted so diagnostics stay comparable.
            return None;
        }
        let before = self.level;
        // Age the outstanding probe; one that outlives its window at the
        // probed (or better) level succeeded — pressure genuinely lifted.
        if let Some((target, age)) = self.probe.as_mut() {
            *age += 1;
            if *age > PROBE_WINDOW && self.level <= *target {
                self.upgrade_patience = UPGRADE_AFTER;
                self.probe = None;
            }
        }
        match verdict {
            Verdict::Bad => {
                self.stats.bad_epochs += 1;
                self.good_streak = 0;
                self.bad_streak += 1;
                if self.bad_streak >= DEGRADE_AFTER {
                    self.bad_streak = 0;
                    self.level = self.level.degraded();
                    if self.level != before {
                        self.stats.degrades += 1;
                        if self.probe.take().is_some() {
                            // The upgrade was promptly punished: back off
                            // before probing again.
                            self.upgrade_patience =
                                (self.upgrade_patience * 2).min(MAX_UPGRADE_PATIENCE);
                        }
                    }
                }
            }
            Verdict::Good => {
                self.stats.good_epochs += 1;
                self.bad_streak = 0;
                self.good_streak += 1;
                if self.good_streak >= self.upgrade_patience {
                    self.good_streak = 0;
                    self.level = self.level.upgraded();
                    if self.level != before {
                        self.stats.upgrades += 1;
                        self.probe = Some((self.level, 0));
                    }
                }
            }
            Verdict::Neutral => {
                self.bad_streak = 0;
                self.good_streak = 0;
            }
        }
        (self.level != before).then_some(self.level)
    }

    /// Re-bases the counter snapshot after external statistics resets (the
    /// end-of-warmup reset), keeping the learned level and streaks — like
    /// predictor tables, controller state survives warmup.
    pub fn on_stats_reset(&mut self) {
        self.snap = Snapshot::default();
        self.accesses = 0;
    }

    fn judge(&self, llc: &CacheStats, dram: &DramStats) -> Verdict {
        // saturating_sub: an external reset between boundaries (warmup)
        // re-bases via on_stats_reset, but stay safe against torn views.
        let useful = llc.pf_useful.saturating_sub(self.snap.pf_useful);
        let late = llc.pf_late.saturating_sub(self.snap.pf_late);
        let issued = llc.pf_issued.saturating_sub(self.snap.pf_issued);
        let pf_reads = dram.prefetch_reads.saturating_sub(self.snap.prefetch_reads);
        let reads = dram.reads.saturating_sub(self.snap.reads);
        let queue_wait = dram
            .queue_wait_cycles
            .saturating_sub(self.snap.queue_wait_cycles);
        let used = useful + late;
        if issued == 0 {
            // Nothing issued: the prefetcher is quiet (Stopped, or nothing
            // triggered) and any settlements are free wins from earlier
            // epochs. Counts as good, so a stopped prefetcher probes its
            // way back up once pressure could have lifted.
            return Verdict::Good;
        }
        if issued < MIN_EVIDENCE {
            return Verdict::Neutral;
        }
        // Issued-based accuracy (see ACCURACY_FLOOR): how much of what the
        // prefetcher asked for this epoch did demand actually want? Can
        // exceed 1.0 when prior epochs' prefetches settle late — that only
        // strengthens a good verdict.
        let accuracy = used as f64 / issued as f64;
        let bw_share = if reads == 0 {
            0.0
        } else {
            pf_reads as f64 / reads as f64
        };
        // Congestion raises the accuracy bar: when reads queue several
        // service slots deep on average, the channel is the bottleneck and
        // wasted transfers directly delay demand fills.
        let congested = self.dram_service_cycles.is_some_and(|svc| {
            reads > 0 && queue_wait as f64 / reads as f64 > CONGESTION_WAIT_FACTOR * svc as f64
        });
        let (floor, target) = if congested {
            (CONGESTED_ACCURACY_FLOOR, CONGESTED_ACCURACY_TARGET)
        } else {
            (ACCURACY_FLOOR, ACCURACY_TARGET)
        };
        if accuracy < floor || bw_share > BANDWIDTH_CEILING {
            Verdict::Bad
        } else if accuracy >= target {
            Verdict::Good
        } else {
            Verdict::Neutral
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick_epoch(
        c: &mut ThrottleController,
        llc: &CacheStats,
        dram: &DramStats,
    ) -> Option<ThrottleLevel> {
        let mut change = None;
        for _ in 0..EPOCH_ACCESSES {
            if let Some(l) = c.on_access(llc, dram) {
                change = Some(l);
            }
        }
        change
    }

    fn stats_with(useful: u64, useless: u64) -> (CacheStats, DramStats) {
        let llc = CacheStats {
            pf_issued: useful + useless,
            pf_useful: useful,
            pf_useless: useless,
            ..CacheStats::default()
        };
        (llc, DramStats::default())
    }

    #[test]
    fn parse_accepts_knob_spellings() {
        assert_eq!(ThrottleMode::parse("off"), Some(ThrottleMode::Off));
        assert_eq!(ThrottleMode::parse(" STATIC "), Some(ThrottleMode::Static));
        assert_eq!(
            ThrottleMode::parse("feedback"),
            Some(ThrottleMode::Feedback)
        );
        assert_eq!(
            ThrottleMode::parse("Feedback"),
            Some(ThrottleMode::Feedback)
        );
        assert_eq!(ThrottleMode::parse("none"), Some(ThrottleMode::Off));
        assert_eq!(ThrottleMode::parse("aggressive"), None);
        assert_eq!(ThrottleMode::parse(""), None);
    }

    #[test]
    fn ladder_is_monotone_and_saturating() {
        let mut l = ThrottleLevel::Full;
        let mut seen = vec![l];
        for _ in 0..5 {
            l = l.degraded();
            seen.push(l);
        }
        assert_eq!(
            &seen[..4],
            &[
                ThrottleLevel::Full,
                ThrottleLevel::RaisedVote,
                ThrottleLevel::TriggerOnly,
                ThrottleLevel::Stopped
            ]
        );
        assert_eq!(l, ThrottleLevel::Stopped, "degrade saturates");
        assert_eq!(ThrottleLevel::Full.upgraded(), ThrottleLevel::Full);
        assert!(ThrottleLevel::Full < ThrottleLevel::Stopped);
    }

    #[test]
    #[should_panic(expected = "needs no controller")]
    fn off_mode_refuses_a_controller() {
        let _ = ThrottleController::new(ThrottleMode::Off);
    }

    #[test]
    fn static_mode_pins_raised_vote() {
        let mut c = ThrottleController::new(ThrottleMode::Static);
        assert_eq!(c.level(), ThrottleLevel::RaisedVote);
        let (llc, dram) = stats_with(0, 1000); // terrible accuracy
        for _ in 0..10 {
            assert_eq!(tick_epoch(&mut c, &llc, &dram), None);
        }
        assert_eq!(c.level(), ThrottleLevel::RaisedVote);
        assert_eq!(c.stats.epochs, 10);
    }

    #[test]
    fn sustained_inaccuracy_degrades_to_stopped() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let (mut llc, dram) = stats_with(0, 0);
        let mut changes = Vec::new();
        for epoch in 1..=8u64 {
            // Fresh useless prefetches settle every epoch.
            llc.pf_issued = epoch * 100;
            llc.pf_useless = epoch * 100;
            if let Some(l) = tick_epoch(&mut c, &llc, &dram) {
                changes.push(l);
            }
        }
        assert_eq!(
            changes,
            vec![
                ThrottleLevel::RaisedVote,
                ThrottleLevel::TriggerOnly,
                ThrottleLevel::Stopped
            ],
            "one degrade per {DEGRADE_AFTER} bad epochs, saturating"
        );
        assert_eq!(c.stats.degrades, 3);
    }

    #[test]
    fn quiet_epochs_let_a_stopped_prefetcher_recover() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let (mut llc, dram) = stats_with(0, 0);
        for epoch in 1..=6u64 {
            llc.pf_issued = epoch * 100;
            llc.pf_useless = epoch * 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Stopped);
        // Stopped: no new prefetch activity at all -> quiet epochs are
        // good, and every UPGRADE_AFTER of them climb one level.
        let frozen = llc.clone();
        for _ in 0..u64::from(UPGRADE_AFTER) * 3 {
            tick_epoch(&mut c, &frozen, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Full, "full recovery");
        assert_eq!(c.stats.upgrades, 3);
    }

    #[test]
    fn accurate_epochs_hold_full_aggressiveness() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let (mut llc, dram) = stats_with(0, 0);
        for epoch in 1..=10u64 {
            llc.pf_issued = epoch * 100;
            llc.pf_useful = epoch * 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Full);
        assert_eq!(c.stats.degrades, 0);
        assert_eq!(c.stats.good_epochs, 10);
    }

    #[test]
    fn bandwidth_hogging_is_bad_even_when_accurate() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let mut dram = DramStats::default();
        for epoch in 1..=4u64 {
            llc.pf_issued = epoch * 100;
            llc.pf_useful = epoch * 100; // perfectly accurate
            dram.prefetch_reads = epoch * 90; // ...but 90% of all reads
            dram.reads = epoch * 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert!(c.level() > ThrottleLevel::Full, "bandwidth ceiling fired");
        assert!(c.stats.bad_epochs >= 2);
    }

    #[test]
    fn sustained_issue_without_use_is_bad() {
        // Issuing epoch after epoch with demand never touching a prefetched
        // block is exactly what a useless storm looks like — the in-flight
        // lag excuse only lasts a fraction of one epoch.
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let dram = DramStats::default();
        for epoch in 1..=6u64 {
            llc.pf_issued = epoch * 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert!(c.level() > ThrottleLevel::Full);
        assert!(c.stats.bad_epochs >= 4);
    }

    #[test]
    fn tiny_samples_are_neutral_evidence() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let dram = DramStats::default();
        for epoch in 1..=6u64 {
            // A trickle below MIN_EVIDENCE, all of it useless: too little
            // to walk the ladder either way.
            llc.pf_issued = epoch * (MIN_EVIDENCE - 1);
            tick_epoch(&mut c, &llc, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Full);
        assert_eq!(c.stats.bad_epochs, 0);
        assert_eq!(c.stats.good_epochs, 0);
    }

    #[test]
    fn congestion_raises_the_accuracy_bar() {
        // 80% accuracy: comfortably good on an idle channel, bad on one
        // where reads queue several service slots deep.
        let run = |queue_wait_per_read: u64| {
            let mut c =
                ThrottleController::new(ThrottleMode::Feedback).with_dram_service_cycles(14);
            let mut llc = CacheStats::default();
            let mut dram = DramStats::default();
            for _ in 0..6 {
                llc.pf_issued += 100;
                llc.pf_useful += 80;
                dram.reads += 100;
                dram.queue_wait_cycles += 100 * queue_wait_per_read;
                tick_epoch(&mut c, &llc, &dram);
            }
            c
        };
        let idle = run(0);
        assert_eq!(idle.level(), ThrottleLevel::Full);
        assert!(idle.stats.bad_epochs == 0 && idle.stats.good_epochs >= 4);
        let congested = run(100); // far past CONGESTION_WAIT_FACTOR * 14
        assert!(congested.level() > ThrottleLevel::Full);
        assert!(congested.stats.bad_epochs >= 4);
    }

    #[test]
    fn failed_probes_back_off_exponentially() {
        // Steadily hostile traffic: every epoch spent at Full issues
        // useless prefetches (Bad), every throttled epoch is accurate
        // (Good). Without backoff the controller limit-cycles, spending a
        // third of all epochs at full blast; with it the probes must get
        // geometrically rarer.
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let dram = DramStats::default();
        let mut full_epochs = 0u32;
        for _ in 0..120 {
            if c.level() == ThrottleLevel::Full {
                full_epochs += 1;
                llc.pf_issued += 100; // nothing used: Bad
            } else {
                llc.pf_issued += 100;
                llc.pf_useful += 100; // accurate when throttled: Good
            }
            tick_epoch(&mut c, &llc, &dram);
        }
        // Limit-cycling would put ~40 of 120 epochs at Full; backoff caps
        // the early oscillation plus ever-rarer probes well below that.
        assert!(
            full_epochs <= 16,
            "{full_epochs} full-blast epochs despite hostile traffic"
        );
        assert!(c.stats.degrades > c.stats.upgrades);
    }

    #[test]
    fn surviving_a_probe_restores_upgrade_patience() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let mut llc = CacheStats::default();
        let dram = DramStats::default();
        // Drive to Stopped with a couple of failed probes to inflate the
        // patience.
        for _ in 0..40 {
            llc.pf_issued += 100;
            tick_epoch(&mut c, &llc, &dram);
        }
        assert_eq!(c.level(), ThrottleLevel::Stopped);
        // Pressure lifts: quiet epochs from here on. Recovery to Full must
        // complete despite the earlier failures — each survived probe
        // resets the patience, so the climb accelerates back to the
        // UPGRADE_AFTER cadence instead of paying the inflated patience at
        // every rung.
        let mut recovery = 0u32;
        while c.level() != ThrottleLevel::Full {
            tick_epoch(&mut c, &llc, &dram);
            recovery += 1;
            assert!(recovery < 300, "recovery stalled at {}", c.level());
        }
        assert!(
            recovery <= MAX_UPGRADE_PATIENCE + 3 * (UPGRADE_AFTER + PROBE_WINDOW) + 8,
            "recovery took {recovery} epochs"
        );
    }

    #[test]
    fn stats_reset_rebases_the_snapshot() {
        let mut c = ThrottleController::new(ThrottleMode::Feedback);
        let (llc, dram) = stats_with(1000, 0);
        tick_epoch(&mut c, &llc, &dram);
        // Warmup reset: counters go back to zero without controller resets
        // looking like negative deltas.
        c.on_stats_reset();
        let (llc2, dram2) = stats_with(10, 0);
        tick_epoch(&mut c, &llc2, &dram2);
        assert_eq!(c.stats.epochs, 2);
        assert_eq!(c.stats.good_epochs, 2);
    }
}
