//! Statistics collected during simulation and the derived metrics the
//! paper's figures report (MPKI, IPC, miss coverage, accuracy,
//! overprediction).

use std::fmt;

use crate::telemetry::TelemetryReport;

/// Counters for one cache (the LLC counters drive every figure).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand (load/store) lookups.
    pub demand_accesses: u64,
    /// Demand lookups that hit a resident, ready block.
    pub demand_hits: u64,
    /// Demand lookups that hit a block still in flight (MSHR merge). For a
    /// prefetched in-flight block this is a *late* prefetch: partially
    /// covered.
    pub demand_hits_pending: u64,
    /// Demand lookups that missed entirely.
    pub demand_misses: u64,
    /// Demand misses rejected because no MSHR was available (retried later).
    pub demand_mshr_stalls: u64,
    /// Lines evicted to make room for fills.
    pub evictions: u64,
    /// Dirty evictions written back toward memory.
    pub writebacks: u64,
    /// Prefetch candidates the prefetcher produced.
    pub pf_requested: u64,
    /// Prefetches dropped because the block was already resident or in
    /// flight.
    pub pf_dropped_duplicate: u64,
    /// Prefetches dropped because no prefetch-eligible MSHR was available.
    pub pf_dropped_mshr: u64,
    /// Prefetches dropped because the bounded prefetch queue was full
    /// (0 unless [`SystemConfig::prefetch_queue_depth`] bounds the queue).
    ///
    /// [`SystemConfig::prefetch_queue_depth`]: crate::SystemConfig
    pub pf_dropped_queue: u64,
    /// Prefetches actually sent to the next level.
    pub pf_issued: u64,
    /// Prefetched fills that were demanded before eviction (counted once per
    /// prefetched line, on first demand touch after the fill completed).
    pub pf_useful: u64,
    /// Prefetched fills demanded while still in flight (late but useful).
    pub pf_late: u64,
    /// Prefetched lines evicted without ever being demanded.
    pub pf_useless: u64,
}

impl CacheStats {
    /// Demand misses per kilo-instruction, given the retired instruction
    /// count of the whole chip.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.demand_misses as f64 * 1000.0 / instructions as f64
    }

    /// Fraction of issued-and-completed prefetches that were useful
    /// (the paper's *accuracy*). Late prefetches count as useful.
    pub fn accuracy(&self) -> f64 {
        let used = self.pf_useful + self.pf_late;
        let judged = used + self.pf_useless;
        if judged == 0 {
            0.0
        } else {
            used as f64 / judged as f64
        }
    }

    /// Hit ratio over demand accesses (ready hits only).
    pub fn hit_ratio(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_hits as f64 / self.demand_accesses as f64
        }
    }
}

/// Counters for one core.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles the core was simulated for (until it reached its instruction
    /// target).
    pub cycles: u64,
    /// Loads dispatched.
    pub loads: u64,
    /// Stores dispatched.
    pub stores: u64,
    /// Cycles dispatch was blocked because a load could not get an L1 MSHR.
    pub dispatch_stall_cycles: u64,
    /// Cycles dispatch was blocked waiting for a dependent load's producer.
    pub dependency_stall_cycles: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Accounting of a trace-ingestion pass: how many records a streaming
/// loader delivered to the simulator and how much corrupt input it had to
/// quarantine along the way.
///
/// Produced by lenient-mode trace readers (see the `bingo-trace` crate)
/// through [`crate::InstrSource::ingest_report`]; [`System::try_run`]
/// sums the per-core reports into [`SimResult::ingest`] so quarantined
/// input is visible in every stats export and checkpoint. A run whose
/// sources are all synthetic generators carries `None` — the field then
/// serializes to nothing and historical checkpoint files stay valid.
///
/// [`System::try_run`]: crate::System::try_run
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Records successfully decoded and handed to the core.
    pub delivered_records: u64,
    /// Records declared by the trace but lost to corruption (skipped
    /// chunks, undecodable payload bytes, truncated tails).
    pub quarantined_records: u64,
    /// Raw bytes discarded while scanning for the next valid chunk.
    pub quarantined_bytes: u64,
    /// Chunks abandoned because their framing or checksum was invalid.
    pub skipped_chunks: u64,
}

impl IngestReport {
    /// Accumulates another report into this one (used to sum per-core
    /// readers, and to total successive replay loops of one reader).
    pub fn absorb(&mut self, other: &IngestReport) {
        self.delivered_records += other.delivered_records;
        self.quarantined_records += other.quarantined_records;
        self.quarantined_bytes += other.quarantined_bytes;
        self.skipped_chunks += other.skipped_chunks;
    }

    /// Whether any input was quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined_records == 0 && self.quarantined_bytes == 0 && self.skipped_chunks == 0
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} record(s) delivered, {} quarantined ({} byte(s) skipped, {} chunk(s) dropped)",
            self.delivered_records,
            self.quarantined_records,
            self.quarantined_bytes,
            self.skipped_chunks
        )
    }
}

/// One core's share of the chip's prefetch traffic and throttle activity
/// in a [`ThrottleMode::Percore`] run — the per-core attribution the QoS
/// model is built on.
///
/// [`ThrottleMode::Percore`]: crate::ThrottleMode::Percore
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreQos {
    /// Resolved demand accesses by this core (the progress proxy the
    /// starvation watchdog compares).
    pub demand_accesses: u64,
    /// Prefetches this core's prefetcher issued toward DRAM.
    pub pf_issued: u64,
    /// Issued prefetches later demanded (timely or late), credited to
    /// the issuing core.
    pub pf_used: u64,
    /// DRAM reads carrying this core's prefetches.
    pub prefetch_reads: u64,
    /// All DRAM reads attributed to this core (demand misses plus its
    /// prefetches).
    pub reads: u64,
    /// Per-core controller epochs completed.
    pub epochs: u64,
    /// Level degradations this core's controller applied (feedback and
    /// watchdog clamps combined).
    pub degrades: u64,
    /// Level upgrades this core's controller applied.
    pub upgrades: u64,
    /// The core's final [`ThrottleLevel`] as a ladder index (0 = full,
    /// 3 = stopped).
    ///
    /// [`ThrottleLevel`]: crate::ThrottleLevel
    pub final_level: u8,
}

/// The per-core QoS accounting of a [`ThrottleMode::Percore`] run,
/// attached to [`SimResult::qos`]. Every other throttle mode carries
/// `None` — the field then serializes to nothing (like
/// [`SimResult::ingest`]) and historical checkpoint files stay valid.
///
/// [`ThrottleMode::Percore`]: crate::ThrottleMode::Percore
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QosReport {
    /// Per-core attribution and throttle activity, indexed by core id.
    pub cores: Vec<CoreQos>,
    /// Chip-level watchdog epochs completed.
    pub watchdog_epochs: u64,
    /// Watchdog epochs whose min/max progress ratio violated the SLO.
    pub watchdog_starved_epochs: u64,
    /// Forced degradations the watchdog applied to offender cores.
    pub watchdog_clamps: u64,
    /// Offenders spared by the never-all-stopped arbiter rule.
    pub watchdog_exempted: u64,
}

/// The complete outcome of one simulation run.
///
/// `PartialEq` compares every counter and debug string — used by the
/// bench crate's serial-vs-parallel determinism test to assert bit-for-bit
/// identical results.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Per-core statistics, indexed by core id.
    pub cores: Vec<CoreStats>,
    /// Aggregated L1 data cache statistics (summed over cores).
    pub l1d: CacheStats,
    /// Shared LLC statistics.
    pub llc: CacheStats,
    /// Total DRAM data transfers (demand fills + prefetch fills +
    /// writebacks), for bandwidth-pressure reporting.
    pub dram_transfers: u64,
    /// Cycle at which the last core finished.
    pub total_cycles: u64,
    /// Per-core prefetcher internal diagnostics
    /// ([`crate::prefetch::Prefetcher::debug_stats`]).
    pub prefetcher_debug: Vec<String>,
    /// Per-core structured prefetcher metrics
    /// ([`crate::prefetch::Prefetcher::metrics`]).
    pub prefetcher_metrics: Vec<Vec<(&'static str, f64)>>,
    /// Prefetch-lifecycle breakdown (timeliness, per-source and per-PC
    /// attribution); `None` unless the run enabled telemetry.
    pub telemetry: Option<TelemetryReport>,
    /// Trace-ingestion accounting summed over every instruction source;
    /// `None` when no source replays a trace (synthetic generators).
    pub ingest: Option<IngestReport>,
    /// Per-core QoS attribution and watchdog activity; `None` unless the
    /// run used [`ThrottleMode::Percore`](crate::ThrottleMode::Percore).
    pub qos: Option<QosReport>,
}

impl SimResult {
    /// Sums a named prefetcher metric over all cores; `None` if no core
    /// reported it.
    pub fn metric_sum(&self, name: &str) -> Option<f64> {
        let mut found = false;
        let mut sum = 0.0;
        for core in &self.prefetcher_metrics {
            for (n, v) in core {
                if *n == name {
                    found = true;
                    sum += v;
                }
            }
        }
        found.then_some(sum)
    }
}

impl SimResult {
    /// Total instructions retired across cores.
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Chip-wide IPC: total instructions / cycles until the last core
    /// finished.
    pub fn aggregate_ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / self.total_cycles as f64
        }
    }

    /// LLC demand misses per kilo-instruction — the metric of Table II.
    pub fn llc_mpki(&self) -> f64 {
        self.llc.mpki(self.instructions())
    }

    /// Per-core IPC, indexed by core id.
    pub fn core_ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(CoreStats::ipc).collect()
    }

    /// Ratio of the slowest core's IPC to the fastest core's IPC — the raw
    /// (workload-blind) fairness signal of a multi-core run. 1.0 means
    /// perfectly balanced progress; values near 0 mean one core is starved.
    /// Returns 1.0 for empty or all-idle runs so the metric is always a
    /// valid ratio.
    pub fn min_max_ipc_ratio(&self) -> f64 {
        let ipcs = self.core_ipcs();
        let max = ipcs.iter().cloned().fold(0.0_f64, f64::max);
        if max == 0.0 {
            return 1.0;
        }
        let min = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
        min / max
    }

    /// Geometric mean of per-core IPC speedups versus a baseline run of the
    /// same workload (the paper's "performance improvement" metric).
    ///
    /// # Panics
    ///
    /// Panics if the two results have different core counts.
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        assert_eq!(
            self.cores.len(),
            baseline.cores.len(),
            "speedup requires identical core counts"
        );
        let mut log_sum = 0.0;
        for (a, b) in self.cores.iter().zip(&baseline.cores) {
            let s = a.ipc() / b.ipc();
            log_sum += s.ln();
        }
        (log_sum / self.cores.len() as f64).exp()
    }
}

impl fmt::Display for SimResult {
    /// Multi-line human-readable run summary (IPC, MPKI, prefetch
    /// effectiveness) — handy in examples and ad-hoc tools.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "instructions {:>12}   cycles {:>12}   aggregate IPC {:.3}",
            self.instructions(),
            self.total_cycles,
            self.aggregate_ipc()
        )?;
        for (i, c) in self.cores.iter().enumerate() {
            writeln!(
                f,
                "  core{i}: IPC {:.3} ({} loads, {} stores)",
                c.ipc(),
                c.loads,
                c.stores
            )?;
        }
        writeln!(
            f,
            "LLC: {} accesses, {} misses (MPKI {:.2}), hit ratio {:.1}%",
            self.llc.demand_accesses,
            self.llc.demand_misses,
            self.llc_mpki(),
            self.llc.hit_ratio() * 100.0
        )?;
        if self.llc.pf_issued > 0 {
            writeln!(
                f,
                "prefetch: {} issued, {} useful, {} late, {} useless (accuracy {:.1}%)",
                self.llc.pf_issued,
                self.llc.pf_useful,
                self.llc.pf_late,
                self.llc.pf_useless,
                self.llc.accuracy() * 100.0
            )?;
        }
        write!(f, "DRAM transfers: {}", self.dram_transfers)
    }
}

/// Miss coverage and overprediction of a prefetching run relative to a
/// baseline (no-prefetcher) run of the same workload, using the paper's
/// definitions (Section VI-B).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CoverageReport {
    /// Fraction of baseline misses eliminated: `(M0 - M) / M0`, clamped at 0.
    pub coverage: f64,
    /// Useless prefetches normalized to baseline misses: `useless / M0`.
    pub overprediction: f64,
    /// Prefetch accuracy (useful / completed).
    pub accuracy: f64,
    /// Fraction of *used* prefetches that completed before their demand
    /// arrived: `useful / (useful + late)`. 0 when nothing was used.
    pub timeliness: f64,
    /// Baseline demand misses `M0`.
    pub baseline_misses: u64,
    /// Demand misses with the prefetcher active.
    pub misses_with_prefetch: u64,
}

impl CoverageReport {
    /// Computes the report from a prefetching run and its no-prefetcher
    /// baseline.
    pub fn from_runs(with_pf: &SimResult, baseline: &SimResult) -> Self {
        let m0 = baseline.llc.demand_misses;
        let m = with_pf.llc.demand_misses;
        let coverage = if m0 == 0 {
            0.0
        } else {
            ((m0 as f64 - m as f64) / m0 as f64).max(0.0)
        };
        let overprediction = if m0 == 0 {
            0.0
        } else {
            with_pf.llc.pf_useless as f64 / m0 as f64
        };
        let used = with_pf.llc.pf_useful + with_pf.llc.pf_late;
        let timeliness = if used == 0 {
            0.0
        } else {
            with_pf.llc.pf_useful as f64 / used as f64
        };
        CoverageReport {
            coverage,
            overprediction,
            accuracy: with_pf.llc.accuracy(),
            timeliness,
            baseline_misses: m0,
            misses_with_prefetch: m,
        }
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coverage {:5.1}%  overpred {:5.1}%  accuracy {:5.1}%  timely {:5.1}%",
            self.coverage * 100.0,
            self.overprediction * 100.0,
            self.accuracy * 100.0,
            self.timeliness * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(misses: u64, useful: u64, useless: u64) -> SimResult {
        SimResult {
            cores: vec![CoreStats {
                instructions: 1000,
                cycles: 2000,
                ..Default::default()
            }],
            llc: CacheStats {
                demand_misses: misses,
                pf_useful: useful,
                pf_useless: useless,
                ..Default::default()
            },
            total_cycles: 2000,
            ..Default::default()
        }
    }

    #[test]
    fn mpki_definition() {
        let s = CacheStats {
            demand_misses: 50,
            ..Default::default()
        };
        assert_eq!(s.mpki(10_000), 5.0);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn accuracy_counts_late_as_useful() {
        let s = CacheStats {
            pf_useful: 6,
            pf_late: 2,
            pf_useless: 2,
            ..Default::default()
        };
        assert!((s.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn accuracy_zero_when_no_prefetches() {
        assert_eq!(CacheStats::default().accuracy(), 0.0);
    }

    #[test]
    fn min_max_ipc_ratio_bounds() {
        let mut r = SimResult::default();
        // No cores at all: degenerate but still a valid ratio.
        assert_eq!(r.min_max_ipc_ratio(), 1.0);
        r.cores = vec![
            CoreStats {
                instructions: 1000,
                cycles: 1000,
                ..Default::default()
            },
            CoreStats {
                instructions: 500,
                cycles: 2000,
                ..Default::default()
            },
        ];
        // IPCs 1.0 and 0.25.
        assert!((r.min_max_ipc_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(r.core_ipcs(), vec![1.0, 0.25]);
        // All-idle run (zero cycles everywhere).
        r.cores.iter_mut().for_each(|c| c.cycles = 0);
        assert_eq!(r.min_max_ipc_ratio(), 1.0);
    }

    #[test]
    fn coverage_report_basic() {
        let base = run_with(100, 0, 0);
        let pf = run_with(40, 60, 25);
        let r = CoverageReport::from_runs(&pf, &base);
        assert!((r.coverage - 0.6).abs() < 1e-12);
        assert!((r.overprediction - 0.25).abs() < 1e-12);
        assert_eq!(r.baseline_misses, 100);
        assert_eq!(r.misses_with_prefetch, 40);
    }

    #[test]
    fn coverage_clamped_at_zero_when_prefetcher_pollutes() {
        let base = run_with(100, 0, 0);
        let pf = run_with(120, 0, 80);
        let r = CoverageReport::from_runs(&pf, &base);
        assert_eq!(r.coverage, 0.0);
        assert!((r.overprediction - 0.8).abs() < 1e-12);
    }

    #[test]
    fn timeliness_is_timely_fraction_of_used() {
        let base = run_with(100, 0, 0);
        let mut pf = run_with(40, 6, 25);
        pf.llc.pf_late = 2;
        let r = CoverageReport::from_runs(&pf, &base);
        assert!((r.timeliness - 0.75).abs() < 1e-12);
        // No used prefetches at all: timeliness defined as 0.
        let idle = CoverageReport::from_runs(&run_with(100, 0, 0), &base);
        assert_eq!(idle.timeliness, 0.0);
    }

    #[test]
    fn coverage_zero_baseline_misses() {
        let base = run_with(0, 0, 0);
        let pf = run_with(0, 0, 5);
        let r = CoverageReport::from_runs(&pf, &base);
        assert_eq!(r.coverage, 0.0);
        assert_eq!(r.overprediction, 0.0);
    }

    #[test]
    fn ipc_and_speedup() {
        let mut base = run_with(0, 0, 0);
        base.cores[0].cycles = 4000;
        let fast = run_with(0, 0, 0);
        assert!((fast.cores[0].ipc() - 0.5).abs() < 1e-12);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_ipc_sums_cores() {
        let mut r = run_with(0, 0, 0);
        r.cores.push(CoreStats {
            instructions: 3000,
            cycles: 2000,
            ..Default::default()
        });
        r.total_cycles = 2000;
        assert!((r.aggregate_ipc() - 2.0).abs() < 1e-12);
    }
}
