//! Address primitives: byte addresses, cache-block indices, and spatial
//! regions ("pages" in the paper's terminology).
//!
//! The Bingo paper trains and prefetches over *regions*: chunks of contiguous
//! cache blocks holding a few kilobytes. A region is **not** an OS page or a
//! DRAM page; its size is a prefetcher parameter (2 KB by default here,
//! matching the reference ChampSim implementation of Bingo).
//!
//! Throughout the simulator, `BlockAddr` (a 64-byte-block index, i.e. the
//! byte address shifted right by [`BLOCK_SHIFT`]) is the unit the memory
//! hierarchy operates on.

use std::fmt;

/// Cache block (line) size in bytes across the entire hierarchy (Table I).
pub const BLOCK_BYTES: u64 = 64;
/// log2 of [`BLOCK_BYTES`].
pub const BLOCK_SHIFT: u32 = 6;

/// A full byte address in a core's virtual address space.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache block this address falls in.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr::new(raw)
    }
}

/// A cache-block index: the byte address divided by [`BLOCK_BYTES`].
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block index directly.
    pub const fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// The raw block index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first byte address of this block.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// The block `delta` blocks away (may be negative).
    ///
    /// Saturates at zero on underflow rather than wrapping, so a misbehaving
    /// prefetcher cannot fabricate astronomically distant addresses.
    pub fn offset(self, delta: i64) -> BlockAddr {
        if delta >= 0 {
            BlockAddr(self.0.saturating_add(delta as u64))
        } else {
            BlockAddr(self.0.saturating_sub(delta.unsigned_abs()))
        }
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAddr({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifier of a spatial region: the block index divided by the number of
/// blocks per region.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct RegionId(u64);

impl RegionId {
    /// Creates a region id directly.
    pub const fn new(raw: u64) -> Self {
        RegionId(raw)
    }

    /// The raw region index.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegionId({:#x})", self.0)
    }
}

/// Program counter of the instruction performing a memory access.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a PC from its raw value.
    pub const fn new(raw: u64) -> Self {
        Pc(raw)
    }

    /// The raw PC value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pc({:#x})", self.0)
    }
}

/// The block-to-region mapping used by spatial prefetchers.
///
/// Regions are aligned, power-of-two sized groups of cache blocks. The
/// geometry is a runtime parameter so region-size ablations (1 KB / 2 KB /
/// 4 KB) can share all other code.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct RegionGeometry {
    region_shift: u32,
}

impl RegionGeometry {
    /// Creates a geometry for `region_bytes`-sized regions.
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes` is not a power of two or is smaller than one
    /// cache block.
    pub fn new(region_bytes: u64) -> Self {
        assert!(
            region_bytes.is_power_of_two(),
            "region size must be a power of two, got {region_bytes}"
        );
        assert!(
            region_bytes >= BLOCK_BYTES,
            "region must hold at least one block, got {region_bytes} bytes"
        );
        RegionGeometry {
            region_shift: region_bytes.trailing_zeros() - BLOCK_SHIFT,
        }
    }

    /// Number of cache blocks per region.
    pub const fn blocks_per_region(self) -> usize {
        1 << self.region_shift
    }

    /// Region size in bytes.
    pub const fn region_bytes(self) -> u64 {
        (1u64 << self.region_shift) * BLOCK_BYTES
    }

    /// The region containing `block`.
    pub const fn region_of(self, block: BlockAddr) -> RegionId {
        RegionId(block.0 >> self.region_shift)
    }

    /// The offset of `block` within its region, in blocks.
    pub const fn offset_of(self, block: BlockAddr) -> u32 {
        (block.0 & ((1 << self.region_shift) - 1)) as u32
    }

    /// Reconstructs a block address from a region and an offset within it.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset` is out of range for the region.
    pub fn block_at(self, region: RegionId, offset: u32) -> BlockAddr {
        debug_assert!(
            (offset as usize) < self.blocks_per_region(),
            "offset {offset} out of range for {}-block region",
            self.blocks_per_region()
        );
        BlockAddr((region.0 << self.region_shift) | offset as u64)
    }
}

impl Default for RegionGeometry {
    /// The paper-default 2 KB region (32 blocks of 64 bytes).
    fn default() -> Self {
        RegionGeometry::new(2048)
    }
}

/// Identifier of a simulated core.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_addr_strips_low_bits() {
        assert_eq!(Addr::new(0).block(), BlockAddr::new(0));
        assert_eq!(Addr::new(63).block(), BlockAddr::new(0));
        assert_eq!(Addr::new(64).block(), BlockAddr::new(1));
        assert_eq!(Addr::new(0x1234_5678).block().index(), 0x1234_5678 >> 6);
    }

    #[test]
    fn block_base_addr_round_trips() {
        let b = BlockAddr::new(0xdead);
        assert_eq!(b.base_addr().block(), b);
        assert_eq!(b.base_addr().raw(), 0xdead << 6);
    }

    #[test]
    fn block_offset_arithmetic() {
        let b = BlockAddr::new(100);
        assert_eq!(b.offset(5), BlockAddr::new(105));
        assert_eq!(b.offset(-5), BlockAddr::new(95));
        assert_eq!(BlockAddr::new(2).offset(-10), BlockAddr::new(0));
    }

    #[test]
    fn default_geometry_is_2kb() {
        let g = RegionGeometry::default();
        assert_eq!(g.blocks_per_region(), 32);
        assert_eq!(g.region_bytes(), 2048);
    }

    #[test]
    fn region_mapping_2kb() {
        let g = RegionGeometry::new(2048);
        let b = BlockAddr::new(32 * 7 + 13);
        assert_eq!(g.region_of(b), RegionId::new(7));
        assert_eq!(g.offset_of(b), 13);
        assert_eq!(g.block_at(RegionId::new(7), 13), b);
    }

    #[test]
    fn region_mapping_4kb() {
        let g = RegionGeometry::new(4096);
        assert_eq!(g.blocks_per_region(), 64);
        let b = BlockAddr::new(64 * 3 + 63);
        assert_eq!(g.region_of(b), RegionId::new(3));
        assert_eq!(g.offset_of(b), 63);
    }

    #[test]
    fn single_block_region_is_allowed() {
        let g = RegionGeometry::new(64);
        assert_eq!(g.blocks_per_region(), 1);
        assert_eq!(g.offset_of(BlockAddr::new(12345)), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_region_panics() {
        let _ = RegionGeometry::new(3000);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn sub_block_region_panics() {
        let _ = RegionGeometry::new(32);
    }

    #[test]
    fn geometry_round_trip_many_blocks() {
        let g = RegionGeometry::new(2048);
        for i in 0..10_000u64 {
            let b = BlockAddr::new(i * 97 + 31);
            let r = g.region_of(b);
            let o = g.offset_of(b);
            assert_eq!(g.block_at(r, o), b);
        }
    }
}
