//! The memory system: private L1 data caches, a shared banked LLC, DRAM,
//! and one prefetcher per core attached at the LLC.
//!
//! Request flow for a load issued by a core at cycle `now`:
//!
//! 1. L1D lookup (latency `l1.latency`). Hit → done. In-flight → merge.
//! 2. L1D miss: needs an L1 MSHR (else the core must retry — this is the
//!    back-pressure that limits memory-level parallelism).
//! 3. LLC lookup at `now + l1.latency`. Hit → data at `+ llc.latency`.
//! 4. LLC miss: needs an LLC MSHR; request goes to DRAM; the fill lands at
//!    the cycle the DRAM model returns and is installed by the event queue.
//!
//! Prefetchers observe every successful LLC demand access and may emit
//! candidate blocks, which are deduplicated against resident/in-flight
//! blocks, rate-limited by prefetch-eligible MSHRs, and sent to DRAM.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::addr::{Addr, BlockAddr, CoreId, Pc};
use crate::cache::{Cache, Lookup};
use crate::config::SystemConfig;
use crate::dram::Dram;
use crate::prefetch::{AccessInfo, Prefetcher};
use crate::stats::{CacheStats, QosReport};
use crate::telemetry::{
    DropReason, PrefetchLedger, PrefetchSource, TelemetryLevel, TelemetryReport,
};
use crate::throttle::{
    PercoreThrottle, ThrottleController, ThrottleLevel, ThrottleMode, ThrottleStats,
    DEFAULT_QOS_SLO,
};

/// Result of issuing a memory operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IssueResult {
    /// The operation will complete at the contained cycle.
    Done(u64),
    /// A structural hazard (MSHR full) prevented issue; retry next cycle.
    Stall,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum FillLevel {
    Llc,
    L1 { core: usize },
}

/// Which MSHR file a core's most recent [`IssueResult::Stall`] came from;
/// consulted by the quiescent fast-forward to replay retry effects at the
/// right cache level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum StallLevel {
    L1,
    Llc,
}

/// The full memory hierarchy shared by all cores.
pub struct MemorySystem {
    cfg: SystemConfig,
    l1s: Vec<Cache>,
    llc: Cache,
    dram: Dram,
    prefetchers: Vec<Box<dyn Prefetcher>>,
    fills: BinaryHeap<Reverse<(u64, u64, FillLevel, u64)>>, // (ready, seq, level, block)
    fill_seq: u64,
    pf_buf: Vec<BlockAddr>,
    ledger: PrefetchLedger,
    /// `None` when `BINGO_THROTTLE=off`: the hot path then pays a single
    /// branch per access, and behavior is bit-for-bit the unthrottled one.
    throttle: Option<ThrottleController>,
    /// Per-core throttle + starvation watchdog (`BINGO_THROTTLE=percore`).
    /// Mutually exclusive with the chip-wide controller above; `None` in
    /// every other mode, so the percore machinery cannot perturb them.
    percore: Option<PercoreThrottle>,
    /// Per-core level of the most recent demand stall. Fresh whenever a
    /// core is currently mem-stalled (it re-stalled this very cycle).
    stall_level: Vec<StallLevel>,
}

impl MemorySystem {
    /// Builds the hierarchy; `prefetchers` must contain exactly one
    /// prefetcher per core.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the prefetcher count does
    /// not match the core count.
    pub fn new(cfg: SystemConfig, prefetchers: Vec<Box<dyn Prefetcher>>) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid system configuration: {e}"));
        assert_eq!(
            prefetchers.len(),
            cfg.cores,
            "need exactly one prefetcher per core"
        );
        MemorySystem {
            l1s: (0..cfg.cores).map(|_| Cache::new(cfg.l1d)).collect(),
            llc: Cache::new(cfg.llc),
            dram: Dram::new(cfg.dram),
            prefetchers,
            fills: BinaryHeap::with_capacity(64),
            fill_seq: 0,
            pf_buf: Vec::with_capacity(64),
            ledger: PrefetchLedger::new(TelemetryLevel::Off),
            throttle: None,
            percore: None,
            stall_level: vec![StallLevel::L1; cfg.cores],
            cfg,
        }
    }

    /// Sets the prefetch-lifecycle telemetry level. Call before running;
    /// switching levels mid-run discards any records collected so far.
    pub fn set_telemetry(&mut self, level: TelemetryLevel) {
        self.ledger = PrefetchLedger::new(level);
    }

    /// Sets the prefetch-throttling mode. Call before running; switching
    /// modes mid-run restarts the controller from scratch. With
    /// [`ThrottleMode::Off`] no controller exists at all, so disabled
    /// throttling cannot perturb a run.
    pub fn set_throttle(&mut self, mode: ThrottleMode) {
        self.throttle = None;
        self.percore = None;
        if mode == ThrottleMode::Percore {
            let slo = self.cfg.qos_slo.unwrap_or(DEFAULT_QOS_SLO);
            self.percore = Some(
                PercoreThrottle::new(self.cfg.cores, slo)
                    .with_dram_service_cycles(self.cfg.dram.transfer_cycles),
            );
        } else if mode.enabled() {
            self.throttle = Some(
                ThrottleController::new(mode)
                    .with_dram_service_cycles(self.cfg.dram.transfer_cycles),
            );
        }
        if let Some(pt) = self.percore.as_ref() {
            for (i, pf) in self.prefetchers.iter_mut().enumerate() {
                pf.set_throttle_level(pt.level(i));
            }
        } else {
            let level = self
                .throttle
                .as_ref()
                .map_or(ThrottleLevel::Full, ThrottleController::level);
            for pf in &mut self.prefetchers {
                pf.set_throttle_level(level);
            }
        }
    }

    /// The throttle controller's activity counters; `None` when throttling
    /// is off.
    pub fn throttle_stats(&self) -> Option<&ThrottleStats> {
        self.throttle.as_ref().map(|t| &t.stats)
    }

    /// The current effective throttle level ([`ThrottleLevel::Full`] when
    /// throttling is off).
    pub fn throttle_level(&self) -> ThrottleLevel {
        self.throttle
            .as_ref()
            .map_or(ThrottleLevel::Full, ThrottleController::level)
    }

    /// The per-core throttle, when `BINGO_THROTTLE=percore` is active.
    pub fn percore_throttle(&self) -> Option<&PercoreThrottle> {
        self.percore.as_ref()
    }

    /// The per-core QoS attribution report; `None` unless the percore
    /// throttle mode is active.
    pub fn qos_report(&self) -> Option<QosReport> {
        self.percore.as_ref().map(PercoreThrottle::report)
    }

    /// The prefetch-lifecycle ledger (off by default).
    pub fn telemetry(&self) -> &PrefetchLedger {
        &self.ledger
    }

    /// The aggregate lifecycle report; `None` when telemetry is off.
    pub fn telemetry_report(&self) -> Option<TelemetryReport> {
        self.ledger.report()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Shared LLC statistics.
    pub fn llc_stats(&self) -> &CacheStats {
        &self.llc.stats
    }

    /// Aggregated L1D statistics, summed across cores.
    pub fn l1d_stats_sum(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for l1 in &self.l1s {
            let s = &l1.stats;
            total.demand_accesses += s.demand_accesses;
            total.demand_hits += s.demand_hits;
            total.demand_hits_pending += s.demand_hits_pending;
            total.demand_misses += s.demand_misses;
            total.demand_mshr_stalls += s.demand_mshr_stalls;
            total.evictions += s.evictions;
            total.writebacks += s.writebacks;
        }
        total
    }

    /// Total DRAM transfers serviced so far.
    pub fn dram_transfers(&self) -> u64 {
        self.dram.stats.transfers()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> &crate::dram::DramStats {
        &self.dram.stats
    }

    /// Current DRAM per-transfer channel occupancy (chaos observability).
    pub fn dram_transfer_cycles(&self) -> u64 {
        self.dram.transfer_cycles()
    }

    /// Chaos hook: overrides the DRAM per-transfer occupancy mid-run to
    /// model a transient bandwidth collapse. The throttle controllers keep
    /// judging congestion against the *configured* service time, so a
    /// collapse shows up to them as queueing — exactly how a real
    /// controller experiences it.
    pub fn set_dram_transfer_cycles(&mut self, cycles: u64) {
        self.dram.set_transfer_cycles(cycles);
    }

    /// Current prefetch-queue bound (chaos observability).
    pub fn prefetch_queue_depth(&self) -> Option<usize> {
        self.cfg.prefetch_queue_depth
    }

    /// Chaos hook: squeezes (or restores) the prefetch-queue bound mid-run.
    /// In-flight prefetches above a new lower bound are not cancelled —
    /// like a real queue resize, the bound gates *admission* only.
    pub fn set_prefetch_queue_depth(&mut self, depth: Option<usize>) {
        assert!(
            depth != Some(0),
            "prefetch queue depth of 0 disables prefetching entirely; \
             use a no-op prefetcher instead"
        );
        self.cfg.prefetch_queue_depth = depth;
    }

    /// The per-core prefetcher, for storage accounting and diagnostics.
    pub fn prefetcher(&self, core: CoreId) -> &dyn Prefetcher {
        self.prefetchers[core.0].as_ref()
    }

    /// Debug summaries of every core's prefetcher.
    pub fn prefetcher_debug(&self) -> Vec<String> {
        self.prefetchers.iter().map(|p| p.debug_stats()).collect()
    }

    /// Structured metrics of every core's prefetcher.
    pub fn prefetcher_metrics(&self) -> Vec<Vec<(&'static str, f64)>> {
        self.prefetchers.iter().map(|p| p.metrics()).collect()
    }

    /// Clears all statistics (cache, DRAM) while keeping contents and
    /// predictor state — the end-of-warmup reset.
    pub fn reset_stats(&mut self) {
        for l1 in &mut self.l1s {
            l1.reset_stats();
        }
        self.llc.reset_stats();
        self.dram.reset_stats();
        self.ledger.on_stats_reset();
        if let Some(ctrl) = self.throttle.as_mut() {
            ctrl.on_stats_reset();
        }
        // The percore throttle needs no reset hook: its signals are
        // monotone cumulative counters private to it, and each controller
        // judges deltas against its own snapshot, so the warmup stats reset
        // cannot desynchronize it.
    }

    /// Processes all fills that are due at or before `now`. Must be called
    /// once per cycle before cores issue new requests.
    ///
    /// On most cycles nothing is due; that check inlines into the caller's
    /// loop as a single heap peek, with the landing logic kept out of line.
    #[inline]
    pub fn tick(&mut self, now: u64) {
        if matches!(self.fills.peek(), Some(&Reverse((ready, _, _, _))) if ready <= now) {
            self.tick_due(now);
        }
    }

    #[inline(never)]
    fn tick_due(&mut self, now: u64) {
        while let Some(&Reverse((ready, _, _, _))) = self.fills.peek() {
            if ready > now {
                break;
            }
            let Reverse((_, _, level, block)) = self.fills.pop().expect("peeked entry exists");
            let block = BlockAddr::new(block);
            match level {
                FillLevel::Llc => {
                    if let Some(evicted) = self.llc.complete_fill(block, false) {
                        if evicted.dirty {
                            self.dram.write(evicted.block, now);
                        }
                        if evicted.unused_prefetch {
                            self.ledger.evicted_unused(evicted.block.index(), now);
                            if let Some(pt) = self.percore.as_mut() {
                                pt.note_pf_evicted_unused(evicted.block.index());
                            }
                        }
                        for pf in &mut self.prefetchers {
                            pf.on_eviction(evicted.block);
                        }
                    }
                    // Settle the ledger record, if this fill was a prefetch.
                    self.ledger.filled(block.index(), now);
                    // Notify fill observers (e.g. SPP's filter learns fills).
                    for pf in &mut self.prefetchers {
                        pf.on_fill(block, false);
                    }
                }
                FillLevel::L1 { core } => {
                    if let Some(evicted) = self.l1s[core].complete_fill(block, false) {
                        if evicted.dirty {
                            // Writeback to LLC: mark dirty if resident, else
                            // spill to DRAM bandwidth.
                            if !self.llc.mark_dirty(evicted.block) {
                                self.dram.write(evicted.block, now);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Ready cycle of the earliest outstanding fill, if any — the memory
    /// system's next externally visible event.
    pub(crate) fn next_fill_ready(&self) -> Option<u64> {
        self.fills.peek().map(|&Reverse((ready, _, _, _))| ready)
    }

    /// Level of `core`'s most recent demand stall (see [`StallLevel`]).
    pub(crate) fn stall_level(&self, core: usize) -> StallLevel {
        self.stall_level[core]
    }

    /// Replays `k` skipped cycles of `core` retrying its stalled access to
    /// `block` against a quiescent hierarchy, the first retry issuing at
    /// cycle `first`. An L1-stalled retry dies at the L1 MSHR check; an
    /// LLC-stalled retry misses the (available-MSHR) L1 and dies at the LLC
    /// MSHR check after the L1 lookup latency — exactly the effects of
    /// [`MemorySystem::load`]/[`MemorySystem::store`] up to their stall
    /// return.
    pub(crate) fn apply_stalled_retries(
        &mut self,
        core: usize,
        block: BlockAddr,
        first: u64,
        k: u64,
    ) {
        match self.stall_level[core] {
            StallLevel::L1 => self.l1s[core].apply_missed_retries(block, first, k, true),
            StallLevel::Llc => {
                self.l1s[core].apply_missed_retries(block, first, k, false);
                self.llc
                    .apply_missed_retries(block, first + self.cfg.l1d.latency, k, true);
            }
        }
    }

    fn schedule_fill(&mut self, level: FillLevel, block: BlockAddr, ready: u64) {
        self.fill_seq += 1;
        self.fills
            .push(Reverse((ready, self.fill_seq, level, block.index())));
    }

    /// Issues a load; returns its completion cycle or a stall.
    pub fn load(&mut self, core: CoreId, pc: Pc, addr: Addr, now: u64) -> IssueResult {
        self.access(core, pc, addr, now, false)
    }

    /// Issues a store (write-allocate, write-back); the returned cycle is
    /// when the store's miss handling completes (releases its LSQ slot).
    pub fn store(&mut self, core: CoreId, pc: Pc, addr: Addr, now: u64) -> IssueResult {
        self.access(core, pc, addr, now, true)
    }

    fn access(
        &mut self,
        core: CoreId,
        pc: Pc,
        addr: Addr,
        now: u64,
        is_write: bool,
    ) -> IssueResult {
        let block = addr.block();
        let l1 = &mut self.l1s[core.0];
        match l1.demand_access(block, now, is_write) {
            Lookup::Hit { ready_at } | Lookup::PendingHit { ready_at } => {
                self.tick_throttle(core.0);
                return IssueResult::Done(ready_at);
            }
            Lookup::Miss => {}
        }
        if !self.l1s[core.0].mshr_available_for_demand() {
            self.l1s[core.0].stats.demand_mshr_stalls += 1;
            self.stall_level[core.0] = StallLevel::L1;
            return IssueResult::Stall;
        }

        // L1 miss: consult the LLC after the L1 lookup latency.
        let t_llc = now + self.cfg.l1d.latency;
        // The LLC lookup below is the single point where a prefetch is
        // judged useful (`pf_useful`, resident hit) or late (`pf_late`,
        // in-flight merge); the ledger classifies by observing those
        // increments, so its counts agree with `CacheStats` by
        // construction.
        let pf_useful_before = self.llc.stats.pf_useful;
        let pf_late_before = self.llc.stats.pf_late;
        let llc_hit;
        let data_ready = match self.llc.demand_access(block, t_llc, is_write) {
            Lookup::Hit { ready_at } => {
                llc_hit = true;
                ready_at
            }
            Lookup::PendingHit { ready_at } => {
                llc_hit = false;
                ready_at
            }
            Lookup::Miss => {
                llc_hit = false;
                if !self.llc.mshr_available_for_demand() {
                    self.llc.stats.demand_mshr_stalls += 1;
                    self.stall_level[core.0] = StallLevel::Llc;
                    return IssueResult::Stall;
                }
                self.llc.stats.demand_misses += 1;
                let ready = self.dram.read(block, t_llc + self.cfg.llc.latency);
                if let Some(pt) = self.percore.as_mut() {
                    pt.note_demand_read(core.0, self.dram.last_read_wait());
                }
                self.llc.allocate_fill(block, ready, false);
                self.schedule_fill(FillLevel::Llc, block, ready);
                ready
            }
        };
        if self.llc.stats.pf_useful > pf_useful_before || self.llc.stats.pf_late > pf_late_before {
            // Credit the core that *issued* the prefetch (owner map), not
            // the core that happened to demand the block.
            if let Some(pt) = self.percore.as_mut() {
                pt.note_pf_used(block.index());
            }
        }
        if self.ledger.enabled() {
            if self.llc.stats.pf_useful > pf_useful_before {
                self.ledger.used_timely(block.index(), t_llc);
            } else if self.llc.stats.pf_late > pf_late_before {
                self.ledger.used_late(block.index(), t_llc);
            }
        }

        // Commit the L1 miss. A store miss installs its line dirty
        // (write-allocate, write-back).
        self.l1s[core.0].stats.demand_misses += 1;
        self.l1s[core.0].allocate_fill(block, data_ready, false);
        if is_write {
            self.l1s[core.0].mark_pending_dirty(block);
        }
        self.schedule_fill(FillLevel::L1 { core: core.0 }, block, data_ready);

        // Train + trigger the core's prefetcher on this LLC access.
        self.run_prefetcher(core, pc, addr, is_write, llc_hit, t_llc);

        self.tick_throttle(core.0);
        IssueResult::Done(data_ready + 1)
    }

    /// Advances the throttle epoch clock by one demand access of `core`.
    /// Called only from the two paths where an access *resolves* (L1 hit or
    /// committed miss), never on a `Stall` return: a stalled access is
    /// retried every cycle, and counting retries would tie the epoch length
    /// to contention — the very thing the controller modulates — instead of
    /// program progress. The chip-wide controller ignores the core; the
    /// percore throttle uses it for both the core's own epoch clock and the
    /// watchdog's progress accounting.
    fn tick_throttle(&mut self, core: usize) {
        if let Some(ctrl) = self.throttle.as_mut() {
            if let Some(level) = ctrl.on_access(&self.llc.stats, &self.dram.stats) {
                for pf in &mut self.prefetchers {
                    pf.set_throttle_level(level);
                }
            }
        } else if let Some(pt) = self.percore.as_mut() {
            if pt.on_access(core) {
                for (i, pf) in self.prefetchers.iter_mut().enumerate() {
                    pf.set_throttle_level(pt.level(i));
                }
            }
        }
    }

    fn run_prefetcher(
        &mut self,
        core: CoreId,
        pc: Pc,
        addr: Addr,
        is_write: bool,
        hit: bool,
        cycle: u64,
    ) {
        let block = addr.block();
        let info = AccessInfo {
            core,
            pc,
            addr,
            block,
            region: self.cfg.region.region_of(block),
            offset: self.cfg.region.offset_of(block),
            is_write,
            hit,
            cycle,
        };
        let mut buf = std::mem::take(&mut self.pf_buf);
        buf.clear();
        self.prefetchers[core.0].on_access(&info, &mut buf);
        crate::audit_assert!(
            buf.len() <= 64,
            "prefetch burst invariant: {} emitted {} candidates for one access (cap 64)",
            self.prefetchers[core.0].name(),
            buf.len()
        );
        // One attribution query per burst: every candidate of a burst comes
        // from the same prediction event.
        let source = if self.ledger.enabled() && !buf.is_empty() {
            self.prefetchers[core.0].last_burst_source()
        } else {
            PrefetchSource::Unattributed
        };
        for &candidate in &buf {
            self.issue_prefetch_attributed(core, candidate, cycle, source, pc.raw());
        }
        self.pf_buf = buf;
    }

    /// Issues one prefetch candidate into the LLC at cycle `now`, applying
    /// duplicate filtering and MSHR limits. Exposed for prefetcher unit
    /// tests and the harness's direct-drive mode; telemetry records the
    /// prefetch as unattributed and core 0 is charged for it.
    pub fn issue_prefetch(&mut self, block: BlockAddr, now: u64) {
        self.issue_prefetch_attributed(CoreId(0), block, now, PrefetchSource::Unattributed, 0);
    }

    fn issue_prefetch_attributed(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        now: u64,
        source: PrefetchSource,
        pc: u64,
    ) {
        self.llc.stats.pf_requested += 1;
        if self.llc.probe(block) {
            self.llc.stats.pf_dropped_duplicate += 1;
            self.ledger.dropped(
                core.0,
                block.index(),
                pc,
                source,
                now,
                DropReason::Duplicate,
            );
            return;
        }
        // The bounded prefetch queue sits in front of the MSHR file: a
        // candidate needs a queue slot before it may compete for an MSHR.
        // Demand misses never consult this bound, so prefetch pressure can
        // only ever shed prefetches, not delay demand issue.
        if let Some(depth) = self.cfg.prefetch_queue_depth {
            if self.llc.prefetches_in_flight() >= depth {
                self.llc.stats.pf_dropped_queue += 1;
                self.ledger.dropped(
                    core.0,
                    block.index(),
                    pc,
                    source,
                    now,
                    DropReason::QueueFull,
                );
                return;
            }
        }
        if !self
            .llc
            .mshr_available_for_prefetch(self.cfg.llc_mshrs_reserved_for_demand)
        {
            self.llc.stats.pf_dropped_mshr += 1;
            self.ledger
                .dropped(core.0, block.index(), pc, source, now, DropReason::MshrFull);
            return;
        }
        let ready = self
            .dram
            .read_tagged(block, now + self.cfg.llc.latency, true);
        if let Some(pt) = self.percore.as_mut() {
            pt.note_pf_issued(core.0, block.index(), self.dram.last_read_wait());
        }
        self.llc.allocate_fill(block, ready, true);
        self.schedule_fill(FillLevel::Llc, block, ready);
        self.llc.stats.pf_issued += 1;
        self.ledger.issued(core.0, block.index(), pc, source, now);
        crate::audit_assert!(
            self.llc.prefetch_pending(block),
            "prefetch issue invariant: {block:?} not pending as a prefetch after issue"
        );
        crate::audit_assert!(
            self.llc.mshr_occupancy() <= self.cfg.llc.mshrs,
            "MSHR occupancy invariant: LLC occupancy {} exceeds {} MSHRs after prefetch",
            self.llc.mshr_occupancy(),
            self.cfg.llc.mshrs
        );
    }

    /// Drains all outstanding fills (used at end of simulation so that
    /// in-flight prefetch attribution settles) and folds still-resident
    /// never-demanded prefetched lines into `pf_useless`, so
    /// overprediction does not depend on the LLC filling up within the
    /// measurement window.
    pub fn drain(&mut self) -> u64 {
        let mut last = 0;
        while let Some(&Reverse((ready, _, _, _))) = self.fills.peek() {
            last = ready;
            self.tick(ready);
        }
        self.llc.stats.pf_useless += self.llc.count_unused_prefetched();
        // The matching ledger settlement: filled-but-never-demanded records
        // become unused; finalize consumes them, so a second drain cannot
        // double-count.
        self.ledger.finalize();
        last
    }
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("cores", &self.cfg.cores)
            .field("llc_stats", &self.llc.stats)
            .field("outstanding_fills", &self.fills.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::{NextLinePrefetcher, NoPrefetcher};

    fn mem_no_pf() -> MemorySystem {
        let cfg = SystemConfig::tiny();
        MemorySystem::new(cfg, vec![Box::new(NoPrefetcher)])
    }

    fn run_to(mem: &mut MemorySystem, cycle: u64) {
        for t in 0..=cycle {
            mem.tick(t);
        }
    }

    const CORE: CoreId = CoreId(0);
    const PC: Pc = Pc::new(0x400100);

    #[test]
    fn cold_load_goes_to_dram() {
        let mut mem = mem_no_pf();
        let t = match mem.load(CORE, PC, Addr::new(0x10000), 0) {
            IssueResult::Done(t) => t,
            IssueResult::Stall => panic!("unexpected stall"),
        };
        // 4 (L1) + 15 (LLC) + 240 (DRAM row miss) + 1 ≈ 260
        assert!((250..=280).contains(&t), "cold load completion {t}");
        assert_eq!(mem.llc_stats().demand_misses, 1);
    }

    #[test]
    fn second_load_hits_l1_after_fill() {
        let mut mem = mem_no_pf();
        let addr = Addr::new(0x10000);
        let t = match mem.load(CORE, PC, addr, 0) {
            IssueResult::Done(t) => t,
            IssueResult::Stall => panic!(),
        };
        run_to(&mut mem, t);
        let t2 = match mem.load(CORE, PC, addr, t + 1) {
            IssueResult::Done(t2) => t2,
            IssueResult::Stall => panic!(),
        };
        assert_eq!(t2, t + 1 + 4, "L1 hit latency");
        assert_eq!(mem.llc_stats().demand_misses, 1);
    }

    #[test]
    fn llc_hit_after_l1_eviction_pressure() {
        let mut mem = mem_no_pf();
        // Fill a block, then thrash L1 set with conflicting blocks; the
        // original stays in the larger LLC.
        let victim = Addr::new(0);
        let t = match mem.load(CORE, PC, victim, 0) {
            IssueResult::Done(t) => t,
            IssueResult::Stall => panic!(),
        };
        run_to(&mut mem, t);
        let mut now = t + 1;
        // tiny L1: 8KB/4way/64B = 32 sets. Conflicts: stride 32 blocks.
        for i in 1..=8u64 {
            let a = Addr::new(i * 32 * 64);
            match mem.load(CORE, PC, a, now) {
                IssueResult::Done(done) => {
                    run_to(&mut mem, done);
                    now = done + 1;
                }
                IssueResult::Stall => {
                    now += 1;
                }
            }
        }
        let before = mem.llc_stats().demand_misses;
        let t2 = match mem.load(CORE, PC, victim, now) {
            IssueResult::Done(t2) => t2,
            IssueResult::Stall => panic!(),
        };
        assert_eq!(mem.llc_stats().demand_misses, before, "LLC hit expected");
        // L1 lookup (4) + LLC hit (15) + 1 cycle to return through the L1.
        assert_eq!(t2 - now, 4 + 15 + 1, "L1 latency + LLC latency");
    }

    #[test]
    fn mshr_exhaustion_stalls_demands() {
        let mut mem = mem_no_pf();
        // tiny L1 has 8 MSHRs: the 9th distinct outstanding load stalls.
        let mut stalled = false;
        for i in 0..9u64 {
            match mem.load(CORE, PC, Addr::new(i * 64 * 64), 0) {
                IssueResult::Done(_) => {}
                IssueResult::Stall => {
                    stalled = i == 8;
                    break;
                }
            }
        }
        assert!(stalled, "9th outstanding miss should stall on L1 MSHRs");
    }

    #[test]
    fn duplicate_loads_merge_in_mshr() {
        let mut mem = mem_no_pf();
        let addr = Addr::new(0x40000);
        let t1 = match mem.load(CORE, PC, addr, 0) {
            IssueResult::Done(t) => t,
            IssueResult::Stall => panic!(),
        };
        // Second load to the same block one cycle later merges in L1 MSHR.
        let t2 = match mem.load(CORE, PC, addr, 1) {
            IssueResult::Done(t) => t,
            IssueResult::Stall => panic!(),
        };
        assert!(t2 <= t1 + 1);
        assert_eq!(mem.llc_stats().demand_misses, 1);
        assert_eq!(mem.l1d_stats_sum().demand_misses, 1);
        assert_eq!(mem.l1d_stats_sum().demand_hits_pending, 1);
    }

    #[test]
    fn prefetch_turns_miss_into_hit() {
        let cfg = SystemConfig::tiny();
        let mut mem = MemorySystem::new(cfg, vec![Box::new(NextLinePrefetcher::new(1))]);
        // Load block 0 -> prefetches block 1.
        let t = match mem.load(CORE, PC, Addr::new(0), 0) {
            IssueResult::Done(t) => t,
            IssueResult::Stall => panic!(),
        };
        run_to(&mut mem, t + 300);
        assert_eq!(mem.llc_stats().pf_issued, 1);
        // Demand block 1: should hit in LLC (prefetched), miss in L1.
        let misses_before = mem.llc_stats().demand_misses;
        match mem.load(CORE, PC, Addr::new(64), t + 301) {
            IssueResult::Done(_) => {}
            IssueResult::Stall => panic!(),
        }
        assert_eq!(mem.llc_stats().demand_misses, misses_before);
        assert_eq!(mem.llc_stats().pf_useful, 1);
    }

    #[test]
    fn late_prefetch_counts_as_late() {
        let cfg = SystemConfig::tiny();
        let mut mem = MemorySystem::new(cfg, vec![Box::new(NextLinePrefetcher::new(1))]);
        let _ = mem.load(CORE, PC, Addr::new(0), 0);
        // Demand block 1 immediately: the prefetch is still in flight.
        match mem.load(CORE, PC, Addr::new(64), 2) {
            IssueResult::Done(_) => {}
            IssueResult::Stall => panic!(),
        }
        assert_eq!(mem.llc_stats().pf_late, 1);
    }

    #[test]
    fn duplicate_prefetches_are_filtered() {
        let mut mem = mem_no_pf();
        mem.issue_prefetch(BlockAddr::new(100), 0);
        mem.issue_prefetch(BlockAddr::new(100), 1);
        assert_eq!(mem.llc_stats().pf_issued, 1);
        assert_eq!(mem.llc_stats().pf_dropped_duplicate, 1);
    }

    #[test]
    fn prefetches_respect_mshr_reservation() {
        let mut mem = mem_no_pf();
        // tiny LLC: 32 MSHRs, 8 reserved for demand -> 24 prefetch slots.
        for i in 0..30u64 {
            mem.issue_prefetch(BlockAddr::new(1000 + i), 0);
        }
        assert_eq!(mem.llc_stats().pf_issued, 24);
        assert_eq!(mem.llc_stats().pf_dropped_mshr, 6);
    }

    #[test]
    fn bounded_queue_drops_excess_prefetches_with_reason() {
        let mut cfg = SystemConfig::tiny();
        cfg.prefetch_queue_depth = Some(4);
        let mut mem = MemorySystem::new(cfg, vec![Box::new(NoPrefetcher)]);
        mem.set_telemetry(TelemetryLevel::Counts);
        for i in 0..10u64 {
            mem.issue_prefetch(BlockAddr::new(1000 + i), 0);
        }
        assert_eq!(mem.llc_stats().pf_issued, 4);
        assert_eq!(mem.llc_stats().pf_dropped_queue, 6);
        assert_eq!(mem.llc_stats().pf_dropped_mshr, 0);
        // Once fills land the queue frees up again.
        mem.drain();
        mem.issue_prefetch(BlockAddr::new(2000), 0);
        assert_eq!(mem.llc_stats().pf_issued, 5);
        // The ledger classifies the same drops by the same reason.
        let t = mem.telemetry_report().expect("telemetry on");
        assert_eq!(t.dropped_queue, mem.llc_stats().pf_dropped_queue);
        assert_eq!(t.issued, mem.llc_stats().pf_issued);
    }

    #[test]
    fn unbounded_queue_is_bit_for_bit_identical_to_default() {
        // The pressure knob disabled must not perturb anything: same tiny
        // config with and without an explicit `None` produces equal stats.
        let run = |cfg: SystemConfig| {
            let mut mem = MemorySystem::new(cfg, vec![Box::new(NextLinePrefetcher::new(4))]);
            let mut now = 0;
            for i in 0..40u64 {
                match mem.load(CORE, PC, Addr::new(i * 64), now) {
                    IssueResult::Done(t) => now = t,
                    IssueResult::Stall => now += 1,
                }
                mem.tick(now);
            }
            mem.drain();
            mem.llc_stats().clone()
        };
        let default_cfg = SystemConfig::tiny();
        let mut explicit = SystemConfig::tiny();
        explicit.prefetch_queue_depth = None;
        assert_eq!(run(default_cfg), run(explicit));
        assert_eq!(default_cfg.prefetch_queue_depth, None);
    }

    #[test]
    fn off_throttle_mode_is_bit_for_bit_invisible() {
        let run = |set_off: bool| {
            let cfg = SystemConfig::tiny();
            let mut mem = MemorySystem::new(cfg, vec![Box::new(NextLinePrefetcher::new(4))]);
            if set_off {
                mem.set_throttle(crate::throttle::ThrottleMode::Off);
            }
            let mut now = 0;
            for i in 0..2000u64 {
                match mem.load(CORE, PC, Addr::new(i * 64), now) {
                    IssueResult::Done(t) => now = t,
                    IssueResult::Stall => now += 1,
                }
                mem.tick(now);
            }
            mem.drain();
            mem.llc_stats().clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn feedback_throttle_strangles_useless_prefetching() {
        use crate::throttle::{ThrottleLevel, ThrottleMode, EPOCH_ACCESSES};
        // Stride of 5 blocks: every next-line prefetch (degree 4) lands on
        // a block the demand stream never touches, so settled accuracy is
        // zero once LLC evictions begin.
        let run = |mode: ThrottleMode| {
            let cfg = SystemConfig::tiny();
            let mut mem = MemorySystem::new(cfg, vec![Box::new(NextLinePrefetcher::new(4))]);
            mem.set_throttle(mode);
            let mut now = 0;
            for i in 0..8 * EPOCH_ACCESSES {
                match mem.load(CORE, PC, Addr::new(i * 5 * 64), now) {
                    IssueResult::Done(t) => now = t,
                    IssueResult::Stall => now += 1,
                }
                mem.tick(now);
            }
            mem
        };
        let throttled = run(ThrottleMode::Feedback);
        let unthrottled = run(ThrottleMode::Off);
        assert_eq!(unthrottled.throttle_stats(), None);
        assert_eq!(unthrottled.throttle_level(), ThrottleLevel::Full);
        let stats = throttled.throttle_stats().expect("controller attached");
        assert!(stats.degrades >= 1, "zero accuracy must degrade: {stats:?}");
        assert!(
            throttled.throttle_level() > ThrottleLevel::Full,
            "still at full after {stats:?}"
        );
        assert!(
            throttled.llc_stats().pf_issued < unthrottled.llc_stats().pf_issued / 2,
            "throttling must shed most useless prefetches ({} vs {})",
            throttled.llc_stats().pf_issued,
            unthrottled.llc_stats().pf_issued
        );
    }

    #[test]
    fn demand_misses_are_never_gated_by_the_prefetch_queue() {
        let mut cfg = SystemConfig::tiny();
        cfg.prefetch_queue_depth = Some(1);
        let mut mem = MemorySystem::new(cfg, vec![Box::new(NoPrefetcher)]);
        // Saturate the one-slot queue.
        mem.issue_prefetch(BlockAddr::new(5000), 0);
        mem.issue_prefetch(BlockAddr::new(5001), 0);
        assert_eq!(mem.llc_stats().pf_dropped_queue, 1);
        // A demand miss still issues normally.
        match mem.load(CORE, PC, Addr::new(0x9000), 1) {
            IssueResult::Done(_) => {}
            IssueResult::Stall => panic!("demand gated by prefetch queue"),
        }
        assert_eq!(mem.llc_stats().demand_misses, 1);
    }

    #[test]
    fn drain_settles_all_fills() {
        let mut mem = mem_no_pf();
        let _ = mem.load(CORE, PC, Addr::new(0), 0);
        let _ = mem.load(CORE, PC, Addr::new(1 << 20), 0);
        let last = mem.drain();
        assert!(last > 0);
        // After drain, both blocks resident: loads hit.
        match mem.load(CORE, PC, Addr::new(0), last + 1) {
            IssueResult::Done(t) => assert_eq!(t, last + 1 + 4),
            IssueResult::Stall => panic!(),
        }
    }

    #[test]
    fn store_miss_allocates_and_dirties() {
        let mut mem = mem_no_pf();
        let addr = Addr::new(0x2000);
        let t = match mem.store(CORE, PC, addr, 0) {
            IssueResult::Done(t) => t,
            IssueResult::Stall => panic!(),
        };
        run_to(&mut mem, t);
        assert_eq!(mem.llc_stats().demand_misses, 1);
        // A later load hits.
        match mem.load(CORE, PC, addr, t + 1) {
            IssueResult::Done(t2) => assert_eq!(t2, t + 1 + 4),
            IssueResult::Stall => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "one prefetcher per core")]
    fn prefetcher_count_must_match_cores() {
        let cfg = SystemConfig::paper(); // 4 cores
        let _ = MemorySystem::new(cfg, vec![Box::new(NoPrefetcher)]);
    }
}
