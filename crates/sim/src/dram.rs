//! DRAM timing model: channels, banks, row buffers, and bandwidth as
//! channel occupancy.
//!
//! Each channel services one 64-byte transfer at a time; a request arriving
//! while the channel is busy queues behind it (`free_at` bookkeeping), which
//! is how bandwidth saturation and the "bandwidth wall" of the iso-degree
//! study (Fig. 10) emerge. Each bank remembers its open row: a request to
//! the open row pays the row-hit latency, anything else pays the full
//! precharge+activate+CAS latency. Consecutive blocks map to the same row,
//! so spatial prefetch bursts enjoy row-buffer hits — the effect BuMP-style
//! work highlights and the paper leans on in Section II.

use crate::addr::BlockAddr;
use crate::config::DramConfig;

#[derive(Debug)]
struct Bank {
    open_row: Option<u64>,
}

#[derive(Debug)]
struct Channel {
    free_at: u64,
    banks: Vec<Bank>,
}

/// Statistics for the DRAM subsystem.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read (fill) transfers serviced.
    pub reads: u64,
    /// Reads issued on behalf of prefetches (a subset of
    /// [`reads`](DramStats::reads)) — the prefetcher's bandwidth share,
    /// which feeds the feedback throttle.
    pub prefetch_reads: u64,
    /// Writeback transfers serviced.
    pub writes: u64,
    /// Reads that hit an open row.
    pub row_hits: u64,
    /// Reads that needed an activate.
    pub row_misses: u64,
    /// Total cycles read requests spent queued behind busy channels.
    pub queue_wait_cycles: u64,
    /// Cycles *demand* reads spent queued behind busy channels (a subset of
    /// [`queue_wait_cycles`](DramStats::queue_wait_cycles)) — the direct
    /// measure of how much prefetch traffic delays demand fills.
    pub demand_wait_cycles: u64,
}

impl DramStats {
    /// Row-buffer hit ratio over reads.
    pub fn row_hit_ratio(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Total transfers (reads + writes).
    pub fn transfers(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The DRAM subsystem.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    row_shift: u32,
    /// `(channel mask, channel shift, bank mask)` when both the channel
    /// and bank counts are powers of two, reducing the per-read address
    /// map to shifts and masks instead of two integer divisions.
    pow2_map: Option<(u64, u32, u64)>,
    /// Queue wait (cycles) of the most recent read — the per-core throttle
    /// reads this right after a fill to attribute queueing to the issuer.
    last_read_wait: u64,
    /// Statistics; reset with [`Dram::reset_stats`].
    pub stats: DramStats,
}

impl Dram {
    /// Creates the subsystem from its configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                free_at: 0,
                banks: (0..cfg.banks_per_channel)
                    .map(|_| Bank { open_row: None })
                    .collect(),
            })
            .collect();
        // Blocks within one row are contiguous: row id = block >> log2(blocks/row).
        let row_blocks = cfg.row_bytes / crate::addr::BLOCK_BYTES;
        let pow2_map = (cfg.channels.is_power_of_two() && cfg.banks_per_channel.is_power_of_two())
            .then(|| {
                (
                    cfg.channels as u64 - 1,
                    cfg.channels.trailing_zeros(),
                    cfg.banks_per_channel as u64 - 1,
                )
            });
        Dram {
            cfg,
            channels,
            row_shift: row_blocks.trailing_zeros(),
            pow2_map,
            last_read_wait: 0,
            stats: DramStats::default(),
        }
    }

    /// The configuration this subsystem was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Queue wait (cycles) incurred by the most recent read. Zero until the
    /// first read.
    pub fn last_read_wait(&self) -> u64 {
        self.last_read_wait
    }

    /// Current per-transfer channel occupancy.
    pub fn transfer_cycles(&self) -> u64 {
        self.cfg.transfer_cycles
    }

    /// Overrides the per-transfer channel occupancy mid-run. Chaos hook:
    /// a transient bandwidth collapse multiplies this up for a window and
    /// restores it afterwards. Open rows and channel `free_at` bookkeeping
    /// are untouched, so the change takes effect on the next transfer.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero (infinite bandwidth is not modeled).
    pub fn set_transfer_cycles(&mut self, cycles: u64) {
        assert!(cycles > 0, "transfer_cycles must be nonzero");
        self.cfg.transfer_cycles = cycles;
    }

    fn map(&self, block: BlockAddr) -> (usize, usize, u64) {
        let row = block.index() >> self.row_shift;
        match self.pow2_map {
            Some((ch_mask, ch_shift, bank_mask)) => {
                let channel = (row & ch_mask) as usize;
                let bank = ((row >> ch_shift) & bank_mask) as usize;
                (channel, bank, row)
            }
            None => {
                let channel = (row % self.cfg.channels as u64) as usize;
                let bank =
                    ((row / self.cfg.channels as u64) % self.cfg.banks_per_channel as u64) as usize;
                (channel, bank, row)
            }
        }
    }

    /// Issues a demand read for `block` at cycle `now`; returns the cycle
    /// the data arrives at the requesting cache.
    pub fn read(&mut self, block: BlockAddr, now: u64) -> u64 {
        self.read_tagged(block, now, false)
    }

    /// Issues a read tagged as demand or prefetch. Timing is identical for
    /// both — the tag only routes the bandwidth/wait accounting, so the
    /// feedback throttle can observe the prefetcher's channel share and the
    /// queueing it inflicts on demand fills.
    pub fn read_tagged(&mut self, block: BlockAddr, now: u64, prefetch: bool) -> u64 {
        let (ch_idx, bank_idx, row) = self.map(block);
        let ch = &mut self.channels[ch_idx];
        let start = now.max(ch.free_at);
        self.stats.queue_wait_cycles += start - now;
        self.last_read_wait = start - now;
        if prefetch {
            self.stats.prefetch_reads += 1;
        } else {
            self.stats.demand_wait_cycles += start - now;
        }
        let bank = &mut ch.banks[bank_idx];
        let row_hit = bank.open_row == Some(row);
        bank.open_row = Some(row);
        let access_latency = if row_hit {
            self.stats.row_hits += 1;
            self.cfg.row_hit_latency
        } else {
            self.stats.row_misses += 1;
            self.cfg.row_miss_latency
        };
        ch.free_at = start + self.cfg.transfer_cycles;
        self.stats.reads += 1;
        start + access_latency + self.cfg.transfer_cycles
    }

    /// Issues a writeback for `block` at cycle `now`. Writebacks consume
    /// channel bandwidth but nothing waits on them.
    pub fn write(&mut self, block: BlockAddr, now: u64) {
        let (ch_idx, bank_idx, row) = self.map(block);
        let ch = &mut self.channels[ch_idx];
        let start = now.max(ch.free_at);
        ch.free_at = start + self.cfg.transfer_cycles;
        ch.banks[bank_idx].open_row = Some(row);
        self.stats.writes += 1;
    }

    /// Clears statistics, keeping row-buffer and queue state.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 4096,
            row_hit_latency: 160,
            row_miss_latency: 226,
            transfer_cycles: 14,
        }
    }

    #[test]
    fn zero_load_read_pays_row_miss() {
        let mut d = Dram::new(cfg());
        let t = d.read(BlockAddr::new(0), 1000);
        assert_eq!(t, 1000 + 226 + 14);
        assert_eq!(d.stats.row_misses, 1);
    }

    #[test]
    fn same_row_second_read_is_a_row_hit() {
        let mut d = Dram::new(cfg());
        let _ = d.read(BlockAddr::new(0), 0);
        // Block 1 is in the same 4 KB row (64 blocks/row).
        let t = d.read(BlockAddr::new(1), 1000);
        assert_eq!(t, 1000 + 160 + 14);
        assert_eq!(d.stats.row_hits, 1);
    }

    #[test]
    fn different_row_same_bank_closes_row() {
        let mut d = Dram::new(cfg());
        let _ = d.read(BlockAddr::new(0), 0);
        // Row 16 maps to channel 0, bank 8/... compute: row 16 -> ch 0, bank 0.
        let far = BlockAddr::new(16 * 64);
        let t = d.read(far, 1000);
        assert_eq!(t, 1000 + 226 + 14);
        // Original row now closed for bank 0.
        let t2 = d.read(BlockAddr::new(2), 2000);
        assert_eq!(t2, 2000 + 226 + 14);
    }

    #[test]
    fn channel_occupancy_queues_requests() {
        let mut d = Dram::new(cfg());
        let t1 = d.read(BlockAddr::new(0), 0);
        // Same channel (same row => same channel), issued same cycle: waits
        // for the 14-cycle transfer slot.
        let t2 = d.read(BlockAddr::new(1), 0);
        assert_eq!(t1, 240);
        assert_eq!(t2, 14 + 160 + 14);
        assert_eq!(d.stats.queue_wait_cycles, 14);
    }

    #[test]
    fn channels_are_independent() {
        let mut d = Dram::new(cfg());
        // Rows 0 and 1 map to different channels.
        let t1 = d.read(BlockAddr::new(0), 0);
        let t2 = d.read(BlockAddr::new(64), 0); // row 1 -> channel 1
        assert_eq!(t1, 240);
        assert_eq!(t2, 240, "no queueing across channels");
        assert_eq!(d.stats.queue_wait_cycles, 0);
    }

    #[test]
    fn writes_consume_bandwidth() {
        let mut d = Dram::new(cfg());
        d.write(BlockAddr::new(0), 0);
        let t = d.read(BlockAddr::new(1), 0);
        assert_eq!(t, 14 + 160 + 14, "read queued behind the writeback");
        assert_eq!(d.stats.writes, 1);
    }

    #[test]
    fn sustained_bandwidth_matches_transfer_cycles() {
        let mut d = Dram::new(cfg());
        // Saturate channel 0 with 100 same-row reads issued at cycle 0.
        let mut last = 0;
        for i in 0..100 {
            last = d.read(BlockAddr::new(i % 64), 0);
        }
        // 100 transfers at 14 cycles each, minus pipelined latency overlap:
        // completion of the last ≈ 99*14 + latency.
        assert!(last >= 99 * 14, "last completion {last}");
        assert!(last <= 99 * 14 + 226 + 14);
    }

    #[test]
    fn tagged_reads_split_accounting_but_not_timing() {
        let mut a = Dram::new(cfg());
        let mut b = Dram::new(cfg());
        // Same sequence, one tagged prefetch, one all-demand: identical
        // completion cycles.
        let t1 = a.read_tagged(BlockAddr::new(0), 0, true);
        let t2 = a.read_tagged(BlockAddr::new(1), 0, false);
        let u1 = b.read(BlockAddr::new(0), 0);
        let u2 = b.read(BlockAddr::new(1), 0);
        assert_eq!(t1, u1);
        assert_eq!(t2, u2);
        assert_eq!(a.stats.prefetch_reads, 1);
        assert_eq!(a.stats.reads, 2);
        // The demand read queued behind the prefetch transfer: its wait is
        // visible in the demand split.
        assert_eq!(a.stats.demand_wait_cycles, 14);
        assert_eq!(a.stats.queue_wait_cycles, 14);
        assert_eq!(b.stats.prefetch_reads, 0);
        assert_eq!(b.stats.demand_wait_cycles, 14);
    }

    #[test]
    fn row_hit_ratio_diagnostic() {
        let mut d = Dram::new(cfg());
        for i in 0..10 {
            let _ = d.read(BlockAddr::new(i), 0);
        }
        assert_eq!(d.stats.row_misses, 1);
        assert_eq!(d.stats.row_hits, 9);
        assert!((d.stats.row_hit_ratio() - 0.9).abs() < 1e-12);
    }
}
