//! Deterministic, seeded fault injection for robustness testing.
//!
//! The paper's central robustness claim is that Bingo degrades gracefully:
//! when metadata is missing or wrong, the prefetcher loses coverage but the
//! simulation stays correct. This module provides the corruption source for
//! testing that claim end to end:
//!
//! * [`FaultPlan`] — the experiment knob set: per-event corruption rates
//!   for stored footprints, history-table entries, and issued prefetches.
//! * [`FaultInjector`] — a seeded generator rolling those rates; every
//!   decision is a pure function of the seed and call sequence, so a
//!   corrupted run is exactly reproducible from `(plan, access stream)`.
//! * [`FaultStats`] — counts of what was actually injected, for reports.
//!
//! The injector deliberately lives in `bingo-sim` (below `bingo`) so both
//! the prefetcher crates and the harness can share one corruption model
//! without a dependency cycle.

/// Corruption rates for one faulty run. All rates are probabilities in
/// `[0, 1]` applied independently per opportunity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's decision stream.
    pub seed: u64,
    /// Probability that a footprint being trained into the history table
    /// has one random bit flipped.
    pub footprint_bit_flip_rate: f64,
    /// Probability per access that a random history-table entry is evicted
    /// (models metadata loss / corruption-forced invalidation).
    pub history_drop_rate: f64,
    /// Probability that an individual prefetch candidate is silently
    /// dropped before issue.
    pub prefetch_drop_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (rates all zero).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            footprint_bit_flip_rate: 0.0,
            history_drop_rate: 0.0,
            prefetch_drop_rate: 0.0,
        }
    }

    /// A plan applying the same `rate` to every fault class.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let plan = FaultPlan {
            seed,
            footprint_bit_flip_rate: rate,
            history_drop_rate: rate,
            prefetch_drop_rate: rate,
        };
        plan.validate();
        plan
    }

    /// Checks every rate is a probability.
    ///
    /// # Panics
    ///
    /// Panics naming the offending field if any rate is outside `[0, 1]`
    /// or NaN.
    pub fn validate(&self) {
        for (name, rate) in [
            ("footprint_bit_flip_rate", self.footprint_bit_flip_rate),
            ("history_drop_rate", self.history_drop_rate),
            ("prefetch_drop_rate", self.prefetch_drop_rate),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "fault plan {name} = {rate} is not a probability"
            );
        }
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.footprint_bit_flip_rate > 0.0
            || self.history_drop_rate > 0.0
            || self.prefetch_drop_rate > 0.0
    }
}

/// Counts of injected faults, exposed through prefetcher metrics so a
/// corrupted run's report shows what it survived.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Footprint bits flipped during training.
    pub bits_flipped: u64,
    /// History-table entries forcibly evicted.
    pub entries_dropped: u64,
    /// Prefetch candidates silently discarded.
    pub prefetches_dropped: u64,
}

/// Seeded fault-decision generator (xorshift64*).
///
/// Not a statistical-quality RNG — it only has to make reproducible,
/// roughly-uniform coin flips — and kept dependency-free so `bingo-sim`
/// stays leaf-like.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    /// Running injection counts.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    ///
    /// # Panics
    ///
    /// Panics if any rate in the plan is not a probability.
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        // SplitMix64 scramble so nearby seeds give unrelated streams; the
        // xorshift state must be nonzero.
        let mut z = plan.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultInjector {
            plan,
            state: z.max(1),
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns `true` with probability `rate`.
    fn chance(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < rate
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pick(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot pick from an empty range");
        // Widening multiply; modulo bias is irrelevant for fault choice.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Rolls the footprint-corruption rate; counts a flip when it fires.
    pub fn should_flip_footprint_bit(&mut self) -> bool {
        let fire = self.chance(self.plan.footprint_bit_flip_rate);
        if fire {
            self.stats.bits_flipped += 1;
        }
        fire
    }

    /// Rolls the history-drop rate; counts an eviction when it fires.
    pub fn should_drop_history_entry(&mut self) -> bool {
        let fire = self.chance(self.plan.history_drop_rate);
        if fire {
            self.stats.entries_dropped += 1;
        }
        fire
    }

    /// Rolls the prefetch-drop rate; counts a drop when it fires.
    pub fn should_drop_prefetch(&mut self) -> bool {
        let fire = self.chance(self.plan.prefetch_drop_rate);
        if fire {
            self.stats.prefetches_dropped += 1;
        }
        fire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::uniform(7, 0.3);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for _ in 0..1000 {
            assert_eq!(a.should_flip_footprint_bit(), b.should_flip_footprint_bit());
            assert_eq!(a.should_drop_prefetch(), b.should_drop_prefetch());
            assert_eq!(a.pick(32), b.pick(32));
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn zero_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none(1));
        for _ in 0..1000 {
            assert!(!inj.should_flip_footprint_bit());
            assert!(!inj.should_drop_history_entry());
            assert!(!inj.should_drop_prefetch());
        }
        assert_eq!(inj.stats, FaultStats::default());
        assert!(!inj.plan().is_active());
    }

    #[test]
    fn rates_approximate_their_probability() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(42, 0.1));
        let fired = (0..20_000).filter(|_| inj.should_drop_prefetch()).count();
        assert!(
            (1600..2400).contains(&fired),
            "rate 0.1 over 20k rolls should fire near 2000, got {fired}"
        );
        assert_eq!(inj.stats.prefetches_dropped, fired as u64);
    }

    #[test]
    fn pick_is_in_range() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(3, 1.0));
        for n in 1..64 {
            assert!(inj.pick(n) < n);
        }
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn invalid_rate_is_rejected() {
        let _ = FaultInjector::new(FaultPlan {
            seed: 0,
            footprint_bit_flip_rate: 1.5,
            history_drop_rate: 0.0,
            prefetch_drop_rate: 0.0,
        });
    }
}
