//! # bingo-sim — cycle-level cache/memory simulator substrate
//!
//! A from-scratch, ChampSim-style simulation substrate built for the
//! reproduction of *Bingo Spatial Data Prefetcher* (HPCA 2019). It models
//! the system of the paper's Table I:
//!
//! * 4 out-of-order cores (4-wide, 256-entry ROB, 64-entry LSQ),
//! * split private 64 KB L1 caches (data side modeled),
//! * an 8 MB, 16-way, 4-bank shared last-level cache with 15-cycle latency,
//! * two DRAM channels: 60 ns zero-load latency, 37.5 GB/s peak bandwidth,
//!   with per-bank row buffers,
//! * one data prefetcher per core, trained on and prefetching into the LLC.
//!
//! The core side is cycle-stepped; the memory side computes fill latencies
//! analytically while tracking resource occupancy (MSHRs, cache banks, DRAM
//! channels/rows), and installs fills through an event queue so cache
//! contents — and therefore prefetch usefulness attribution — evolve exactly
//! as they would in a fully event-driven model.
//!
//! ## Quickstart
//!
//! ```
//! use bingo_sim::{
//!     Addr, Instr, NextLinePrefetcher, NoPrefetcher, Pc, System, SystemConfig,
//! };
//!
//! // A trivially streaming instruction source: every 4th instruction loads
//! // the next sequential cache block.
//! fn source() -> Box<dyn bingo_sim::InstrSource> {
//!     let mut n = 0u64;
//!     Box::new(move || {
//!         n += 1;
//!         if n % 4 == 0 {
//!             Instr::Load { pc: Pc::new(0x400), addr: Addr::new((n / 4) * 64), dep: None }
//!         } else {
//!             Instr::Op
//!         }
//!     })
//! }
//!
//! let cfg = SystemConfig::tiny();
//! let baseline = System::new(cfg, vec![source()], vec![Box::new(NoPrefetcher)], 10_000).run();
//! let prefetched =
//!     System::new(cfg, vec![source()], vec![Box::new(NextLinePrefetcher::new(2))], 10_000).run();
//! assert!(prefetched.llc.demand_misses < baseline.llc.demand_misses);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod cache;
pub mod chaos;
pub mod config;
pub mod core_model;
pub mod dram;
pub mod fault;
pub mod memory;
pub mod openmap;
pub mod prefetch;
pub mod replay;
pub mod stats;
pub mod system;
pub mod telemetry;
pub mod throttle;
pub mod trace;

pub use addr::{Addr, BlockAddr, CoreId, Pc, RegionGeometry, RegionId, BLOCK_BYTES, BLOCK_SHIFT};
pub use cache::{Cache, Evicted, Lookup, ReplacementPolicy};
pub use chaos::{AppliedPerturbation, ChaosInjector, ChaosKind, ChaosPlan, PhaseFlipSource};
pub use config::{CacheConfig, CoreConfig, DramConfig, SystemConfig};
pub use core_model::{Instr, InstrSource, OooCore};
pub use dram::{Dram, DramStats};
pub use fault::{FaultInjector, FaultPlan, FaultStats};
pub use memory::{IssueResult, MemorySystem};
pub use openmap::OpenMap;
pub use prefetch::{AccessInfo, FaultyPrefetcher, NextLinePrefetcher, NoPrefetcher, Prefetcher};
pub use replay::{PrefetchEvent, PrefetchTrace, ReplayParseError, ReplayStep};
pub use stats::{
    CacheStats, CoreQos, CoreStats, CoverageReport, IngestReport, QosReport, SimResult,
};
pub use system::{SimAbort, System};
pub use telemetry::{
    DropReason, LifecycleEvent, LifecycleEventKind, PrefetchLedger, PrefetchSource, SourceCounters,
    TelemetryLevel, TelemetryReport,
};
pub use throttle::{
    CoreSignals, PercoreThrottle, ThrottleController, ThrottleLevel, ThrottleMode, ThrottleStats,
    WatchdogStats, DEFAULT_QOS_SLO,
};
pub use trace::{record, Trace, TraceError, TraceSource};

/// Asserts an internal invariant, compiled in only under the `audit`
/// feature.
///
/// Production runs keep hot paths free of redundant checks; audit runs
/// (`cargo test --features audit`) promote the documented invariants —
/// MSHR occupancy bounds, prefetch burst caps, footprint popcounts — to
/// hard assertions. The `cfg` is evaluated in the crate where the macro
/// *expands*, so every workspace crate declares its own `audit` feature
/// forwarding to its dependencies'.
#[macro_export]
macro_rules! audit_assert {
    ($($arg:tt)*) => {
        #[cfg(feature = "audit")]
        {
            assert!($($arg)*);
        }
    };
}
