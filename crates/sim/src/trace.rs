//! Instruction-trace recording and replay.
//!
//! ChampSim-style prefetcher research is normally *trace-driven*: a
//! workload's instruction stream is captured once and replayed against
//! many prefetcher configurations. This module provides that workflow for
//! the synthetic generators (or any [`InstrSource`]):
//!
//! * [`record`] drains a source into an in-memory [`Trace`];
//! * [`Trace::write_to`] / [`Trace::read_from`] serialize it in a compact
//!   little-endian binary format (magic `BGTR`, version 1);
//! * [`TraceSource`] replays a trace as an [`InstrSource`], looping if the
//!   simulation needs more instructions than were captured.
//!
//! Replaying a trace guarantees *identical* access streams across
//! prefetcher configurations — useful when a generator's interleaving
//! would otherwise be perturbed (it is not here, since generators are
//! seeded and independent of timing, but traces also enable importing
//! streams from external tools).
//!
//! # Format
//!
//! ```text
//! magic   [u8; 4] = "BGTR"
//! version u32     = 1
//! count   u64
//! records count x {
//!   kind u8       (0 = op, 1 = load, 2 = store)
//!   for loads/stores:
//!     pc   u64
//!     addr u64
//!     dep  u8     (loads only; 0xFF = none, else chain id)
//! }
//! ```

use std::io::{self, Read, Write};

use crate::addr::{Addr, Pc};
use crate::core_model::{Instr, InstrSource};

const MAGIC: [u8; 4] = *b"BGTR";
const VERSION: u32 = 1;

/// A captured instruction stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    instrs: Vec<Instr>,
}

/// Errors from trace (de)serialization.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a trace file (bad magic).
    BadMagic,
    /// The trace was written by an incompatible version.
    BadVersion(u32),
    /// A record had an unknown instruction kind tag.
    BadRecord(u8),
    /// The input ended inside the header or a record.
    Truncated {
        /// Which structure the input ended inside.
        context: &'static str,
    },
    /// The header's record count cannot fit in the remaining input (every
    /// record is at least one byte), so it is corrupt; rejecting it here
    /// means the count is never trusted for an allocation.
    OversizedCount {
        /// The claimed record count.
        count: u64,
        /// Bytes actually remaining after the header.
        available: u64,
    },
    /// Bytes remained after the last declared record — the count field or
    /// the payload is corrupt.
    TrailingData {
        /// Number of unconsumed bytes.
        bytes: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::BadRecord(k) => write!(f, "unknown instruction kind {k}"),
            TraceError::Truncated { context } => {
                write!(f, "trace truncated inside {context}")
            }
            TraceError::OversizedCount { count, available } => write!(
                f,
                "trace claims {count} records but only {available} bytes follow the header"
            ),
            TraceError::TrailingData { bytes } => {
                write!(f, "{bytes} bytes of trailing data after the last record")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace from instructions.
    pub fn from_instrs(instrs: Vec<Instr>) -> Self {
        Trace { instrs }
    }

    /// Number of captured instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The captured instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of memory accesses (loads + stores) in the trace.
    pub fn memory_accesses(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| !matches!(i, Instr::Op))
            .count()
    }

    /// Serializes the trace.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.instrs.len() as u64).to_le_bytes())?;
        for instr in &self.instrs {
            match *instr {
                Instr::Op => w.write_all(&[0u8])?,
                Instr::Load { pc, addr, dep } => {
                    w.write_all(&[1u8])?;
                    w.write_all(&pc.raw().to_le_bytes())?;
                    w.write_all(&addr.raw().to_le_bytes())?;
                    w.write_all(&[dep.map_or(0xFF, |c| c.min(0xFE))])?;
                }
                Instr::Store { pc, addr } => {
                    w.write_all(&[2u8])?;
                    w.write_all(&pc.raw().to_le_bytes())?;
                    w.write_all(&addr.raw().to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes a trace.
    ///
    /// Reads the stream to its end, then parses the bytes with full
    /// validation: the record count is checked against the bytes actually
    /// present *before* any count-sized allocation (a corrupt count can
    /// therefore never drive memory use), truncation anywhere inside the
    /// header or a record is reported as [`TraceError::Truncated`], and
    /// bytes left over after the declared records are rejected as
    /// [`TraceError::TrailingData`].
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] variant describing the malformation, or the
    /// underlying I/O error.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, TraceError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::parse(&bytes)
    }

    /// Parses a complete in-memory trace image (see [`Trace::read_from`]).
    ///
    /// # Errors
    ///
    /// Any non-I/O [`TraceError`] variant describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<Self, TraceError> {
        fn take<'a>(
            cur: &mut &'a [u8],
            n: usize,
            context: &'static str,
        ) -> Result<&'a [u8], TraceError> {
            if cur.len() < n {
                return Err(TraceError::Truncated { context });
            }
            let (head, tail) = cur.split_at(n);
            *cur = tail;
            Ok(head)
        }
        fn take_u64(cur: &mut &[u8], context: &'static str) -> Result<u64, TraceError> {
            let b = take(cur, 8, context)?;
            Ok(u64::from_le_bytes(
                b.try_into().expect("split_at gave 8 bytes"),
            ))
        }

        let mut cur = bytes;
        if take(&mut cur, 4, "magic")? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version_bytes = take(&mut cur, 4, "version")?;
        let version = u32::from_le_bytes(version_bytes.try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let count = take_u64(&mut cur, "record count")?;
        // Every record occupies at least one byte, so a count larger than
        // the remaining payload is corrupt; rejecting it here means the
        // count is never trusted for the Vec allocation below.
        if count > cur.len() as u64 {
            return Err(TraceError::OversizedCount {
                count,
                available: cur.len() as u64,
            });
        }
        let mut instrs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let kind = take(&mut cur, 1, "record kind")?[0];
            match kind {
                0 => instrs.push(Instr::Op),
                1 => {
                    let pc = take_u64(&mut cur, "load record")?;
                    let addr = take_u64(&mut cur, "load record")?;
                    let dep = take(&mut cur, 1, "load record")?[0];
                    instrs.push(Instr::Load {
                        pc: Pc::new(pc),
                        addr: Addr::new(addr),
                        dep: if dep == 0xFF { None } else { Some(dep) },
                    });
                }
                2 => {
                    let pc = take_u64(&mut cur, "store record")?;
                    let addr = take_u64(&mut cur, "store record")?;
                    instrs.push(Instr::Store {
                        pc: Pc::new(pc),
                        addr: Addr::new(addr),
                    });
                }
                k => return Err(TraceError::BadRecord(k)),
            }
        }
        if !cur.is_empty() {
            return Err(TraceError::TrailingData {
                bytes: cur.len() as u64,
            });
        }
        Ok(Trace { instrs })
    }
}

/// Captures `count` instructions from a source into a trace.
pub fn record(source: &mut dyn InstrSource, count: usize) -> Trace {
    let instrs = (0..count).map(|_| source.next_instr()).collect();
    Trace { instrs }
}

/// Replays a [`Trace`] as an [`InstrSource`], looping at the end.
#[derive(Clone, Debug)]
pub struct TraceSource {
    trace: Trace,
    position: usize,
    /// Number of times the trace wrapped around.
    pub loops: u64,
}

impl TraceSource {
    /// Creates a replaying source.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (an empty source cannot satisfy the
    /// simulator's infinite-stream contract).
    pub fn new(trace: Trace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        TraceSource {
            trace,
            position: 0,
            loops: 0,
        }
    }
}

impl InstrSource for TraceSource {
    fn next_instr(&mut self) -> Instr {
        let instr = self.trace.instrs[self.position];
        self.position += 1;
        if self.position == self.trace.instrs.len() {
            self.position = 0;
            self.loops += 1;
        }
        instr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_instrs(vec![
            Instr::Op,
            Instr::Load {
                pc: Pc::new(0x400),
                addr: Addr::new(0x1000),
                dep: None,
            },
            Instr::Load {
                pc: Pc::new(0x404),
                addr: Addr::new(0x2000),
                dep: Some(7),
            },
            Instr::Store {
                pc: Pc::new(0x408),
                addr: Addr::new(0x3000),
            },
            Instr::Op,
        ])
    }

    #[test]
    fn round_trip_preserves_instructions() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).expect("serialize");
        let back = Trace::read_from(buf.as_slice()).expect("deserialize");
        assert_eq!(trace, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic), "{err}");
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BGTR");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::BadVersion(99)), "{err}");
    }

    #[test]
    fn bad_record_kind_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BGTR");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(9);
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::BadRecord(9)), "{err}");
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).expect("serialize");
        buf.truncate(buf.len() - 3);
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::Truncated { .. }), "{err}");
    }

    #[test]
    fn oversized_count_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BGTR");
        buf.extend_from_slice(&1u32.to_le_bytes());
        // Claim u64::MAX records with a one-byte payload: must be rejected
        // from the length check, never from an allocation attempt.
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.push(0);
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::OversizedCount {
                    count: u64::MAX,
                    available: 1
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn trailing_data_is_rejected() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).expect("serialize");
        buf.push(0);
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, TraceError::TrailingData { bytes: 1 }),
            "{err}"
        );
    }

    #[test]
    fn record_captures_from_any_source() {
        let mut n = 0u64;
        let mut src = move || {
            n += 1;
            if n.is_multiple_of(2) {
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new(n * 64),
                    dep: None,
                }
            } else {
                Instr::Op
            }
        };
        let trace = record(&mut src, 10);
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.memory_accesses(), 5);
    }

    #[test]
    fn replay_loops_at_the_end() {
        let trace = sample_trace();
        let len = trace.len();
        let mut src = TraceSource::new(trace.clone());
        let first_pass: Vec<Instr> = (0..len).map(|_| src.next_instr()).collect();
        let second_pass: Vec<Instr> = (0..len).map(|_| src.next_instr()).collect();
        assert_eq!(first_pass, trace.instrs().to_vec());
        assert_eq!(second_pass, trace.instrs().to_vec());
        assert_eq!(src.loops, 2);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_cannot_be_replayed() {
        let _ = TraceSource::new(Trace::new());
    }

    #[test]
    fn recorded_workload_replays_identically_in_simulation() {
        use crate::prefetch::NoPrefetcher;
        use crate::system::System;
        use crate::SystemConfig;

        // Record a simple generator, then replay it twice: simulations must
        // agree bit-for-bit.
        let mut n = 0u64;
        let mut gen = move || {
            n += 1;
            if n.is_multiple_of(3) {
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new((n / 3) * 64 * 17 % (1 << 24)),
                    dep: None,
                }
            } else {
                Instr::Op
            }
        };
        let trace = record(&mut gen, 30_000);
        let run = |t: Trace| {
            System::new(
                SystemConfig::tiny(),
                vec![Box::new(TraceSource::new(t))],
                vec![Box::new(NoPrefetcher)],
                20_000,
            )
            .run()
        };
        let a = run(trace.clone());
        let b = run(trace);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.llc.demand_misses, b.llc.demand_misses);
    }
}
