//! Set-associative cache model with MSHRs, pluggable replacement, and
//! per-line prefetch attribution.
//!
//! A cache tracks two populations of blocks:
//!
//! * **resident lines** in the tag array, and
//! * **pending fills** (the MSHR file): blocks whose miss has been issued to
//!   the next level but whose data has not arrived yet.
//!
//! The memory system drives the cache with [`Cache::demand_access`],
//! allocates misses with [`Cache::allocate_fill`], and completes them with
//! [`Cache::complete_fill`] when the fill's ready cycle arrives. Prefetch
//! usefulness is attributed per line: a prefetched line demanded before
//! eviction is *useful*; one demanded while still in flight is *late*; one
//! evicted untouched is *useless* (an overprediction).

use crate::addr::BlockAddr;
use crate::config::CacheConfig;
use crate::openmap::OpenMap;
use crate::stats::CacheStats;

/// Replacement policy for victim selection within a set.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the paper's baseline policy).
    #[default]
    Lru,
    /// First-in-first-out (insertion order).
    Fifo,
    /// Pseudo-random (deterministic xorshift).
    Random,
}

/// Outcome of a demand lookup.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The block is resident; data available at the contained cycle.
    Hit {
        /// Cycle at which the data is available to the requester.
        ready_at: u64,
    },
    /// The block's fill is in flight (MSHR merge); data available when the
    /// fill lands.
    PendingHit {
        /// Cycle at which the in-flight fill completes.
        ready_at: u64,
    },
    /// The block is neither resident nor in flight.
    Miss,
}

/// A block evicted by [`Cache::complete_fill`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted block.
    pub block: BlockAddr,
    /// Whether the line was dirty and must be written back.
    pub dirty: bool,
    /// Whether the line was brought in by a prefetch and never demanded.
    pub unused_prefetch: bool,
}

/// Per-line status flags, packed so the tag array stays dense.
mod flag {
    pub const VALID: u8 = 1 << 0;
    pub const DIRTY: u8 = 1 << 1;
    /// Line was filled by a prefetch.
    pub const PREFETCHED: u8 = 1 << 2;
    /// A demand access has touched the line since its fill.
    pub const DEMANDED: u8 = 1 << 3;
    /// Line was filled during the measurement window (post-warmup).
    pub const MEASURED: u8 = 1 << 4;
}

#[derive(Copy, Clone, Debug)]
struct PendingFill {
    ready: u64,
    prefetch: bool,
    /// A demand merged with this fill while in flight.
    demanded: bool,
    /// A store targeted this block while in flight; the filled line must
    /// be installed dirty.
    dirty: bool,
}

/// A set-associative, banked, write-back cache with a finite MSHR file.
///
/// The tag array is structure-of-arrays: every lookup's way scan walks a
/// dense `u64` tag slice (set *s* occupies indices `s*ways ..
/// (s+1)*ways`), touching the flag/recency columns only on a match. The
/// MSHR file is an [`OpenMap`] pre-sized to the MSHR count, so the hot
/// path never hashes through SipHash or allocates.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    tags: Vec<u64>,
    flags: Vec<u8>,
    last_touch: Vec<u64>,
    inserted: Vec<u64>,
    set_mask: u64,
    /// `banks - 1` when the bank count is a power of two, letting
    /// [`Cache::bank_start`] — on the path retried every cycle by a
    /// stalled core — use a mask instead of an integer division.
    bank_mask: Option<u64>,
    pending: OpenMap<PendingFill>,
    /// In-flight fills allocated by prefetches (the prefetch-queue
    /// occupancy); maintained incrementally so the bounded-queue check is
    /// O(1) per candidate.
    pending_prefetches: usize,
    bank_free: Vec<u64>,
    stamp: u64,
    rng_state: u64,
    policy: ReplacementPolicy,
    /// Statistics; reset with [`Cache::reset_stats`].
    pub stats: CacheStats,
}

impl Cache {
    /// Creates a cache with the given geometry and LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if the configuration implies a non-power-of-two set count.
    pub fn new(cfg: CacheConfig) -> Self {
        Self::with_policy(cfg, ReplacementPolicy::Lru)
    }

    /// Creates a cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration implies a non-power-of-two set count.
    pub fn with_policy(cfg: CacheConfig, policy: ReplacementPolicy) -> Self {
        let sets = cfg.sets();
        let lines = sets * cfg.ways;
        Cache {
            cfg,
            tags: vec![0; lines],
            // Invalid lines count as measured so stale slots never leak
            // into pre-measurement accounting.
            flags: vec![flag::MEASURED; lines],
            last_touch: vec![0; lines],
            inserted: vec![0; lines],
            set_mask: sets as u64 - 1,
            bank_mask: cfg.banks.is_power_of_two().then(|| cfg.banks as u64 - 1),
            pending: OpenMap::with_capacity(cfg.mshrs),
            pending_prefetches: 0,
            bank_free: vec![0; cfg.banks],
            stamp: 0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            policy,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        (block.index() & self.set_mask) as usize
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Models bank-port contention: reserves the block's bank for one cycle
    /// and returns the cycle at which the lookup actually starts.
    fn bank_start(&mut self, block: BlockAddr, now: u64) -> u64 {
        let bank = match self.bank_mask {
            Some(mask) => (block.index() & mask) as usize,
            None => (block.index() % self.cfg.banks as u64) as usize,
        };
        let start = now.max(self.bank_free[bank]);
        self.bank_free[bank] = start + 1;
        start
    }

    /// Performs a demand (load or store) lookup at cycle `now`.
    ///
    /// Updates recency, dirtiness, and prefetch-usefulness attribution on
    /// hits. Does **not** count misses — the memory system counts a miss
    /// only when it successfully issues it to the next level, so that
    /// MSHR-full retries are not double counted.
    pub fn demand_access(&mut self, block: BlockAddr, now: u64, is_write: bool) -> Lookup {
        self.stats.demand_accesses += 1;
        let start = self.bank_start(block, now);
        let stamp = self.next_stamp();
        if let Some(i) = self.find_resident(block) {
            self.last_touch[i] = stamp;
            let f = self.flags[i];
            if f & (flag::PREFETCHED | flag::DEMANDED) == flag::PREFETCHED {
                self.stats.pf_useful += 1;
            }
            self.flags[i] = f | flag::DEMANDED | if is_write { flag::DIRTY } else { 0 };
            self.stats.demand_hits += 1;
            return Lookup::Hit {
                ready_at: start + self.cfg.latency,
            };
        }
        if let Some(entry) = self.pending.get_mut(block.index()) {
            if entry.prefetch && !entry.demanded {
                self.stats.pf_late += 1;
            }
            entry.demanded = true;
            entry.dirty |= is_write;
            self.stats.demand_hits_pending += 1;
            let ready_at = entry.ready.max(start + self.cfg.latency);
            return Lookup::PendingHit { ready_at };
        }
        Lookup::Miss
    }

    /// Replays `k` consecutive missed-and-stalled retry lookups of `block`
    /// in closed form, the first at cycle `first`. While the system is
    /// quiescent a stalled core's retry deterministically misses, so its
    /// only effects are the access counter, the recency stamp, and the bank
    /// reservation — and the bank recurrence `free = max(t, free) + 1` over
    /// access times that start at `first` and grow by at most one per cycle
    /// collapses to `free = max(first, free) + k`.
    pub(crate) fn apply_missed_retries(
        &mut self,
        block: BlockAddr,
        first: u64,
        k: u64,
        mshr_stalled: bool,
    ) {
        self.stats.demand_accesses += k;
        if mshr_stalled {
            self.stats.demand_mshr_stalls += k;
        }
        self.stamp += k;
        let bank = match self.bank_mask {
            Some(mask) => (block.index() & mask) as usize,
            None => (block.index() % self.cfg.banks as u64) as usize,
        };
        let free = &mut self.bank_free[bank];
        *free = (*free).max(first) + k;
    }

    /// Whether the block is resident or in flight (used to filter duplicate
    /// prefetches). Does not disturb recency or statistics.
    pub fn probe(&self, block: BlockAddr) -> bool {
        if self.pending.contains_key(block.index()) {
            return true;
        }
        self.find_resident(block).is_some()
    }

    /// Flat index of the valid line holding `block`, if resident. Scans
    /// the set's dense tag slice; one slice bounds check, no per-way ones.
    #[inline]
    fn find_resident(&self, block: BlockAddr) -> Option<usize> {
        let base = self.set_index(block) * self.cfg.ways;
        let end = base + self.cfg.ways;
        let tag = block.index();
        self.tags[base..end]
            .iter()
            .zip(&self.flags[base..end])
            .position(|(&t, &f)| t == tag && f & flag::VALID != 0)
            .map(|w| base + w)
    }

    /// Whether the block has an in-flight fill that was allocated by a
    /// prefetch and has not yet been demanded. Telemetry cross-check hook;
    /// does not disturb state or statistics.
    pub fn prefetch_pending(&self, block: BlockAddr) -> bool {
        self.pending
            .get(block.index())
            .is_some_and(|e| e.prefetch && !e.demanded)
    }

    /// Number of in-flight fills (MSHR occupancy).
    pub fn mshr_occupancy(&self) -> usize {
        self.pending.len()
    }

    /// Number of in-flight fills allocated by prefetches — the occupancy a
    /// bounded prefetch queue is checked against. Includes prefetches a
    /// demand has since merged with (the slot is held until the fill
    /// lands).
    pub fn prefetches_in_flight(&self) -> usize {
        self.pending_prefetches
    }

    /// Whether a demand miss can allocate an MSHR.
    pub fn mshr_available_for_demand(&self) -> bool {
        self.pending.len() < self.cfg.mshrs
    }

    /// Whether a prefetch may allocate an MSHR, leaving `reserved` slots for
    /// demands.
    pub fn mshr_available_for_prefetch(&self, reserved: usize) -> bool {
        self.pending.len() + reserved < self.cfg.mshrs
    }

    /// Records an outstanding fill that will complete at cycle `ready`.
    ///
    /// The caller must have verified MSHR availability and non-residency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block is already pending or resident.
    pub fn allocate_fill(&mut self, block: BlockAddr, ready: u64, prefetch: bool) {
        debug_assert!(
            !self.probe(block),
            "allocate_fill for resident/pending {block:?}"
        );
        crate::audit_assert!(
            self.pending.len() < self.cfg.mshrs,
            "MSHR occupancy invariant: allocate_fill at occupancy {} with only {} MSHRs",
            self.pending.len(),
            self.cfg.mshrs
        );
        self.pending.insert(
            block.index(),
            PendingFill {
                ready,
                prefetch,
                demanded: !prefetch,
                dirty: false,
            },
        );
        if prefetch {
            self.pending_prefetches += 1;
        }
    }

    /// Marks an in-flight fill dirty (a store is merging into it); returns
    /// whether the block was pending.
    pub fn mark_pending_dirty(&mut self, block: BlockAddr) -> bool {
        match self.pending.get_mut(block.index()) {
            Some(entry) => {
                entry.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Lands an in-flight fill: installs the line, selecting and returning a
    /// victim if the set was full.
    ///
    /// Returns `None` if the block was not pending (e.g. invalidated while
    /// in flight) or if an invalid way absorbed the fill.
    pub fn complete_fill(&mut self, block: BlockAddr, dirty: bool) -> Option<Evicted> {
        let entry = self.pending.remove(block.index())?;
        if entry.prefetch {
            self.pending_prefetches -= 1;
        }
        let stamp = self.next_stamp();
        let base = self.set_index(block) * self.cfg.ways;

        // Prefer an invalid way.
        let victim_idx = if let Some(i) =
            (base..base + self.cfg.ways).find(|&i| self.flags[i] & flag::VALID == 0)
        {
            i
        } else {
            self.pick_victim(base)
        };
        let vf = self.flags[victim_idx];
        let evicted = if vf & flag::VALID != 0 {
            self.stats.evictions += 1;
            let victim_dirty = vf & flag::DIRTY != 0;
            if victim_dirty {
                self.stats.writebacks += 1;
            }
            let unused_prefetch = vf & (flag::PREFETCHED | flag::DEMANDED) == flag::PREFETCHED;
            if unused_prefetch {
                self.stats.pf_useless += 1;
            }
            Some(Evicted {
                block: BlockAddr::new(self.tags[victim_idx]),
                dirty: victim_dirty,
                unused_prefetch,
            })
        } else {
            None
        };
        self.tags[victim_idx] = block.index();
        self.flags[victim_idx] = flag::VALID
            | flag::MEASURED
            | if dirty || entry.dirty { flag::DIRTY } else { 0 }
            | if entry.prefetch { flag::PREFETCHED } else { 0 }
            | if entry.demanded { flag::DEMANDED } else { 0 };
        self.last_touch[victim_idx] = stamp;
        self.inserted[victim_idx] = stamp;
        crate::audit_assert!(
            victim_idx >= base && victim_idx < base + self.cfg.ways,
            "set structure invariant: victim index {} outside set at {}..{}",
            victim_idx,
            base,
            base + self.cfg.ways
        );
        evicted
    }

    fn pick_victim(&mut self, base: usize) -> usize {
        let ways = base..base + self.cfg.ways;
        match self.policy {
            ReplacementPolicy::Lru => ways
                .min_by_key(|&i| self.last_touch[i])
                .expect("cache sets are never empty"),
            ReplacementPolicy::Fifo => ways
                .min_by_key(|&i| self.inserted[i])
                .expect("cache sets are never empty"),
            ReplacementPolicy::Random => {
                // xorshift64*
                let mut x = self.rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng_state = x;
                base + (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % self.cfg.ways as u64) as usize
            }
        }
    }

    /// Marks a resident line dirty (used for writebacks arriving from an
    /// upper level). Returns `true` if the line was resident.
    pub fn mark_dirty(&mut self, block: BlockAddr) -> bool {
        match self.find_resident(block) {
            Some(i) => {
                self.flags[i] |= flag::DIRTY;
                true
            }
            None => false,
        }
    }

    /// Invalidates a block if resident. Returns whether it was dirty.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<bool> {
        let i = self.find_resident(block)?;
        let f = self.flags[i];
        let dirty = f & flag::DIRTY != 0;
        if f & (flag::PREFETCHED | flag::DEMANDED) == flag::PREFETCHED {
            self.stats.pf_useless += 1;
        }
        self.tags[i] = 0;
        self.flags[i] = flag::MEASURED;
        self.last_touch[i] = 0;
        self.inserted[i] = 0;
        Some(dirty)
    }

    /// Number of resident prefetched lines never demanded, restricted to
    /// lines filled during the measurement window. Folded into
    /// `pf_useless` at end of simulation so overprediction accounting does
    /// not depend on the cache filling up within the measurement window.
    pub fn count_unused_prefetched(&self) -> u64 {
        const UNUSED: u8 = flag::VALID | flag::PREFETCHED | flag::MEASURED;
        self.flags
            .iter()
            .filter(|&&f| f & (UNUSED | flag::DEMANDED) == UNUSED)
            .count() as u64
    }

    /// Number of valid resident lines (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.flags.iter().filter(|&&f| f & flag::VALID != 0).count()
    }

    /// Clears statistics, keeping cache contents (for warmup windows), and
    /// marks existing lines as pre-measurement so end-of-run accounting
    /// (e.g. [`Cache::count_unused_prefetched`]) ignores them.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        for f in &mut self.flags {
            *f &= !flag::MEASURED;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            latency: 10,
            mshrs: 4,
            banks: 1,
        })
    }

    fn fill_now(c: &mut Cache, block: u64) {
        c.allocate_fill(BlockAddr::new(block), 0, false);
        c.complete_fill(BlockAddr::new(block), false);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        let b = BlockAddr::new(42);
        assert_eq!(c.demand_access(b, 0, false), Lookup::Miss);
        c.allocate_fill(b, 100, false);
        assert!(c.probe(b));
        match c.demand_access(b, 50, false) {
            Lookup::PendingHit { ready_at } => assert_eq!(ready_at, 100),
            other => panic!("expected pending hit, got {other:?}"),
        }
        c.complete_fill(b, false);
        match c.demand_access(b, 200, false) {
            Lookup::Hit { ready_at } => assert_eq!(ready_at, 210),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats.demand_hits, 1);
        assert_eq!(c.stats.demand_hits_pending, 1);
    }

    #[test]
    fn pending_hit_after_ready_uses_lookup_latency() {
        let mut c = small_cache();
        let b = BlockAddr::new(7);
        c.allocate_fill(b, 100, false);
        // Accessing at cycle 200, fill long since ready: latency-bound.
        match c.demand_access(b, 200, false) {
            Lookup::PendingHit { ready_at } => assert_eq!(ready_at, 210),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        // Set 0 holds blocks 0, 4, 8, ... (4 sets). Two ways.
        fill_now(&mut c, 0);
        fill_now(&mut c, 4);
        // Touch block 0 so block 4 is LRU.
        c.demand_access(BlockAddr::new(0), 10, false);
        c.allocate_fill(BlockAddr::new(8), 20, false);
        let ev = c.complete_fill(BlockAddr::new(8), false).expect("eviction");
        assert_eq!(ev.block, BlockAddr::new(4));
        assert!(c.probe(BlockAddr::new(0)));
        assert!(c.probe(BlockAddr::new(8)));
        assert!(!c.probe(BlockAddr::new(4)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        fill_now(&mut c, 0);
        c.demand_access(BlockAddr::new(0), 0, true); // store -> dirty
        fill_now(&mut c, 4);
        c.allocate_fill(BlockAddr::new(8), 0, false);
        // LRU is block 0 only if untouched since; touch block 4.
        c.demand_access(BlockAddr::new(4), 5, false);
        let ev = c.complete_fill(BlockAddr::new(8), false).expect("eviction");
        assert_eq!(ev.block, BlockAddr::new(0));
        assert!(ev.dirty);
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn prefetch_useful_counted_once() {
        let mut c = small_cache();
        let b = BlockAddr::new(12);
        c.allocate_fill(b, 0, true);
        c.complete_fill(b, false);
        c.demand_access(b, 10, false);
        c.demand_access(b, 20, false);
        assert_eq!(c.stats.pf_useful, 1);
        assert_eq!(c.stats.pf_useless, 0);
    }

    #[test]
    fn late_prefetch_counted_and_not_double_counted_as_useful() {
        let mut c = small_cache();
        let b = BlockAddr::new(12);
        c.allocate_fill(b, 100, true);
        c.demand_access(b, 50, false); // merges with in-flight prefetch
        assert_eq!(c.stats.pf_late, 1);
        c.complete_fill(b, false);
        c.demand_access(b, 200, false);
        // Already demanded while pending; not counted useful again.
        assert_eq!(c.stats.pf_useful, 0);
        assert_eq!(c.stats.pf_late, 1);
    }

    #[test]
    fn unused_prefetch_eviction_is_useless() {
        let mut c = small_cache();
        c.allocate_fill(BlockAddr::new(0), 0, true);
        c.complete_fill(BlockAddr::new(0), false);
        fill_now(&mut c, 4);
        c.allocate_fill(BlockAddr::new(8), 0, false);
        let ev = c.complete_fill(BlockAddr::new(8), false).expect("eviction");
        assert_eq!(ev.block, BlockAddr::new(0));
        assert!(ev.unused_prefetch);
        assert_eq!(c.stats.pf_useless, 1);
    }

    #[test]
    fn mshr_limits() {
        let mut c = small_cache();
        for i in 0..4 {
            assert!(c.mshr_available_for_demand());
            c.allocate_fill(BlockAddr::new(i * 4 + 1), 100, false);
        }
        assert!(!c.mshr_available_for_demand());
        assert_eq!(c.mshr_occupancy(), 4);
        // With 2 reserved slots, prefetches lose eligibility at occupancy 2.
        let mut c2 = small_cache();
        c2.allocate_fill(BlockAddr::new(1), 100, false);
        c2.allocate_fill(BlockAddr::new(2), 100, false);
        assert!(!c2.mshr_available_for_prefetch(2));
        assert!(c2.mshr_available_for_prefetch(1));
    }

    #[test]
    fn prefetches_in_flight_tracks_allocations_and_fills() {
        let mut c = small_cache();
        assert_eq!(c.prefetches_in_flight(), 0);
        c.allocate_fill(BlockAddr::new(1), 100, true);
        c.allocate_fill(BlockAddr::new(2), 100, false);
        c.allocate_fill(BlockAddr::new(3), 100, true);
        assert_eq!(c.prefetches_in_flight(), 2, "demand fills do not count");
        // A demand merging with an in-flight prefetch keeps the slot held.
        c.demand_access(BlockAddr::new(1), 50, false);
        assert_eq!(c.prefetches_in_flight(), 2);
        c.complete_fill(BlockAddr::new(1), false);
        assert_eq!(c.prefetches_in_flight(), 1);
        c.complete_fill(BlockAddr::new(2), false);
        assert_eq!(
            c.prefetches_in_flight(),
            1,
            "demand fill release is a no-op"
        );
        c.complete_fill(BlockAddr::new(3), false);
        assert_eq!(c.prefetches_in_flight(), 0);
    }

    #[test]
    fn bank_contention_serializes_same_cycle_lookups() {
        let mut c = small_cache(); // 1 bank
        let a = BlockAddr::new(0);
        let b = BlockAddr::new(1);
        fill_now(&mut c, 0);
        fill_now(&mut c, 1);
        let t1 = match c.demand_access(a, 100, false) {
            Lookup::Hit { ready_at } => ready_at,
            _ => panic!(),
        };
        let t2 = match c.demand_access(b, 100, false) {
            Lookup::Hit { ready_at } => ready_at,
            _ => panic!(),
        };
        assert_eq!(t1, 110);
        assert_eq!(t2, 111, "second same-cycle access waits one bank cycle");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        fill_now(&mut c, 3);
        c.demand_access(BlockAddr::new(3), 0, true);
        assert_eq!(c.invalidate(BlockAddr::new(3)), Some(true));
        assert!(!c.probe(BlockAddr::new(3)));
        assert_eq!(c.invalidate(BlockAddr::new(3)), None);
    }

    #[test]
    fn fill_into_invalid_way_reports_no_eviction() {
        let mut c = small_cache();
        c.allocate_fill(BlockAddr::new(0), 0, false);
        assert!(c.complete_fill(BlockAddr::new(0), false).is_none());
    }

    #[test]
    fn complete_fill_for_unknown_block_is_none() {
        let mut c = small_cache();
        assert!(c.complete_fill(BlockAddr::new(99), false).is_none());
    }

    #[test]
    fn resident_line_count_tracks_fills() {
        let mut c = small_cache();
        for i in 0..8 {
            fill_now(&mut c, i);
        }
        assert_eq!(c.resident_lines(), 8); // exactly full: 4 sets x 2 ways
        fill_now(&mut c, 8);
        assert_eq!(c.resident_lines(), 8); // one eviction happened
    }

    #[test]
    fn fifo_policy_evicts_oldest_insertion() {
        let cfg = CacheConfig {
            size_bytes: 512,
            ways: 2,
            latency: 1,
            mshrs: 4,
            banks: 1,
        };
        let mut c = Cache::with_policy(cfg, ReplacementPolicy::Fifo);
        fill_now(&mut c, 0);
        fill_now(&mut c, 4);
        // Touch block 0: with LRU, 4 would be the victim; FIFO still evicts 0.
        c.demand_access(BlockAddr::new(0), 10, false);
        c.allocate_fill(BlockAddr::new(8), 20, false);
        let ev = c.complete_fill(BlockAddr::new(8), false).expect("eviction");
        assert_eq!(ev.block, BlockAddr::new(0));
    }
}
