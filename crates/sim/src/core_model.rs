//! A simplified 4-wide out-of-order core model.
//!
//! The model captures the first-order behavior that determines how much a
//! data prefetcher helps (Fig. 8): a width-limited front end, a finite
//! reorder buffer whose head blocks retirement on outstanding long-latency
//! loads, a load/store queue bounding outstanding stores, and explicit
//! load→load dependencies that serialize pointer-chasing access chains.
//!
//! Instructions are supplied by an [`InstrSource`] — an infinite,
//! deterministic generator (see the `bingo-workloads` crate).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::addr::{Addr, CoreId, Pc};
use crate::config::CoreConfig;
use crate::memory::{IssueResult, MemorySystem};
use crate::stats::CoreStats;

/// One dynamic instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// A non-memory instruction (1-cycle execute).
    Op,
    /// A load.
    Load {
        /// Program counter of the load.
        pc: Pc,
        /// Effective byte address.
        addr: Addr,
        /// Dependency chain. `Some(c)` means the load consumes the value
        /// of the most recent preceding load on chain `c` (pointer
        /// chasing / serialized object walks) and cannot issue until that
        /// load completes; it then becomes the new tail of chain `c`.
        /// `None` is a fully independent load.
        dep: Option<u8>,
    },
    /// A store (write-allocate; retires without waiting for memory).
    Store {
        /// Program counter of the store.
        pc: Pc,
        /// Effective byte address.
        addr: Addr,
    },
}

/// An infinite stream of dynamic instructions for one core.
pub trait InstrSource {
    /// Produces the next instruction. Sources never end; the simulator
    /// stops after a configured retired-instruction count.
    fn next_instr(&mut self) -> Instr;

    /// Trace-ingestion accounting, for sources that replay recorded
    /// traces: how many records were delivered and how much corrupt
    /// input was quarantined so far. Synthetic generators keep the
    /// default `None`; [`crate::System::try_run`] sums the `Some`
    /// reports into [`crate::SimResult::ingest`].
    fn ingest_report(&self) -> Option<crate::stats::IngestReport> {
        None
    }
}

impl<F: FnMut() -> Instr> InstrSource for F {
    fn next_instr(&mut self) -> Instr {
        self()
    }
}

/// The out-of-order core.
#[derive(Debug)]
pub struct OooCore {
    id: CoreId,
    cfg: CoreConfig,
    /// Completion cycles of in-flight instructions, in program order.
    rob: VecDeque<u64>,
    /// Instruction that failed to dispatch last cycle, retried first.
    stalled: Option<Instr>,
    /// Completion cycles of outstanding stores (LSQ occupancy).
    store_queue: BinaryHeap<Reverse<u64>>,
    /// Completion cycle of the tail load of each dependency chain.
    chain_done: Box<[u64; 256]>,
    target: u64,
    warmup: u64,
    warmed: bool,
    cycle_offset: u64,
    done: bool,
    /// Statistics for this core (measurement window only).
    pub stats: CoreStats,
}

impl OooCore {
    /// Creates a core that will retire `target` instructions.
    pub fn new(id: CoreId, cfg: CoreConfig, target: u64) -> Self {
        OooCore {
            id,
            cfg,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            stalled: None,
            store_queue: BinaryHeap::new(),
            chain_done: Box::new([0; 256]),
            target,
            warmup: 0,
            warmed: true,
            cycle_offset: 0,
            done: false,
            stats: CoreStats::default(),
        }
    }

    /// Adds a warmup window: the core retires `warmup` instructions (with
    /// all structures live) before its statistics start counting, modeling
    /// SimFlex-style warmed checkpoints.
    pub fn set_warmup(&mut self, warmup: u64) {
        self.warmup = warmup;
        self.warmed = warmup == 0;
    }

    /// Whether the core has passed its warmup window.
    pub fn is_warmed(&self) -> bool {
        self.warmed
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Whether the core has retired its instruction target.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Simulates one cycle: retire, then dispatch. Returns `true` once the
    /// instruction target has been reached (the core then idles).
    pub fn step(&mut self, now: u64, mem: &mut MemorySystem, src: &mut dyn InstrSource) -> bool {
        if self.done {
            return true;
        }
        self.stats.cycles = (now + 1).saturating_sub(self.cycle_offset);

        // Retire in order.
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            match self.rob.front() {
                Some(&done_at) if done_at <= now => {
                    self.rob.pop_front();
                    self.stats.instructions += 1;
                    retired += 1;
                    if !self.warmed && self.stats.instructions >= self.warmup {
                        self.warmed = true;
                        self.cycle_offset = now;
                        self.stats = CoreStats {
                            cycles: 1,
                            ..CoreStats::default()
                        };
                    } else if self.warmed && self.stats.instructions >= self.target {
                        self.done = true;
                        return true;
                    }
                }
                _ => break,
            }
        }

        // Dispatch in order.
        let mut dispatched = 0;
        while dispatched < self.cfg.width && self.rob.len() < self.cfg.rob_entries {
            let instr = match self.stalled.take() {
                Some(i) => i,
                None => src.next_instr(),
            };
            match instr {
                Instr::Op => {
                    self.rob.push_back(now + 1);
                }
                Instr::Load { pc, addr, dep } => {
                    // A load whose producer (chain tail) has not completed
                    // does not block dispatch — like a real OoO core it
                    // waits in the window and issues the moment its operand
                    // arrives. Independent work behind it keeps flowing;
                    // back-pressure comes from the finite ROB.
                    let issue_at = match dep {
                        Some(chain) => {
                            let ready = self.chain_done[chain as usize];
                            if ready > now {
                                self.stats.dependency_stall_cycles += ready - now;
                            }
                            ready.max(now)
                        }
                        None => now,
                    };
                    match mem.load(self.id, pc, addr, issue_at) {
                        IssueResult::Done(t) => {
                            self.rob.push_back(t);
                            if let Some(chain) = dep {
                                self.chain_done[chain as usize] = t;
                            }
                            self.stats.loads += 1;
                        }
                        IssueResult::Stall => {
                            self.stats.dispatch_stall_cycles += 1;
                            self.stalled = Some(instr);
                            break;
                        }
                    }
                }
                Instr::Store { pc, addr } => {
                    while matches!(self.store_queue.peek(), Some(&Reverse(t)) if t <= now) {
                        self.store_queue.pop();
                    }
                    if self.store_queue.len() >= self.cfg.lsq_entries {
                        self.stats.dispatch_stall_cycles += 1;
                        self.stalled = Some(instr);
                        break;
                    }
                    match mem.store(self.id, pc, addr, now) {
                        IssueResult::Done(t) => {
                            self.store_queue.push(Reverse(t));
                            self.rob.push_back(now + 1);
                            self.stats.stores += 1;
                        }
                        IssueResult::Stall => {
                            self.stats.dispatch_stall_cycles += 1;
                            self.stalled = Some(instr);
                            break;
                        }
                    }
                }
            }
            dispatched += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::prefetch::NoPrefetcher;

    fn mem() -> MemorySystem {
        MemorySystem::new(SystemConfig::tiny(), vec![Box::new(NoPrefetcher)])
    }

    fn run(core: &mut OooCore, mem: &mut MemorySystem, src: &mut dyn InstrSource, max: u64) -> u64 {
        for now in 0..max {
            mem.tick(now);
            if core.step(now, mem, src) {
                return now;
            }
        }
        panic!("core did not finish within {max} cycles");
    }

    #[test]
    fn pure_ops_reach_full_width_ipc() {
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 4000);
        let mut src = || Instr::Op;
        run(&mut core, &mut m, &mut src, 100_000);
        let ipc = core.stats.ipc();
        assert!(ipc > 3.5, "op-only IPC {ipc} should approach width 4");
    }

    #[test]
    fn l1_hit_loads_barely_slow_the_core() {
        let mut m = mem();
        // Warm one block, then loop loads to it.
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 4000);
        let mut i = 0u64;
        let mut src = move || {
            i += 1;
            if i.is_multiple_of(4) {
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new(0x100),
                    dep: None,
                }
            } else {
                Instr::Op
            }
        };
        run(&mut core, &mut m, &mut src, 100_000);
        let ipc = core.stats.ipc();
        assert!(ipc > 2.0, "L1-resident IPC {ipc} should stay high");
    }

    #[test]
    fn dependent_chase_is_memory_latency_bound() {
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 512);
        // Every instruction is a dependent load to a new block: a pointer
        // chase with ~260-cycle misses, so IPC must be tiny.
        let mut next = 0u64;
        let mut src = move || {
            next += 1;
            Instr::Load {
                pc: Pc::new(0x400),
                addr: Addr::new(next * 64 * 512), // unique L1/LLC sets, all misses
                dep: Some(0),
            }
        };
        run(&mut core, &mut m, &mut src, 10_000_000);
        let ipc = core.stats.ipc();
        assert!(ipc < 0.02, "chase IPC {ipc} should be latency bound");
        assert!(core.stats.dependency_stall_cycles > 0);
    }

    #[test]
    fn independent_misses_overlap() {
        // Same miss stream but independent loads: MLP makes it much faster.
        let mk_src = |dep: Option<u8>| {
            let mut next = 0u64;
            move || {
                next += 1;
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new((next * 64 + next / 64) * 64 * 512),
                    dep,
                }
            }
        };
        let mut m1 = mem();
        let mut c1 = OooCore::new(CoreId(0), SystemConfig::tiny().core, 512);
        let mut s1 = mk_src(Some(7));
        let t_dep = run(&mut c1, &mut m1, &mut s1, 10_000_000);

        let mut m2 = mem();
        let mut c2 = OooCore::new(CoreId(0), SystemConfig::tiny().core, 512);
        let mut s2 = mk_src(None);
        let t_indep = run(&mut c2, &mut m2, &mut s2, 10_000_000);

        assert!(
            t_indep * 3 < t_dep,
            "independent misses ({t_indep} cyc) should overlap far better than dependent ({t_dep} cyc)"
        );
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 1000);
        let mut next = 0u64;
        let mut src = move || {
            next += 1;
            if next.is_multiple_of(8) {
                Instr::Store {
                    pc: Pc::new(0x500),
                    addr: Addr::new(next * 64 * 512),
                }
            } else {
                Instr::Op
            }
        };
        run(&mut core, &mut m, &mut src, 1_000_000);
        // Store misses are ~260 cycles; with 8 L1 MSHRs the sustainable rate
        // is ~8 stores / 260 cycles, i.e. ~0.25 IPC at 1 store per 8
        // instructions. A policy where stores blocked the ROB head would
        // serialize to one store per ~260 cycles (~0.03 IPC).
        let ipc = core.stats.ipc();
        assert!(
            ipc > 0.15,
            "store-heavy IPC {ipc} should not fully serialize"
        );
        assert_eq!(core.stats.stores, 1000 / 8);
    }

    #[test]
    fn rob_limits_outstanding_work() {
        // A core with a tiny ROB on an all-miss load stream can have at most
        // rob_entries loads in flight.
        let mut cfg = SystemConfig::tiny();
        cfg.core.rob_entries = 4;
        let mut m = MemorySystem::new(cfg, vec![Box::new(NoPrefetcher)]);
        let mut core = OooCore::new(CoreId(0), cfg.core, 64);
        let mut next = 0u64;
        let mut src = move || {
            next += 1;
            Instr::Load {
                pc: Pc::new(0x400),
                addr: Addr::new(next * 64 * 512),
                dep: None,
            }
        };
        run(&mut core, &mut m, &mut src, 10_000_000);
        // With ROB=4 and ~260-cycle misses, 64 loads need >= 16 miss rounds.
        assert!(core.stats.cycles > 16 * 200);
    }

    #[test]
    fn closure_sources_satisfy_the_trait() {
        fn takes_source(_s: &mut dyn InstrSource) {}
        let mut s = || Instr::Op;
        takes_source(&mut s);
    }

    #[test]
    fn dependent_load_does_not_block_independent_work() {
        // One serialized chase chain interleaved with pure ops: the ops
        // must flow at full width while the chain crawls — the OoO
        // operand-ready scheduling property.
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 20_000);
        let mut n = 0u64;
        let mut src = move || {
            n += 1;
            if n.is_multiple_of(100) {
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new((n / 100) * 64 * 512),
                    dep: Some(3),
                }
            } else {
                Instr::Op
            }
        };
        run(&mut core, &mut m, &mut src, 10_000_000);
        // 200 chained ~260-cycle misses would serialize to ~52K cycles,
        // but 99% of instructions are ops; with operand-ready issue the
        // run finishes near op-throughput (20K/4 = 5K cycles ... bounded
        // by the last chain link), far below full serialization.
        let ipc = core.stats.ipc();
        assert!(
            ipc > 0.35,
            "independent ops must overlap the chain (IPC {ipc})"
        );
    }

    #[test]
    fn distinct_chains_progress_independently() {
        // Two chains over disjoint blocks: each serializes internally, but
        // they overlap each other, halving the run time versus one chain.
        let run_chains = |nchains: u64| {
            let mut m = mem();
            let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 256);
            let mut n = 0u64;
            let mut src = move || {
                n += 1;
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new((n * 997) % (1 << 18) * 64 * 8),
                    dep: Some((n % nchains) as u8),
                }
            };
            run(&mut core, &mut m, &mut src, 10_000_000)
        };
        let one = run_chains(1);
        let four = run_chains(4);
        assert!(
            four * 2 < one,
            "4 chains ({four} cyc) must overlap far better than 1 ({one} cyc)"
        );
    }

    #[test]
    fn warmup_resets_core_statistics() {
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 1000);
        core.set_warmup(500);
        assert!(!core.is_warmed());
        let mut src = || Instr::Op;
        run(&mut core, &mut m, &mut src, 100_000);
        assert!(core.is_warmed());
        // Only the 1000 measured instructions are counted, at a cycle
        // count consistent with width-4 execution of ops.
        assert_eq!(core.stats.instructions, 1000);
        assert!(core.stats.cycles < 600, "cycles {}", core.stats.cycles);
    }
}
