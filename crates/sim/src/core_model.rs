//! A simplified 4-wide out-of-order core model.
//!
//! The model captures the first-order behavior that determines how much a
//! data prefetcher helps (Fig. 8): a width-limited front end, a finite
//! reorder buffer whose head blocks retirement on outstanding long-latency
//! loads, a load/store queue bounding outstanding stores, and explicit
//! load→load dependencies that serialize pointer-chasing access chains.
//!
//! Instructions are supplied by an [`InstrSource`] — an infinite,
//! deterministic generator (see the `bingo-workloads` crate).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::addr::{Addr, BlockAddr, CoreId, Pc};
use crate::config::CoreConfig;
use crate::memory::{IssueResult, MemorySystem};
use crate::stats::CoreStats;

/// One dynamic instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// A non-memory instruction (1-cycle execute).
    Op,
    /// A load.
    Load {
        /// Program counter of the load.
        pc: Pc,
        /// Effective byte address.
        addr: Addr,
        /// Dependency chain. `Some(c)` means the load consumes the value
        /// of the most recent preceding load on chain `c` (pointer
        /// chasing / serialized object walks) and cannot issue until that
        /// load completes; it then becomes the new tail of chain `c`.
        /// `None` is a fully independent load.
        dep: Option<u8>,
    },
    /// A store (write-allocate; retires without waiting for memory).
    Store {
        /// Program counter of the store.
        pc: Pc,
        /// Effective byte address.
        addr: Addr,
    },
}

/// An infinite stream of dynamic instructions for one core.
pub trait InstrSource {
    /// Produces the next instruction. Sources never end; the simulator
    /// stops after a configured retired-instruction count.
    fn next_instr(&mut self) -> Instr;

    /// Trace-ingestion accounting, for sources that replay recorded
    /// traces: how many records were delivered and how much corrupt
    /// input was quarantined so far. Synthetic generators keep the
    /// default `None`; [`crate::System::try_run`] sums the `Some`
    /// reports into [`crate::SimResult::ingest`].
    fn ingest_report(&self) -> Option<crate::stats::IngestReport> {
        None
    }

    /// Consumes up to `max` consecutive leading [`Instr::Op`]s in one
    /// call, returning how many were taken. Must be equivalent to calling
    /// [`InstrSource::next_instr`] that many times and observing only
    /// ops; consumption stops early at the first non-op. The default
    /// (take nothing) keeps every existing source correct — callers fall
    /// back to `next_instr` when this returns 0.
    fn take_ops(&mut self, max: usize) -> usize {
        let _ = max;
        0
    }

    /// Number of consecutive ops at the head of the stream, without
    /// consuming them — the op-crank fast-forward's eligibility probe.
    /// May generate buffered instructions (hence `&mut`), but must not
    /// change the observable stream. The conservative default (0)
    /// disables cranking for sources that do not implement it.
    fn peek_ops(&mut self) -> usize {
        0
    }
}

impl<F: FnMut() -> Instr> InstrSource for F {
    fn next_instr(&mut self) -> Instr {
        self()
    }
}

/// The out-of-order core.
#[derive(Debug)]
pub struct OooCore {
    id: CoreId,
    cfg: CoreConfig,
    /// Completion cycles of in-flight instructions, in program order: a
    /// power-of-two ring buffer (head + length + mask), cheaper on the
    /// per-instruction push/pop pair than a `VecDeque`.
    rob: Box<[u64]>,
    rob_head: usize,
    rob_len: usize,
    rob_mask: usize,
    /// Instruction that failed to dispatch last cycle, retried first.
    stalled: Option<Instr>,
    /// Whether the current stall came from the LSQ-occupancy check rather
    /// than the memory system (only meaningful while `stalled` is a store).
    lsq_stall: bool,
    /// Completion cycles of outstanding stores (LSQ occupancy).
    store_queue: BinaryHeap<Reverse<u64>>,
    /// Completion cycle of the tail load of each dependency chain.
    chain_done: Box<[u64; 256]>,
    target: u64,
    warmup: u64,
    /// The retired-instruction count at which something happens next: the
    /// warmup boundary while warming, the retirement target after. Keeps
    /// the retire loop to a single comparison per instruction.
    boundary: u64,
    warmed: bool,
    cycle_offset: u64,
    done: bool,
    /// Statistics for this core (measurement window only).
    pub stats: CoreStats,
}

impl OooCore {
    /// Creates a core that will retire `target` instructions.
    pub fn new(id: CoreId, cfg: CoreConfig, target: u64) -> Self {
        OooCore {
            id,
            cfg,
            rob: vec![0; cfg.rob_entries.next_power_of_two()].into_boxed_slice(),
            rob_head: 0,
            rob_len: 0,
            rob_mask: cfg.rob_entries.next_power_of_two() - 1,
            stalled: None,
            lsq_stall: false,
            store_queue: BinaryHeap::new(),
            chain_done: Box::new([0; 256]),
            target,
            warmup: 0,
            boundary: target,
            warmed: true,
            cycle_offset: 0,
            done: false,
            stats: CoreStats::default(),
        }
    }

    /// Adds a warmup window: the core retires `warmup` instructions (with
    /// all structures live) before its statistics start counting, modeling
    /// SimFlex-style warmed checkpoints.
    pub fn set_warmup(&mut self, warmup: u64) {
        self.warmup = warmup;
        self.warmed = warmup == 0;
        self.boundary = if self.warmed { self.target } else { warmup };
    }

    #[inline(always)]
    fn rob_push(&mut self, done_at: u64) {
        self.rob[(self.rob_head + self.rob_len) & self.rob_mask] = done_at;
        self.rob_len += 1;
    }

    /// Whether the core has passed its warmup window.
    pub fn is_warmed(&self) -> bool {
        self.warmed
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Whether the core has retired its instruction target.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Simulates one cycle: retire, then dispatch. Returns `true` once the
    /// instruction target has been reached (the core then idles).
    pub fn step(&mut self, now: u64, mem: &mut MemorySystem, src: &mut dyn InstrSource) -> bool {
        if self.done {
            return true;
        }
        self.stats.cycles = (now + 1).saturating_sub(self.cycle_offset);

        // Retire in order.
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            if self.rob_len == 0 || self.rob[self.rob_head] > now {
                break;
            }
            self.rob_head = (self.rob_head + 1) & self.rob_mask;
            self.rob_len -= 1;
            self.stats.instructions += 1;
            retired += 1;
            if self.stats.instructions >= self.boundary {
                if !self.warmed {
                    self.warmed = true;
                    self.cycle_offset = now;
                    self.stats = CoreStats {
                        cycles: 1,
                        ..CoreStats::default()
                    };
                    self.boundary = self.target;
                } else {
                    self.done = true;
                    return true;
                }
            }
        }

        // Dispatch in order.
        let mut dispatched = 0;
        while dispatched < self.cfg.width && self.rob_len < self.cfg.rob_entries {
            // Batch path: a leading run of ops dispatches without the
            // per-instruction source round-trip. Ops never stall, so this
            // is exactly `n` iterations of the general path below.
            if self.stalled.is_none() {
                let room = (self.cfg.width - dispatched).min(self.cfg.rob_entries - self.rob_len);
                let n = src.take_ops(room);
                if n > 0 {
                    for _ in 0..n {
                        self.rob_push(now + 1);
                    }
                    dispatched += n;
                    continue;
                }
            }
            let instr = match self.stalled.take() {
                Some(i) => i,
                None => src.next_instr(),
            };
            match instr {
                Instr::Op => {
                    self.rob_push(now + 1);
                }
                Instr::Load { pc, addr, dep } => {
                    // A load whose producer (chain tail) has not completed
                    // does not block dispatch — like a real OoO core it
                    // waits in the window and issues the moment its operand
                    // arrives. Independent work behind it keeps flowing;
                    // back-pressure comes from the finite ROB.
                    let issue_at = match dep {
                        Some(chain) => {
                            let ready = self.chain_done[chain as usize];
                            if ready > now {
                                self.stats.dependency_stall_cycles += ready - now;
                            }
                            ready.max(now)
                        }
                        None => now,
                    };
                    match mem.load(self.id, pc, addr, issue_at) {
                        IssueResult::Done(t) => {
                            self.rob_push(t);
                            if let Some(chain) = dep {
                                self.chain_done[chain as usize] = t;
                            }
                            self.stats.loads += 1;
                        }
                        IssueResult::Stall => {
                            self.stats.dispatch_stall_cycles += 1;
                            self.stalled = Some(instr);
                            self.lsq_stall = false;
                            break;
                        }
                    }
                }
                Instr::Store { pc, addr } => {
                    while matches!(self.store_queue.peek(), Some(&Reverse(t)) if t <= now) {
                        self.store_queue.pop();
                    }
                    if self.store_queue.len() >= self.cfg.lsq_entries {
                        self.stats.dispatch_stall_cycles += 1;
                        self.stalled = Some(instr);
                        self.lsq_stall = true;
                        break;
                    }
                    match mem.store(self.id, pc, addr, now) {
                        IssueResult::Done(t) => {
                            self.store_queue.push(Reverse(t));
                            self.rob_push(now + 1);
                            self.stats.stores += 1;
                        }
                        IssueResult::Stall => {
                            self.stats.dispatch_stall_cycles += 1;
                            self.stalled = Some(instr);
                            self.lsq_stall = false;
                            break;
                        }
                    }
                }
            }
            dispatched += 1;
        }
        false
    }

    /// If the core is provably idle after cycle `now` — finished, blocked
    /// on a full ROB, or re-stalling on the same structural hazard every
    /// cycle — describes how long and what each idle cycle does, so the
    /// system can fast-forward. `None` means the core may do new work next
    /// cycle and every cycle must be stepped.
    pub(crate) fn quiescent_plan(&self, now: u64) -> Option<CorePlan> {
        if self.done {
            return Some(CorePlan {
                wake: u64::MAX,
                retry: None,
            });
        }
        match self.stalled {
            // A memory-stalled core keeps retiring, but retirement is pure
            // bookkeeping the window can replay (`apply_retirements`) — it
            // cannot clear the stall. Only a warmup/target boundary inside
            // the drained entries forces normal stepping, so the wake is
            // the boundary-crossing cycle, not the next retirement.
            Some(Instr::Load { addr, dep, .. }) => Some(CorePlan {
                wake: self.retire_horizon(now + 1),
                retry: Some(RetrySpec {
                    block: addr.block(),
                    dep_ready: dep.map_or(0, |c| self.chain_done[c as usize]),
                    mem: true,
                }),
            }),
            Some(Instr::Store { addr, .. }) => {
                let horizon = self.retire_horizon(now + 1);
                let (wake, mem) = if self.lsq_stall {
                    // The stall clears the cycle the oldest outstanding
                    // store completes and frees its LSQ slot.
                    let sq_wake = self.store_queue.peek().map_or(u64::MAX, |&Reverse(t)| t);
                    (horizon.min(sq_wake), false)
                } else {
                    (horizon, true)
                };
                Some(CorePlan {
                    wake,
                    retry: Some(RetrySpec {
                        block: addr.block(),
                        dep_ready: 0,
                        mem,
                    }),
                })
            }
            // Ops never stall; treat defensively as active.
            Some(Instr::Op) => None,
            // ROB-full without a stall: the head's retirement reopens
            // dispatch, so that cycle must be stepped.
            None if self.rob_len == self.cfg.rob_entries => Some(CorePlan {
                wake: self.rob[self.rob_head],
                retry: None,
            }),
            None => None,
        }
    }

    /// Cycle at which draining the ROB from cycle `next` would cross the
    /// warmup/target boundary (`u64::MAX` when the buffered entries cannot
    /// reach it — the common case, decided without touching the ROB).
    /// Entries retire in order, at most `retire_width` per cycle, each no
    /// earlier than its completion cycle.
    fn retire_horizon(&self, next: u64) -> u64 {
        let needed = self.boundary.saturating_sub(self.stats.instructions);
        if (self.rob_len as u64) < needed {
            return u64::MAX;
        }
        let mut cycle = next;
        let mut used = 0;
        for j in 0..self.rob_len {
            if used == self.cfg.retire_width {
                cycle += 1;
                used = 0;
            }
            let ready = self.rob[(self.rob_head + j) & self.rob_mask];
            if ready > cycle {
                cycle = ready;
                used = 0;
            }
            used += 1;
            if (j as u64) + 1 == needed {
                return cycle;
            }
        }
        u64::MAX
    }

    /// Replays the retirements a stalled core performs over the skipped
    /// window `[next, wake)`, with the same pacing as [`retire_horizon`].
    /// The caller capped `wake` at the horizon, so no warmup/target
    /// boundary is crossed here.
    ///
    /// [`retire_horizon`]: Self::retire_horizon
    pub(crate) fn apply_retirements(&mut self, next: u64, wake: u64) {
        let mut cycle = next;
        let mut used = 0;
        while self.rob_len > 0 {
            if used == self.cfg.retire_width {
                cycle += 1;
                used = 0;
            }
            let ready = self.rob[self.rob_head];
            if ready > cycle {
                cycle = ready;
                used = 0;
            }
            if cycle >= wake {
                break;
            }
            self.rob_head = (self.rob_head + 1) & self.rob_mask;
            self.rob_len -= 1;
            self.stats.instructions += 1;
            used += 1;
        }
        debug_assert!(
            self.stats.instructions < self.boundary,
            "window retirement crossed a boundary the horizon should have capped"
        );
    }

    /// How many consecutive cycles starting next cycle this core could be
    /// "op-cranked" — stepped by the tight retire/dispatch replay of
    /// [`apply_op_crank`] instead of the full cycle machinery. Valid only
    /// for an unstalled, unfinished core. `ops_avail` is the length of
    /// the op run heading its instruction stream; the cap guarantees the
    /// crank (a) never needs a non-op instruction (dispatch consumes at
    /// most `width` ops per cycle) and (b) never crosses the
    /// warmup/target boundary (retirement adds at most `retire_width`
    /// instructions per cycle).
    ///
    /// [`apply_op_crank`]: Self::apply_op_crank
    pub(crate) fn op_crank_cycles(&self, ops_avail: usize) -> u64 {
        debug_assert!(self.stalled.is_none() && !self.done);
        let k_ops = (ops_avail / self.cfg.width) as u64;
        let needed = self.boundary - self.stats.instructions;
        let k_boundary = (needed - 1) / self.cfg.retire_width as u64;
        k_ops.min(k_boundary)
    }

    /// Replays cycles `[next, wake)` for a core whose stream head is a run
    /// of ops: in-order retirement (at most `retire_width` per cycle, each
    /// entry no earlier than its completion cycle) and op dispatch (at
    /// most `width` per cycle, bounded by ROB space, completing next
    /// cycle) — exactly what [`step`] would do, minus the per-cycle
    /// source/memory round-trips. Returns how many ops were dispatched;
    /// the caller must consume that many from the source. The caller
    /// capped `wake` via [`op_crank_cycles`], so the ops are available and
    /// no warmup/target boundary is crossed.
    ///
    /// [`step`]: Self::step
    /// [`op_crank_cycles`]: Self::op_crank_cycles
    pub(crate) fn apply_op_crank(&mut self, next: u64, wake: u64) -> usize {
        let mut consumed = 0;
        for cycle in next..wake {
            let mut retired = 0;
            while retired < self.cfg.retire_width
                && self.rob_len > 0
                && self.rob[self.rob_head] <= cycle
            {
                self.rob_head = (self.rob_head + 1) & self.rob_mask;
                self.rob_len -= 1;
                self.stats.instructions += 1;
                retired += 1;
            }
            let room = self.cfg.width.min(self.cfg.rob_entries - self.rob_len);
            for _ in 0..room {
                self.rob_push(cycle + 1);
            }
            consumed += room;
        }
        debug_assert!(
            self.stats.instructions < self.boundary,
            "op crank crossed a boundary op_crank_cycles should have capped"
        );
        consumed
    }

    /// Replays the core-side effects of `k` skipped stall cycles starting
    /// at cycle `a`: each was one dispatch stall, and a dependent stalled
    /// load re-accumulates its remaining operand wait every retry.
    pub(crate) fn apply_stall_cycles(&mut self, a: u64, k: u64) {
        self.stats.dispatch_stall_cycles += k;
        if let Some(Instr::Load {
            dep: Some(chain), ..
        }) = self.stalled
        {
            let ready = self.chain_done[chain as usize];
            if ready > a {
                // Retry at cycle t adds `ready - t` while t < ready:
                // a triangular sum over the first `m` skipped cycles.
                let m = k.min(ready - a);
                self.stats.dependency_stall_cycles += m * (ready - a) - m * (m - 1) / 2;
            }
        }
    }
}

/// One cycle's worth of deterministic retry effects for a stalled core
/// (see [`OooCore::quiescent_plan`]).
#[derive(Copy, Clone, Debug)]
pub(crate) struct RetrySpec {
    /// The block the stalled access targets.
    pub block: BlockAddr,
    /// Completion cycle of the load's dependency chain tail (0 when
    /// independent): retries access memory at `max(cycle, dep_ready)`.
    pub dep_ready: u64,
    /// Whether each retry reaches the memory system (an MSHR stall) or
    /// dies at the LSQ-occupancy check (store-queue back-pressure).
    pub mem: bool,
}

/// A quiescent core's schedule: when it next does something new, and what
/// each skipped cycle would have done in the meantime.
#[derive(Copy, Clone, Debug)]
pub(crate) struct CorePlan {
    /// Earliest future cycle at which this core's state can change
    /// (`u64::MAX` when only a memory-system event can wake it).
    pub wake: u64,
    /// Per-cycle retry to replay across the skipped window, if stalled.
    pub retry: Option<RetrySpec>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::prefetch::NoPrefetcher;

    fn mem() -> MemorySystem {
        MemorySystem::new(SystemConfig::tiny(), vec![Box::new(NoPrefetcher)])
    }

    fn run(core: &mut OooCore, mem: &mut MemorySystem, src: &mut dyn InstrSource, max: u64) -> u64 {
        for now in 0..max {
            mem.tick(now);
            if core.step(now, mem, src) {
                return now;
            }
        }
        panic!("core did not finish within {max} cycles");
    }

    #[test]
    fn pure_ops_reach_full_width_ipc() {
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 4000);
        let mut src = || Instr::Op;
        run(&mut core, &mut m, &mut src, 100_000);
        let ipc = core.stats.ipc();
        assert!(ipc > 3.5, "op-only IPC {ipc} should approach width 4");
    }

    #[test]
    fn l1_hit_loads_barely_slow_the_core() {
        let mut m = mem();
        // Warm one block, then loop loads to it.
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 4000);
        let mut i = 0u64;
        let mut src = move || {
            i += 1;
            if i.is_multiple_of(4) {
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new(0x100),
                    dep: None,
                }
            } else {
                Instr::Op
            }
        };
        run(&mut core, &mut m, &mut src, 100_000);
        let ipc = core.stats.ipc();
        assert!(ipc > 2.0, "L1-resident IPC {ipc} should stay high");
    }

    #[test]
    fn dependent_chase_is_memory_latency_bound() {
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 512);
        // Every instruction is a dependent load to a new block: a pointer
        // chase with ~260-cycle misses, so IPC must be tiny.
        let mut next = 0u64;
        let mut src = move || {
            next += 1;
            Instr::Load {
                pc: Pc::new(0x400),
                addr: Addr::new(next * 64 * 512), // unique L1/LLC sets, all misses
                dep: Some(0),
            }
        };
        run(&mut core, &mut m, &mut src, 10_000_000);
        let ipc = core.stats.ipc();
        assert!(ipc < 0.02, "chase IPC {ipc} should be latency bound");
        assert!(core.stats.dependency_stall_cycles > 0);
    }

    #[test]
    fn independent_misses_overlap() {
        // Same miss stream but independent loads: MLP makes it much faster.
        let mk_src = |dep: Option<u8>| {
            let mut next = 0u64;
            move || {
                next += 1;
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new((next * 64 + next / 64) * 64 * 512),
                    dep,
                }
            }
        };
        let mut m1 = mem();
        let mut c1 = OooCore::new(CoreId(0), SystemConfig::tiny().core, 512);
        let mut s1 = mk_src(Some(7));
        let t_dep = run(&mut c1, &mut m1, &mut s1, 10_000_000);

        let mut m2 = mem();
        let mut c2 = OooCore::new(CoreId(0), SystemConfig::tiny().core, 512);
        let mut s2 = mk_src(None);
        let t_indep = run(&mut c2, &mut m2, &mut s2, 10_000_000);

        assert!(
            t_indep * 3 < t_dep,
            "independent misses ({t_indep} cyc) should overlap far better than dependent ({t_dep} cyc)"
        );
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 1000);
        let mut next = 0u64;
        let mut src = move || {
            next += 1;
            if next.is_multiple_of(8) {
                Instr::Store {
                    pc: Pc::new(0x500),
                    addr: Addr::new(next * 64 * 512),
                }
            } else {
                Instr::Op
            }
        };
        run(&mut core, &mut m, &mut src, 1_000_000);
        // Store misses are ~260 cycles; with 8 L1 MSHRs the sustainable rate
        // is ~8 stores / 260 cycles, i.e. ~0.25 IPC at 1 store per 8
        // instructions. A policy where stores blocked the ROB head would
        // serialize to one store per ~260 cycles (~0.03 IPC).
        let ipc = core.stats.ipc();
        assert!(
            ipc > 0.15,
            "store-heavy IPC {ipc} should not fully serialize"
        );
        assert_eq!(core.stats.stores, 1000 / 8);
    }

    #[test]
    fn rob_limits_outstanding_work() {
        // A core with a tiny ROB on an all-miss load stream can have at most
        // rob_entries loads in flight.
        let mut cfg = SystemConfig::tiny();
        cfg.core.rob_entries = 4;
        let mut m = MemorySystem::new(cfg, vec![Box::new(NoPrefetcher)]);
        let mut core = OooCore::new(CoreId(0), cfg.core, 64);
        let mut next = 0u64;
        let mut src = move || {
            next += 1;
            Instr::Load {
                pc: Pc::new(0x400),
                addr: Addr::new(next * 64 * 512),
                dep: None,
            }
        };
        run(&mut core, &mut m, &mut src, 10_000_000);
        // With ROB=4 and ~260-cycle misses, 64 loads need >= 16 miss rounds.
        assert!(core.stats.cycles > 16 * 200);
    }

    #[test]
    fn closure_sources_satisfy_the_trait() {
        fn takes_source(_s: &mut dyn InstrSource) {}
        let mut s = || Instr::Op;
        takes_source(&mut s);
    }

    #[test]
    fn dependent_load_does_not_block_independent_work() {
        // One serialized chase chain interleaved with pure ops: the ops
        // must flow at full width while the chain crawls — the OoO
        // operand-ready scheduling property.
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 20_000);
        let mut n = 0u64;
        let mut src = move || {
            n += 1;
            if n.is_multiple_of(100) {
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new((n / 100) * 64 * 512),
                    dep: Some(3),
                }
            } else {
                Instr::Op
            }
        };
        run(&mut core, &mut m, &mut src, 10_000_000);
        // 200 chained ~260-cycle misses would serialize to ~52K cycles,
        // but 99% of instructions are ops; with operand-ready issue the
        // run finishes near op-throughput (20K/4 = 5K cycles ... bounded
        // by the last chain link), far below full serialization.
        let ipc = core.stats.ipc();
        assert!(
            ipc > 0.35,
            "independent ops must overlap the chain (IPC {ipc})"
        );
    }

    #[test]
    fn distinct_chains_progress_independently() {
        // Two chains over disjoint blocks: each serializes internally, but
        // they overlap each other, halving the run time versus one chain.
        let run_chains = |nchains: u64| {
            let mut m = mem();
            let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 256);
            let mut n = 0u64;
            let mut src = move || {
                n += 1;
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new((n * 997) % (1 << 18) * 64 * 8),
                    dep: Some((n % nchains) as u8),
                }
            };
            run(&mut core, &mut m, &mut src, 10_000_000)
        };
        let one = run_chains(1);
        let four = run_chains(4);
        assert!(
            four * 2 < one,
            "4 chains ({four} cyc) must overlap far better than 1 ({one} cyc)"
        );
    }

    #[test]
    fn warmup_resets_core_statistics() {
        let mut m = mem();
        let mut core = OooCore::new(CoreId(0), SystemConfig::tiny().core, 1000);
        core.set_warmup(500);
        assert!(!core.is_warmed());
        let mut src = || Instr::Op;
        run(&mut core, &mut m, &mut src, 100_000);
        assert!(core.is_warmed());
        // Only the 1000 measured instructions are counted, at a cycle
        // count consistent with width-4 execution of ops.
        assert_eq!(core.stats.instructions, 1000);
        assert!(core.stats.cycles < 600, "cycles {}", core.stats.cycles);
    }
}
