//! Top-level simulated system: cores + memory hierarchy + run loop.
//!
//! [`System`] owns the cores, their instruction sources, and the shared
//! [`MemorySystem`]; [`System::run`] steps everything cycle by cycle until
//! every core retires its instruction budget, then returns a [`SimResult`].

use std::time::{Duration, Instant};

use crate::addr::CoreId;
use crate::chaos::ChaosInjector;
use crate::config::SystemConfig;
use crate::core_model::{InstrSource, OooCore};
use crate::memory::{MemorySystem, StallLevel};
use crate::prefetch::Prefetcher;
use crate::stats::SimResult;
use crate::telemetry::TelemetryLevel;
use crate::throttle::ThrottleMode;

/// Why a simulation stopped before reaching its instruction targets.
///
/// Returned by [`System::try_run`]; [`System::run`] converts these into
/// panics for callers that treat an abort as fatal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimAbort {
    /// The wall-clock budget set by [`System::with_time_limit`] ran out.
    ///
    /// The deadline is *soft*: it is polled once per cycle batch (every
    /// 8192 cycles), so a run may overshoot the limit by one batch of
    /// simulation work before aborting.
    DeadlineExceeded {
        /// The configured wall-clock limit.
        limit: Duration,
    },
    /// The simulation exceeded the livelock cycle bound without every core
    /// reaching its retirement target.
    CycleLimit {
        /// The cycle bound that was hit.
        limit: u64,
    },
}

impl std::fmt::Display for SimAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimAbort::DeadlineExceeded { limit } => {
                write!(f, "simulation exceeded its {limit:?} wall-clock deadline")
            }
            SimAbort::CycleLimit { limit } => {
                write!(f, "simulation livelock suspected (cycle {limit} reached)")
            }
        }
    }
}

impl std::error::Error for SimAbort {}

/// A complete simulated chip.
pub struct System {
    cores: Vec<OooCore>,
    sources: Vec<Box<dyn InstrSource>>,
    mem: MemorySystem,
    now: u64,
    mem_stats_reset: bool,
    measure_start: u64,
    deadline: Option<Duration>,
    fast_forward: bool,
    chaos: Option<ChaosInjector>,
}

impl System {
    /// Builds a system.
    ///
    /// `sources` and `prefetchers` must each have exactly one element per
    /// configured core; `instructions_per_core` is each core's retirement
    /// target.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the vector lengths do not
    /// match `cfg.cores`.
    pub fn new(
        cfg: SystemConfig,
        sources: Vec<Box<dyn InstrSource>>,
        prefetchers: Vec<Box<dyn Prefetcher>>,
        instructions_per_core: u64,
    ) -> Self {
        let targets = vec![instructions_per_core; cfg.cores];
        Self::new_heterogeneous(cfg, sources, prefetchers, &targets)
    }

    /// Builds a system with a *per-core* retirement target — the substrate
    /// for heterogeneous workload mixes, where cores carry different
    /// programs with different instruction budgets but still contend for
    /// the one shared LLC, MSHR pool, and DRAM channels.
    ///
    /// With every target equal this is exactly [`System::new`] (which
    /// delegates here), so the homogeneous path cannot drift from the
    /// heterogeneous one.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or any vector length does
    /// not match `cfg.cores`.
    pub fn new_heterogeneous(
        cfg: SystemConfig,
        sources: Vec<Box<dyn InstrSource>>,
        prefetchers: Vec<Box<dyn Prefetcher>>,
        instructions_per_core: &[u64],
    ) -> Self {
        assert_eq!(sources.len(), cfg.cores, "one instruction source per core");
        assert_eq!(
            instructions_per_core.len(),
            cfg.cores,
            "one instruction target per core"
        );
        let cores = instructions_per_core
            .iter()
            .enumerate()
            .map(|(i, &target)| OooCore::new(CoreId(i), cfg.core, target))
            .collect();
        System {
            cores,
            sources,
            mem: MemorySystem::new(cfg, prefetchers),
            now: 0,
            mem_stats_reset: true,
            measure_start: 0,
            deadline: None,
            fast_forward: true,
            chaos: None,
        }
    }

    /// Enables or disables the quiescent fast-forward (on by default).
    ///
    /// Fast-forwarding is a pure run-loop optimization: cycles on which
    /// every core is provably idle are jumped over with their effects
    /// replayed in closed form, so results are bit-for-bit identical either
    /// way (asserted by the `fast_forward_is_bit_for_bit` tests). The
    /// toggle exists for those equivalence tests and for debugging.
    pub fn with_fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Sets a soft wall-clock deadline for [`System::try_run`].
    ///
    /// The clock starts when `try_run` is entered. The deadline is polled
    /// at batch granularity (every 8192 cycles) to keep `Instant::now`
    /// calls off the per-cycle hot path, so the run can overshoot `limit`
    /// by one batch of work before aborting with
    /// [`SimAbort::DeadlineExceeded`].
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Adds a warmup window of `instructions` per core: caches, predictor
    /// tables, and generators run live, but all statistics are reset when
    /// every core has retired its warmup budget — modeling the paper's
    /// SimFlex checkpoints with "warmed caches, branch predictors, and
    /// prediction tables".
    pub fn with_warmup(mut self, instructions: u64) -> Self {
        for core in &mut self.cores {
            core.set_warmup(instructions);
        }
        self.mem_stats_reset = instructions == 0;
        self
    }

    /// Enables prefetch-lifecycle telemetry at the given level; the
    /// resulting [`SimResult::telemetry`] carries the breakdown.
    ///
    /// Telemetry is purely observational: enabling it never changes the
    /// simulated machine (miss streams and cycle counts are identical
    /// either way — see the determinism tests in `tests/telemetry.rs`).
    pub fn with_telemetry(mut self, level: TelemetryLevel) -> Self {
        self.mem.set_telemetry(level);
        self
    }

    /// Enables adaptive prefetch throttling in the given mode.
    ///
    /// With [`ThrottleMode::Off`] this is a no-op — the memory system then
    /// carries no controller, so the run is bit-for-bit identical to one
    /// that never called this. Throttling is active during warmup too, so
    /// the controller's learned level (like predictor tables) is warm when
    /// measurement starts.
    pub fn with_throttle(mut self, mode: ThrottleMode) -> Self {
        self.mem.set_throttle(mode);
        self
    }

    /// Attaches a seeded [`ChaosInjector`] that perturbs the run live (see
    /// the [`chaos`](crate::chaos) module for the taxonomy).
    ///
    /// Chaos runs step every cycle — the quiescent fast-forward is
    /// disabled, because a jumped-over window would make the perturbation
    /// schedule depend on the optimizer instead of the plan. Deliberately
    /// *not* bit-for-bit comparable to a chaos-free run; determinism in
    /// the seed is what the chaos suite asserts.
    pub fn with_chaos(mut self, injector: ChaosInjector) -> Self {
        self.chaos = Some(injector);
        self.fast_forward = false;
        self
    }

    /// The chaos injector, if one is attached — its perturbation log grows
    /// as the run proceeds.
    pub fn chaos(&self) -> Option<&ChaosInjector> {
        self.chaos.as_ref()
    }

    /// Convenience constructor: every core gets a prefetcher from `make_pf`.
    pub fn with_prefetchers<F>(
        cfg: SystemConfig,
        sources: Vec<Box<dyn InstrSource>>,
        mut make_pf: F,
        instructions_per_core: u64,
    ) -> Self
    where
        F: FnMut(CoreId) -> Box<dyn Prefetcher>,
    {
        let prefetchers = (0..cfg.cores).map(|i| make_pf(CoreId(i))).collect();
        System::new(cfg, sources, prefetchers, instructions_per_core)
    }

    /// Access to the memory system (diagnostics, storage accounting).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Runs until every core reaches its instruction target and returns the
    /// collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds a very generous cycle bound
    /// (1e10 cycles), which would indicate a livelock in the model, or if
    /// a deadline set via [`System::with_time_limit`] expires. Callers that
    /// want to survive either condition should use [`System::try_run`].
    pub fn run(self) -> SimResult {
        match self.try_run() {
            Ok(result) => result,
            Err(SimAbort::CycleLimit { .. }) => panic!("simulation livelock suspected"),
            Err(abort @ SimAbort::DeadlineExceeded { .. }) => panic!("{abort}"),
        }
    }

    /// Runs like [`System::run`], but reports livelock or an expired
    /// wall-clock deadline as a [`SimAbort`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimAbort::DeadlineExceeded`] if a limit set via
    /// [`System::with_time_limit`] ran out; [`SimAbort::CycleLimit`] if the
    /// livelock cycle bound (1e10 cycles) was reached.
    pub fn try_run(mut self) -> Result<SimResult, SimAbort> {
        const CYCLE_LIMIT: u64 = 10_000_000_000;
        // Poll the wall clock only once per batch of loop iterations:
        // `Instant::now` is far too expensive to call on every simulated
        // cycle. Iterations rather than cycles, because the fast-forward
        // makes cycle numbers jump.
        const DEADLINE_POLL_MASK: u64 = 8192 - 1;
        let started = self.deadline.map(|_| Instant::now());
        let mut iterations = 0u64;
        loop {
            // Poll on entry (iteration 0) as well: the fast-forward can
            // finish a small run in fewer iterations than one poll batch,
            // and an already-expired deadline must still abort it.
            if iterations & DEADLINE_POLL_MASK == 0 {
                if let (Some(limit), Some(start)) = (self.deadline, started) {
                    if start.elapsed() >= limit {
                        return Err(SimAbort::DeadlineExceeded { limit });
                    }
                }
            }
            iterations += 1;
            self.mem.tick(self.now);
            let bubbled = match self.chaos.as_mut() {
                Some(injector) => injector.on_cycle(self.now, &mut self.mem, self.cores.len()),
                None => None,
            };
            let mut all_done = true;
            for i in 0..self.cores.len() {
                if !self.cores[i].is_done() {
                    if bubbled == Some(i) {
                        // Stall-bubble chaos: the core is frozen this cycle
                        // but still counts as unfinished, so the run waits
                        // out the (bounded) window.
                        all_done = false;
                        continue;
                    }
                    let done =
                        self.cores[i].step(self.now, &mut self.mem, self.sources[i].as_mut());
                    all_done &= done;
                }
            }
            if !self.mem_stats_reset && self.cores.iter().all(|c| c.is_warmed()) {
                self.mem.reset_stats();
                self.mem_stats_reset = true;
                self.measure_start = self.now;
            }
            if all_done {
                break;
            }
            self.now = if self.fast_forward {
                self.advance_quiescent()
            } else {
                self.now + 1
            };
            if self.now >= CYCLE_LIMIT {
                return Err(SimAbort::CycleLimit { limit: CYCLE_LIMIT });
            }
        }
        let total_cycles = self.now - self.measure_start;
        self.mem.drain();
        // Sum trace-ingestion accounting over the sources that report it;
        // stays `None` for all-synthetic runs so historical checkpoint
        // lines (no `ingest` field) remain byte-identical.
        let mut ingest: Option<crate::stats::IngestReport> = None;
        for source in &self.sources {
            if let Some(report) = source.ingest_report() {
                ingest.get_or_insert_with(Default::default).absorb(&report);
            }
        }
        Ok(SimResult {
            cores: self.cores.iter().map(|c| c.stats.clone()).collect(),
            l1d: self.mem.l1d_stats_sum(),
            llc: self.mem.llc_stats().clone(),
            dram_transfers: self.mem.dram_transfers(),
            total_cycles,
            prefetcher_debug: self.mem.prefetcher_debug(),
            prefetcher_metrics: self.mem.prefetcher_metrics(),
            telemetry: self.mem.telemetry_report(),
            ingest,
            qos: self.mem.qos_report(),
        })
    }
}

impl System {
    /// Computes the next cycle to simulate after `self.now`, jumping over
    /// cycles on which the machine is provably quiescent.
    ///
    /// The machine is quiescent when every core is finished, blocked on a
    /// full ROB, or re-stalling on the same structural hazard — then
    /// nothing can change before the earliest of: the next fill landing,
    /// the next in-order retirement, or the next LSQ slot freeing. The
    /// skipped cycles are not free, though: a stalled core retries its
    /// access every cycle, with observable side effects (access counters,
    /// recency stamps, bank-port reservations, dependency-wait
    /// accounting). Those retries deterministically fail inside the
    /// window, so their effects are replayed in closed form — keeping
    /// results bit-for-bit identical to stepping every cycle.
    fn advance_quiescent(&mut self) -> u64 {
        let next = self.now + 1;
        let mut wake = self.mem.next_fill_ready().unwrap_or(u64::MAX);
        let mut llc_stalls = 0usize;
        for i in 0..self.cores.len() {
            match self.usable_plan(i, next) {
                Some(plan) => {
                    wake = wake.min(plan.wake);
                    if let Some(retry) = &plan.retry {
                        if retry.mem && self.mem.stall_level(i) == StallLevel::Llc {
                            llc_stalls += 1;
                        }
                    }
                }
                None => {
                    // An active core can still be skipped over — "op
                    // cranked" — while its stream head is a run of ops:
                    // those cycles touch nothing but its own ROB.
                    let ops = self.sources[i].peek_ops();
                    let k = self.cores[i].op_crank_cycles(ops);
                    if k == 0 {
                        return next; // real work next cycle: step it
                    }
                    wake = wake.min(next + k);
                }
            }
        }
        // Several cores stalled on LLC MSHRs interleave at the shared LLC
        // banks every cycle; replaying that interleaving in closed form is
        // not worth the complexity, so step those (rare) windows normally.
        if llc_stalls > 1 || wake <= next || wake == u64::MAX {
            return next;
        }
        let skipped = wake - next;
        for i in 0..self.cores.len() {
            match self.usable_plan(i, next) {
                Some(plan) => {
                    if let Some(retry) = plan.retry {
                        self.cores[i].apply_retirements(next, wake);
                        self.cores[i].apply_stall_cycles(next, skipped);
                        if retry.mem {
                            let first = next.max(retry.dep_ready);
                            self.mem
                                .apply_stalled_retries(i, retry.block, first, skipped);
                        }
                    }
                }
                None => {
                    let consumed = self.cores[i].apply_op_crank(next, wake);
                    let taken = self.sources[i].take_ops(consumed);
                    debug_assert_eq!(taken, consumed, "op run shorter than peeked");
                }
            }
        }
        wake
    }

    /// The core's quiescent plan, if it describes a real skippable window.
    /// A ROB-full core whose head retires immediately (`wake <= next`,
    /// no retry to replay) is treated as active instead — it is exactly
    /// the throughput-bound regime the op crank handles.
    fn usable_plan(&self, i: usize, next: u64) -> Option<crate::core_model::CorePlan> {
        self.cores[i]
            .quiescent_plan(self.now)
            .filter(|p| p.retry.is_some() || p.wake > next)
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("cycle", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, Pc};
    use crate::core_model::Instr;
    use crate::prefetch::{NextLinePrefetcher, NoPrefetcher};

    fn streaming_source(core: usize) -> Box<dyn InstrSource> {
        let mut next = 0u64;
        let base = (core as u64) << 40;
        Box::new(move || {
            next += 1;
            if next.is_multiple_of(4) {
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new(base + (next / 4) * 64),
                    dep: None,
                }
            } else {
                Instr::Op
            }
        })
    }

    #[test]
    fn single_core_run_produces_stats() {
        let cfg = SystemConfig::tiny();
        let sys = System::new(
            cfg,
            vec![streaming_source(0)],
            vec![Box::new(NoPrefetcher)],
            20_000,
        );
        let r = sys.run();
        assert_eq!(r.cores.len(), 1);
        assert_eq!(r.cores[0].instructions, 20_000);
        assert!(r.total_cycles > 0);
        assert!(r.llc.demand_misses > 0, "streaming must miss");
        assert!(r.llc_mpki() > 0.0);
    }

    #[test]
    fn next_line_prefetcher_improves_streaming_ipc() {
        let cfg = SystemConfig::tiny();
        let base = System::new(
            cfg,
            vec![streaming_source(0)],
            vec![Box::new(NoPrefetcher)],
            40_000,
        )
        .run();
        let pf = System::new(
            cfg,
            vec![streaming_source(0)],
            vec![Box::new(NextLinePrefetcher::new(4))],
            40_000,
        )
        .run();
        assert!(
            pf.speedup_over(&base) > 1.2,
            "next-line on a pure stream should speed up ({} vs {})",
            pf.aggregate_ipc(),
            base.aggregate_ipc()
        );
        assert!(pf.llc.demand_misses < base.llc.demand_misses);
    }

    #[test]
    fn multi_core_runs_to_completion_deterministically() {
        let cfg = {
            let mut c = SystemConfig::tiny();
            c.cores = 2;
            c
        };
        let run = || {
            System::new(
                cfg,
                vec![streaming_source(0), streaming_source(1)],
                vec![Box::new(NoPrefetcher), Box::new(NoPrefetcher)],
                10_000,
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.total_cycles, b.total_cycles,
            "simulation must be deterministic"
        );
        assert_eq!(a.llc.demand_misses, b.llc.demand_misses);
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
        assert_eq!(a.cores[1].instructions, 10_000);
    }

    #[test]
    #[should_panic(expected = "one instruction source per core")]
    fn source_count_must_match() {
        let cfg = SystemConfig::tiny();
        let _ = System::new(cfg, vec![], vec![Box::new(NoPrefetcher)], 100);
    }

    /// Per-core retirement targets: each core stops at its own budget, and
    /// uniform targets are bit-for-bit the [`System::new`] path.
    #[test]
    fn heterogeneous_targets_honor_each_core() {
        let cfg = SystemConfig::tiny().with_cores(2);
        let r = System::new_heterogeneous(
            cfg,
            vec![streaming_source(0), streaming_source(1)],
            vec![Box::new(NoPrefetcher), Box::new(NoPrefetcher)],
            &[12_000, 3_000],
        )
        .run();
        assert_eq!(r.cores[0].instructions, 12_000);
        assert_eq!(r.cores[1].instructions, 3_000);
        assert!(
            r.cores[1].cycles < r.cores[0].cycles,
            "the smaller budget must finish first"
        );

        let uniform = System::new_heterogeneous(
            cfg,
            vec![streaming_source(0), streaming_source(1)],
            vec![Box::new(NoPrefetcher), Box::new(NoPrefetcher)],
            &[8_000, 8_000],
        )
        .run();
        let classic = System::new(
            cfg,
            vec![streaming_source(0), streaming_source(1)],
            vec![Box::new(NoPrefetcher), Box::new(NoPrefetcher)],
            8_000,
        )
        .run();
        assert_eq!(uniform, classic, "uniform targets must match System::new");
    }

    #[test]
    #[should_panic(expected = "one instruction target per core")]
    fn target_count_must_match() {
        let cfg = SystemConfig::tiny().with_cores(2);
        let _ = System::new_heterogeneous(
            cfg,
            vec![streaming_source(0), streaming_source(1)],
            vec![Box::new(NoPrefetcher), Box::new(NoPrefetcher)],
            &[100],
        );
    }

    /// A pointer-chase source: every 3rd instruction is a dependent load
    /// to a fresh block, exercising dependency-wait retries under MSHR
    /// pressure.
    fn chase_source(core: usize) -> Box<dyn InstrSource> {
        let mut next = 0u64;
        let base = (core as u64) << 40;
        Box::new(move || {
            next += 1;
            if next.is_multiple_of(3) {
                Instr::Load {
                    pc: Pc::new(0x440),
                    addr: Addr::new(base + (next / 3) * 64 * 512),
                    dep: Some((core % 4) as u8),
                }
            } else {
                Instr::Op
            }
        })
    }

    /// A store-heavy source that saturates the LSQ and the MSHRs.
    fn store_source(core: usize) -> Box<dyn InstrSource> {
        let mut next = 0u64;
        let base = (core as u64) << 40;
        Box::new(move || {
            next += 1;
            if next.is_multiple_of(2) {
                Instr::Store {
                    pc: Pc::new(0x500),
                    addr: Addr::new(base + (next / 2) * 64 * 512),
                }
            } else {
                Instr::Op
            }
        })
    }

    /// The quiescent fast-forward must be unobservable: identical
    /// `SimResult`s (every counter, every prefetcher debug string) with it
    /// on and off, across stall-heavy source shapes.
    #[test]
    fn fast_forward_is_bit_for_bit() {
        let cfg = {
            let mut c = SystemConfig::tiny();
            c.cores = 2;
            c
        };
        type SourceShape = fn(usize) -> Box<dyn InstrSource>;
        let shapes: &[SourceShape] = &[streaming_source, chase_source, store_source];
        for (si, make_src) in shapes.iter().enumerate() {
            let build = |ff: bool| {
                System::new(
                    cfg,
                    (0..2).map(make_src).collect(),
                    vec![Box::new(NextLinePrefetcher::new(4)), Box::new(NoPrefetcher)],
                    8_000,
                )
                .with_fast_forward(ff)
            };
            let fast = build(true).run();
            let slow = build(false).run();
            assert_eq!(fast, slow, "fast-forward diverged on source shape {si}");
        }
    }

    /// Same equivalence through a warmup window, where the measurement
    /// reset must land on the same cycle in both modes.
    #[test]
    fn fast_forward_is_bit_for_bit_with_warmup() {
        let cfg = SystemConfig::tiny();
        let build = |ff: bool| {
            System::new(
                cfg,
                vec![chase_source(0)],
                vec![Box::new(NextLinePrefetcher::new(2))],
                6_000,
            )
            .with_warmup(2_000)
            .with_fast_forward(ff)
        };
        let fast = build(true).run();
        let slow = build(false).run();
        assert_eq!(fast, slow);
        assert_eq!(fast.cores[0].instructions, 6_000);
    }

    #[test]
    fn zero_deadline_aborts_immediately() {
        let cfg = SystemConfig::tiny();
        let sys = System::new(
            cfg,
            vec![streaming_source(0)],
            vec![Box::new(NoPrefetcher)],
            1_000_000,
        )
        .with_time_limit(std::time::Duration::ZERO);
        match sys.try_run() {
            Err(SimAbort::DeadlineExceeded { limit }) => {
                assert_eq!(limit, std::time::Duration::ZERO);
            }
            other => panic!("expected deadline abort, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_matches_unlimited_run() {
        let cfg = SystemConfig::tiny();
        let build = || {
            System::new(
                cfg,
                vec![streaming_source(0)],
                vec![Box::new(NoPrefetcher)],
                20_000,
            )
        };
        let unlimited = build().run();
        let limited = build()
            .with_time_limit(std::time::Duration::from_secs(3600))
            .try_run()
            .expect("an hour is plenty for 20k instructions");
        assert_eq!(unlimited.total_cycles, limited.total_cycles);
        assert_eq!(unlimited.llc.demand_misses, limited.llc.demand_misses);
    }
}
