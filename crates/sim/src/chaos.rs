//! Seeded mid-run perturbations: the [`ChaosInjector`].
//!
//! The PR 2 [`FaultInjector`](crate::fault::FaultInjector) corrupts a
//! *trace before* it runs; the chaos layer perturbs a *live* simulation, to
//! harden the per-core QoS throttle against the transients it will face on
//! a shared chip:
//!
//! - **DRAM bandwidth collapse** — the per-transfer channel occupancy is
//!   multiplied up for a window, as if a co-runner (or thermal event)
//!   stole most of the bus, then restored.
//! - **Prefetch-queue squeeze** — the bounded prefetch queue shrinks to a
//!   few slots for a window, shedding prefetch admission without ever
//!   gating demand misses.
//! - **Core stall bubble** — one core is frozen for a window (pipeline
//!   flush, interrupt storm), testing that the watchdog does not confuse a
//!   stalled core with a starved one and that recovery is clean.
//! - **Workload phase flip** — realized in the instruction domain by
//!   [`PhaseFlipSource`], which alternates two instruction sources on a
//!   fixed cadence (e.g. a polite STRESS generator and a storm).
//!
//! Everything is deterministic in the plan's seed: the same
//! (plan, workload, machine) triple replays bit-for-bit, which is what
//! lets the chaos property tests assert exact bounds. Chaos runs disable
//! the quiescent fast-forward (see [`System::with_chaos`]) so a
//! perturbation window can never be leapt over.
//!
//! [`System::with_chaos`]: crate::System::with_chaos

use crate::core_model::{Instr, InstrSource};
use crate::memory::MemorySystem;

/// One family of live perturbation. See the module docs for the taxonomy;
/// phase flips live in [`PhaseFlipSource`] (instruction domain), not here.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ChaosKind {
    /// Multiply the DRAM per-transfer occupancy for the window.
    DramCollapse,
    /// Clamp the prefetch queue to a few slots for the window.
    QueueSqueeze,
    /// Freeze one core for the window.
    StallBubble,
}

impl ChaosKind {
    /// Every injector-driven kind, in a fixed order.
    pub const ALL: [ChaosKind; 3] = [
        ChaosKind::DramCollapse,
        ChaosKind::QueueSqueeze,
        ChaosKind::StallBubble,
    ];

    /// Stable label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            ChaosKind::DramCollapse => "dram-collapse",
            ChaosKind::QueueSqueeze => "queue-squeeze",
            ChaosKind::StallBubble => "stall-bubble",
        }
    }
}

/// A deterministic schedule of perturbations.
///
/// Onset `k` (0-based) fires at cycle `(k + 1) * period` and lasts
/// `window` cycles; which kind fires, and its magnitude/victim, come from
/// a seeded PRNG, so one u64 names the whole scenario.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// PRNG seed; scrambled before use so small seeds diverge.
    pub seed: u64,
    /// Cycles between onsets.
    pub period: u64,
    /// Cycles each perturbation lasts; must be shorter than `period` so
    /// the machine always gets a calm stretch to recover in.
    pub window: u64,
    /// The kinds this plan rotates through (drawn uniformly).
    pub kinds: Vec<ChaosKind>,
}

impl ChaosPlan {
    /// A plan covering every kind with a cadence suited to the scaled-down
    /// test machines: perturb every 20k cycles for 4k cycles.
    pub fn standard(seed: u64) -> Self {
        ChaosPlan {
            seed,
            period: 20_000,
            window: 4_000,
            kinds: ChaosKind::ALL.to_vec(),
        }
    }

    fn validate(&self) {
        assert!(self.period > 0, "chaos period must be nonzero");
        assert!(self.window > 0, "chaos window must be nonzero");
        assert!(
            self.window < self.period,
            "chaos window ({}) must be shorter than the period ({}) \
             so perturbations always end before the next begins",
            self.window,
            self.period
        );
        assert!(!self.kinds.is_empty(), "chaos plan needs at least one kind");
    }
}

/// One perturbation the injector applied, for logs and reports.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AppliedPerturbation {
    /// What was perturbed.
    pub kind: ChaosKind,
    /// Onset cycle.
    pub at: u64,
    /// First cycle after the perturbation (restore point).
    pub until: u64,
    /// The stalled core for [`ChaosKind::StallBubble`]; the collapse
    /// multiplier for [`ChaosKind::DramCollapse`]; the squeezed depth for
    /// [`ChaosKind::QueueSqueeze`].
    pub magnitude: u64,
}

#[derive(Copy, Clone, Debug)]
struct ActiveWindow {
    kind: ChaosKind,
    until: u64,
    /// Victim core (stall bubble only).
    core: usize,
    saved_transfer: u64,
    saved_depth: Option<usize>,
}

/// Applies a [`ChaosPlan`] to a live run. Owned by the
/// [`System`](crate::System); the run loop calls [`ChaosInjector::on_cycle`]
/// once per cycle.
#[derive(Debug)]
pub struct ChaosInjector {
    plan: ChaosPlan,
    rng: u64,
    next_onset: u64,
    active: Option<ActiveWindow>,
    log: Vec<AppliedPerturbation>,
}

impl ChaosInjector {
    /// Builds an injector for `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan is degenerate (zero period/window, window not
    /// shorter than the period, or no kinds).
    pub fn new(plan: ChaosPlan) -> Self {
        plan.validate();
        // SplitMix64 scramble, as in `FaultInjector`: adjacent seeds must
        // not produce correlated streams.
        let mut z = plan.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let rng = (z ^ (z >> 31)) | 1;
        ChaosInjector {
            next_onset: plan.period,
            plan,
            rng,
            active: None,
            log: Vec::new(),
        }
    }

    /// xorshift64* step.
    fn draw(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Every perturbation applied so far, in onset order.
    pub fn log(&self) -> &[AppliedPerturbation] {
        &self.log
    }

    /// Whether a perturbation window is open at `now`.
    pub fn active(&self) -> bool {
        self.active.is_some()
    }

    /// Advances the injector to cycle `now`: restores an expired window,
    /// fires a due onset, and returns the core to freeze this cycle (if a
    /// stall bubble is open). Must be called every cycle in ascending
    /// order — the chaos run loop never fast-forwards.
    pub fn on_cycle(&mut self, now: u64, mem: &mut MemorySystem, cores: usize) -> Option<usize> {
        if let Some(active) = self.active {
            if now < active.until {
                return (active.kind == ChaosKind::StallBubble).then_some(active.core);
            }
            match active.kind {
                ChaosKind::DramCollapse => mem.set_dram_transfer_cycles(active.saved_transfer),
                ChaosKind::QueueSqueeze => mem.set_prefetch_queue_depth(active.saved_depth),
                ChaosKind::StallBubble => {}
            }
            self.active = None;
        }
        if now < self.next_onset {
            return None;
        }
        let at = self.next_onset;
        self.next_onset += self.plan.period;
        let kind_idx = (self.draw() % self.plan.kinds.len() as u64) as usize;
        let kind = self.plan.kinds[kind_idx];
        let until = at + self.plan.window;
        let mut window = ActiveWindow {
            kind,
            until,
            core: 0,
            saved_transfer: mem.dram_transfer_cycles(),
            saved_depth: mem.prefetch_queue_depth(),
        };
        let magnitude = match kind {
            ChaosKind::DramCollapse => {
                let mult = 2 + self.draw() % 7; // 2x..8x slower transfers
                mem.set_dram_transfer_cycles(window.saved_transfer * mult);
                mult
            }
            ChaosKind::QueueSqueeze => {
                let depth = 1 + (self.draw() % 4) as usize; // 1..4 slots
                mem.set_prefetch_queue_depth(Some(depth));
                depth as u64
            }
            ChaosKind::StallBubble => {
                window.core = (self.draw() % cores as u64) as usize;
                window.core as u64
            }
        };
        self.log.push(AppliedPerturbation {
            kind,
            at,
            until,
            magnitude,
        });
        self.active = Some(window);
        (kind == ChaosKind::StallBubble).then_some(window.core)
    }
}

/// Instruction-domain chaos: alternates two sources every `flip_every`
/// instructions, modeling a workload phase change mid-run (e.g. a polite
/// phase flipping into a storm). Deterministic by construction — no PRNG.
///
/// The wrapper deliberately leaves `take_ops`/`peek_ops` at their no-crank
/// defaults: chaos runs step every cycle anyway, and without chaos the op
/// crank is a pure optimization whose absence cannot change results.
pub struct PhaseFlipSource {
    a: Box<dyn InstrSource>,
    b: Box<dyn InstrSource>,
    flip_every: u64,
    emitted: u64,
    on_b: bool,
}

impl std::fmt::Debug for PhaseFlipSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseFlipSource")
            .field("flip_every", &self.flip_every)
            .field("emitted", &self.emitted)
            .field("on_b", &self.on_b)
            .finish()
    }
}

impl PhaseFlipSource {
    /// Starts in phase `a`, flipping after every `flip_every` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `flip_every` is zero.
    pub fn new(a: Box<dyn InstrSource>, b: Box<dyn InstrSource>, flip_every: u64) -> Self {
        assert!(flip_every > 0, "phase length must be nonzero");
        PhaseFlipSource {
            a,
            b,
            flip_every,
            emitted: 0,
            on_b: false,
        }
    }

    /// Which phase the next instruction comes from (false = `a`).
    pub fn in_second_phase(&self) -> bool {
        self.on_b
    }
}

impl InstrSource for PhaseFlipSource {
    fn next_instr(&mut self) -> Instr {
        if self.emitted == self.flip_every {
            self.emitted = 0;
            self.on_b = !self.on_b;
        }
        self.emitted += 1;
        if self.on_b {
            self.b.next_instr()
        } else {
            self.a.next_instr()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, Pc};
    use crate::config::SystemConfig;
    use crate::prefetch::NoPrefetcher;

    fn mem() -> MemorySystem {
        MemorySystem::new(SystemConfig::tiny(), vec![Box::new(NoPrefetcher)])
    }

    fn plan(seed: u64, kinds: Vec<ChaosKind>) -> ChaosPlan {
        ChaosPlan {
            seed,
            period: 1_000,
            window: 100,
            kinds,
        }
    }

    #[test]
    #[should_panic(expected = "shorter than the period")]
    fn window_must_be_shorter_than_period() {
        let _ = ChaosInjector::new(ChaosPlan {
            seed: 1,
            period: 100,
            window: 100,
            kinds: ChaosKind::ALL.to_vec(),
        });
    }

    #[test]
    #[should_panic(expected = "at least one kind")]
    fn plan_needs_kinds() {
        let _ = ChaosInjector::new(plan(1, vec![]));
    }

    #[test]
    fn same_seed_replays_the_same_perturbation_log() {
        let run = || {
            let mut inj = ChaosInjector::new(plan(7, ChaosKind::ALL.to_vec()));
            let mut m = mem();
            for now in 0..10_000 {
                inj.on_cycle(now, &mut m, 4);
            }
            inj.log().to_vec()
        };
        let a = run();
        assert_eq!(a, run(), "seeded chaos must replay bit-for-bit");
        // Onsets at 1_000, 2_000, ..., 9_000: cycle 10_000 is never
        // reached by the exclusive loop.
        assert_eq!(a.len(), 9, "one onset per period");
        // A different seed produces a different draw sequence somewhere.
        let mut inj = ChaosInjector::new(plan(8, ChaosKind::ALL.to_vec()));
        let mut m = mem();
        for now in 0..10_000 {
            inj.on_cycle(now, &mut m, 4);
        }
        assert_ne!(a, inj.log(), "different seeds must diverge");
    }

    #[test]
    fn dram_collapse_restores_the_saved_occupancy() {
        let mut inj = ChaosInjector::new(plan(3, vec![ChaosKind::DramCollapse]));
        let mut m = mem();
        let base = m.dram_transfer_cycles();
        for now in 0..=1_000 {
            inj.on_cycle(now, &mut m, 1);
        }
        let collapsed = m.dram_transfer_cycles();
        assert!(
            collapsed >= 2 * base,
            "window open: occupancy {collapsed} should be >= 2x {base}"
        );
        for now in 1_001..=1_100 {
            inj.on_cycle(now, &mut m, 1);
        }
        assert_eq!(m.dram_transfer_cycles(), base, "restored after the window");
    }

    #[test]
    fn queue_squeeze_restores_the_saved_depth() {
        let mut inj = ChaosInjector::new(plan(3, vec![ChaosKind::QueueSqueeze]));
        let mut m = mem();
        assert_eq!(m.prefetch_queue_depth(), None);
        for now in 0..=1_000 {
            inj.on_cycle(now, &mut m, 1);
        }
        let squeezed = m.prefetch_queue_depth().expect("window clamps the queue");
        assert!((1..=4).contains(&squeezed));
        for now in 1_001..=1_100 {
            inj.on_cycle(now, &mut m, 1);
        }
        assert_eq!(m.prefetch_queue_depth(), None, "unbounded again");
    }

    #[test]
    fn stall_bubble_names_one_core_for_the_whole_window() {
        let mut inj = ChaosInjector::new(plan(11, vec![ChaosKind::StallBubble]));
        let mut m = mem();
        let mut stalled = Vec::new();
        for now in 0..1_200 {
            if let Some(core) = inj.on_cycle(now, &mut m, 4) {
                stalled.push((now, core));
            }
        }
        assert_eq!(stalled.len(), 100, "exactly the window length");
        let core = stalled[0].1;
        assert!(core < 4);
        assert!(stalled.iter().all(|&(_, c)| c == core), "one victim");
        assert_eq!(stalled.first().unwrap().0, 1_000);
        assert_eq!(stalled.last().unwrap().0, 1_099);
    }

    #[test]
    fn phase_flip_source_alternates_on_the_cadence() {
        let a = Box::new(|| Instr::Op);
        let b = Box::new(|| Instr::Load {
            pc: Pc::new(0x400),
            addr: Addr::new(0),
            dep: None,
        });
        let mut src = PhaseFlipSource::new(a, b, 3);
        let kinds: Vec<bool> = (0..12)
            .map(|_| matches!(src.next_instr(), Instr::Op))
            .collect();
        assert_eq!(
            kinds,
            vec![true, true, true, false, false, false, true, true, true, false, false, false],
            "three of each phase, alternating"
        );
    }

    #[test]
    #[should_panic(expected = "phase length must be nonzero")]
    fn phase_flip_rejects_zero_length() {
        let _ = PhaseFlipSource::new(Box::new(|| Instr::Op), Box::new(|| Instr::Op), 0);
    }
}
