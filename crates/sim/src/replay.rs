//! Step-level prefetcher replay: the entry point of the differential
//! verification subsystem.
//!
//! The full simulator ([`crate::system::System`]) exercises a prefetcher
//! through an out-of-order core, caches, MSHRs, and DRAM — which is exactly
//! the wrong vehicle for checking the *prediction logic* itself: every
//! end-to-end metric folds timing into the comparison, so a silent
//! model/implementation drift in the prefetcher hides behind plausible
//! aggregate numbers. This module strips all of that away. A
//! [`PrefetchTrace`] is a bare sequence of the two stimuli a
//! [`Prefetcher`] can observe — demand accesses and LLC evictions — and
//! [`PrefetchTrace::replay_with`] drives a prefetcher through it one event
//! at a time, handing every emitted candidate burst to the caller. A
//! reference model replayed over the same trace must emit the same bursts,
//! block for block, or one of the two is wrong.
//!
//! Traces serialize to a line-oriented text format so shrunk failing
//! inputs can be committed to a regression corpus (`tests/corpus/` at the
//! workspace root) and reviewed in a diff:
//!
//! ```text
//! # optional comment lines
//! region_bytes 2048
//! A 400 1f3      <- demand access: PC 0x400, block 0x1f3
//! E 1f3          <- LLC eviction of block 0x1f3
//! ```
//!
//! Values are hexadecimal without a `0x` prefix; `region_bytes` is decimal
//! and fixes the [`RegionGeometry`] every replayed prefetcher must be
//! configured with (spatial prefetchers derive region/offset from it).

use std::fmt;

use crate::addr::{BlockAddr, Pc, RegionGeometry};
use crate::prefetch::{AccessInfo, Prefetcher};

/// One stimulus of a step-level replay.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PrefetchEvent {
    /// A demand access observed at the LLC.
    Access {
        /// Program counter of the access.
        pc: u64,
        /// Cache-block index accessed.
        block: u64,
    },
    /// An LLC eviction (the end-of-residency training signal).
    Evict {
        /// Cache-block index evicted.
        block: u64,
    },
}

/// A replayable sequence of prefetcher stimuli plus the region geometry
/// they are interpreted under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefetchTrace {
    region_bytes: u64,
    events: Vec<PrefetchEvent>,
}

/// One replayed step, as seen by the [`PrefetchTrace::replay_with`]
/// callback.
#[derive(Copy, Clone, Debug)]
pub enum ReplayStep<'a> {
    /// A demand access and the candidate burst the prefetcher emitted for
    /// it (empty when it predicted nothing).
    Access {
        /// The access as the prefetcher observed it.
        info: AccessInfo,
        /// Blocks the prefetcher asked to prefetch, in emission order.
        emitted: &'a [BlockAddr],
    },
    /// An eviction notification (prefetchers emit nothing on these).
    Evict {
        /// The evicted block.
        block: BlockAddr,
    },
}

/// Errors from parsing the textual trace format.
#[derive(Debug)]
pub enum ReplayParseError {
    /// The `region_bytes` header line is missing or malformed.
    BadHeader {
        /// 1-based line number.
        line: usize,
    },
    /// The declared region size is not a valid [`RegionGeometry`].
    BadGeometry {
        /// The declared size in bytes.
        region_bytes: u64,
    },
    /// An event line could not be parsed.
    BadEvent {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ReplayParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayParseError::BadHeader { line } => {
                write!(f, "line {line}: expected `region_bytes <decimal>` header")
            }
            ReplayParseError::BadGeometry { region_bytes } => {
                write!(
                    f,
                    "region_bytes {region_bytes} is not a power-of-two region of >= 64 bytes"
                )
            }
            ReplayParseError::BadEvent { line } => {
                write!(
                    f,
                    "line {line}: expected `A <pc-hex> <block-hex>` or `E <block-hex>`"
                )
            }
        }
    }
}

impl std::error::Error for ReplayParseError {}

impl PrefetchTrace {
    /// Creates an empty trace over `region_bytes`-sized regions.
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes` is not a valid [`RegionGeometry`] size.
    pub fn new(region_bytes: u64) -> Self {
        let _ = RegionGeometry::new(region_bytes); // validate eagerly
        PrefetchTrace {
            region_bytes,
            events: Vec::new(),
        }
    }

    /// The region geometry every replayed prefetcher must use.
    pub fn geometry(&self) -> RegionGeometry {
        RegionGeometry::new(self.region_bytes)
    }

    /// Region size in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }

    /// The event sequence.
    pub fn events(&self) -> &[PrefetchEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends a raw event.
    pub fn push(&mut self, event: PrefetchEvent) {
        self.events.push(event);
    }

    /// Appends a demand access.
    pub fn access(&mut self, pc: u64, block: u64) {
        self.events.push(PrefetchEvent::Access { pc, block });
    }

    /// Appends an eviction.
    pub fn evict(&mut self, block: u64) {
        self.events.push(PrefetchEvent::Evict { block });
    }

    /// Replaces the event sequence (used by trace shrinkers).
    pub fn with_events(&self, events: Vec<PrefetchEvent>) -> PrefetchTrace {
        PrefetchTrace {
            region_bytes: self.region_bytes,
            events,
        }
    }

    /// Drives `prefetcher` through the trace one event at a time, invoking
    /// `on_step` after every event with what the prefetcher emitted. The
    /// callback returns `false` to stop the replay early (e.g. on the
    /// first divergence from a reference model); `replay_with` returns
    /// whether the full trace was replayed.
    ///
    /// Accesses are presented as demand misses (`hit = false`) with a
    /// monotonically increasing cycle, which is the trigger condition
    /// every spatial prefetcher in this workspace trains on.
    pub fn replay_with(
        &self,
        prefetcher: &mut dyn Prefetcher,
        mut on_step: impl FnMut(usize, ReplayStep<'_>) -> bool,
    ) -> bool {
        let g = self.geometry();
        let mut out = Vec::new();
        for (i, &event) in self.events.iter().enumerate() {
            match event {
                PrefetchEvent::Access { pc, block } => {
                    let info = AccessInfo::demand(g, Pc::new(pc), BlockAddr::new(block), i as u64);
                    out.clear();
                    prefetcher.on_access(&info, &mut out);
                    if !on_step(
                        i,
                        ReplayStep::Access {
                            info,
                            emitted: &out,
                        },
                    ) {
                        return false;
                    }
                }
                PrefetchEvent::Evict { block } => {
                    let block = BlockAddr::new(block);
                    prefetcher.on_eviction(block);
                    if !on_step(i, ReplayStep::Evict { block }) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Replays the trace and collects the emitted burst of every event
    /// (empty vectors for evictions), index-aligned with
    /// [`PrefetchTrace::events`].
    pub fn replay(&self, prefetcher: &mut dyn Prefetcher) -> Vec<Vec<BlockAddr>> {
        let mut bursts = Vec::with_capacity(self.events.len());
        self.replay_with(prefetcher, |_, step| {
            bursts.push(match step {
                ReplayStep::Access { emitted, .. } => emitted.to_vec(),
                ReplayStep::Evict { .. } => Vec::new(),
            });
            true
        });
        bursts
    }

    /// Serializes the trace to the committable text format.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(32 + self.events.len() * 12);
        s.push_str(&format!("region_bytes {}\n", self.region_bytes));
        for event in &self.events {
            match *event {
                PrefetchEvent::Access { pc, block } => {
                    s.push_str(&format!("A {pc:x} {block:x}\n"));
                }
                PrefetchEvent::Evict { block } => {
                    s.push_str(&format!("E {block:x}\n"));
                }
            }
        }
        s
    }

    /// Parses the text format written by [`PrefetchTrace::to_text`].
    /// Blank lines and lines starting with `#` are ignored anywhere.
    ///
    /// # Errors
    ///
    /// A [`ReplayParseError`] naming the offending line.
    pub fn parse_text(text: &str) -> Result<Self, ReplayParseError> {
        let mut region_bytes: Option<u64> = None;
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let l = raw.trim();
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            let mut parts = l.split_whitespace();
            let head = parts.next().expect("non-empty line has a first token");
            if region_bytes.is_none() {
                if head != "region_bytes" {
                    return Err(ReplayParseError::BadHeader { line });
                }
                let value = parts
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or(ReplayParseError::BadHeader { line })?;
                if parts.next().is_some() {
                    return Err(ReplayParseError::BadHeader { line });
                }
                if !value.is_power_of_two() || value < crate::addr::BLOCK_BYTES {
                    return Err(ReplayParseError::BadGeometry {
                        region_bytes: value,
                    });
                }
                region_bytes = Some(value);
                continue;
            }
            let hex = |s: Option<&str>| s.and_then(|v| u64::from_str_radix(v, 16).ok());
            match head {
                "A" => {
                    let pc = hex(parts.next()).ok_or(ReplayParseError::BadEvent { line })?;
                    let block = hex(parts.next()).ok_or(ReplayParseError::BadEvent { line })?;
                    if parts.next().is_some() {
                        return Err(ReplayParseError::BadEvent { line });
                    }
                    events.push(PrefetchEvent::Access { pc, block });
                }
                "E" => {
                    let block = hex(parts.next()).ok_or(ReplayParseError::BadEvent { line })?;
                    if parts.next().is_some() {
                        return Err(ReplayParseError::BadEvent { line });
                    }
                    events.push(PrefetchEvent::Evict { block });
                }
                _ => return Err(ReplayParseError::BadEvent { line }),
            }
        }
        let region_bytes = region_bytes.ok_or(ReplayParseError::BadHeader { line: 1 })?;
        Ok(PrefetchTrace {
            region_bytes,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::NextLinePrefetcher;

    fn sample() -> PrefetchTrace {
        let mut t = PrefetchTrace::new(2048);
        t.access(0x400, 32 * 5 + 3);
        t.access(0x400, 32 * 5 + 7);
        t.evict(32 * 5 + 3);
        t.access(0x404, 32 * 9);
        t
    }

    #[test]
    fn text_round_trip() {
        let t = sample();
        let back = PrefetchTrace::parse_text(&t.to_text()).expect("parse");
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# a comment\n\nregion_bytes 1024\n# more\nA 400 a3\n\nE a3\n";
        let t = PrefetchTrace::parse_text(text).expect("parse");
        assert_eq!(t.region_bytes(), 1024);
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.events()[0],
            PrefetchEvent::Access {
                pc: 0x400,
                block: 0xa3
            }
        );
        assert_eq!(t.events()[1], PrefetchEvent::Evict { block: 0xa3 });
    }

    #[test]
    fn missing_header_is_rejected() {
        let err = PrefetchTrace::parse_text("A 400 3\n").unwrap_err();
        assert!(
            matches!(err, ReplayParseError::BadHeader { line: 1 }),
            "{err}"
        );
    }

    #[test]
    fn bad_geometry_is_rejected() {
        let err = PrefetchTrace::parse_text("region_bytes 100\n").unwrap_err();
        assert!(
            matches!(err, ReplayParseError::BadGeometry { region_bytes: 100 }),
            "{err}"
        );
        let err = PrefetchTrace::parse_text("region_bytes 32\n").unwrap_err();
        assert!(matches!(err, ReplayParseError::BadGeometry { .. }), "{err}");
    }

    #[test]
    fn bad_event_is_rejected_with_line_number() {
        let err = PrefetchTrace::parse_text("region_bytes 2048\nA 400\n").unwrap_err();
        assert!(
            matches!(err, ReplayParseError::BadEvent { line: 2 }),
            "{err}"
        );
        let err = PrefetchTrace::parse_text("region_bytes 2048\nX 1 2\n").unwrap_err();
        assert!(
            matches!(err, ReplayParseError::BadEvent { line: 2 }),
            "{err}"
        );
        let err = PrefetchTrace::parse_text("region_bytes 2048\nA 400 zz\n").unwrap_err();
        assert!(
            matches!(err, ReplayParseError::BadEvent { line: 2 }),
            "{err}"
        );
    }

    #[test]
    fn replay_drives_prefetcher_step_by_step() {
        let t = sample();
        let mut p = NextLinePrefetcher::new(2);
        let bursts = t.replay(&mut p);
        assert_eq!(bursts.len(), t.len());
        // Every access emits two next-line candidates; the evict emits none.
        assert_eq!(
            bursts[0],
            vec![BlockAddr::new(32 * 5 + 4), BlockAddr::new(32 * 5 + 5)]
        );
        assert!(bursts[2].is_empty());
    }

    #[test]
    fn replay_with_can_stop_early() {
        let t = sample();
        let mut p = NextLinePrefetcher::new(1);
        let mut steps = 0;
        let completed = t.replay_with(&mut p, |i, _| {
            steps += 1;
            i < 1
        });
        assert!(!completed);
        assert_eq!(steps, 2, "stopped right after the second event");
    }

    #[test]
    fn access_infos_carry_trace_geometry() {
        let mut t = PrefetchTrace::new(1024); // 16 blocks per region
        t.access(0x400, 16 * 3 + 5);
        let mut p = NextLinePrefetcher::new(1);
        t.replay_with(&mut p, |_, step| {
            if let ReplayStep::Access { info, .. } = step {
                assert_eq!(info.region.raw(), 3);
                assert_eq!(info.offset, 5);
                assert!(!info.hit);
            }
            true
        });
    }
}
