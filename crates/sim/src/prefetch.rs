//! The prefetcher interface.
//!
//! Every prefetcher in this reproduction — Bingo, the multi-event
//! predictors, and all baselines — implements [`Prefetcher`]. The memory
//! system invokes [`Prefetcher::on_access`] for every *demand* access
//! observed at the LLC (the paper trains and triggers all prefetchers at the
//! LLC and prefetches directly into it), and [`Prefetcher::on_eviction`]
//! whenever a block leaves the LLC — the end-of-residency signal
//! per-page-history prefetchers train on.

use crate::addr::{Addr, BlockAddr, CoreId, Pc, RegionGeometry, RegionId};
use crate::telemetry::PrefetchSource;
use crate::throttle::ThrottleLevel;

/// Everything a prefetcher may observe about one demand access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessInfo {
    /// Core issuing the access.
    pub core: CoreId,
    /// Program counter of the load/store.
    pub pc: Pc,
    /// Full byte address.
    pub addr: Addr,
    /// Cache-block index of the access.
    pub block: BlockAddr,
    /// Spatial region containing the block.
    pub region: RegionId,
    /// Block offset within the region.
    pub offset: u32,
    /// Whether the access is a store.
    pub is_write: bool,
    /// Whether the access hit a resident, ready LLC line.
    pub hit: bool,
    /// Cycle of the access.
    pub cycle: u64,
}

impl AccessInfo {
    /// Builds the canonical demand-miss view of a load at `pc` touching
    /// `block`, with region/offset derived from `geometry`.
    ///
    /// This is how trace replay and the differential harness construct
    /// accesses: a core-0 read miss, which is the trigger condition every
    /// spatial prefetcher in this workspace trains on.
    pub fn demand(geometry: RegionGeometry, pc: Pc, block: BlockAddr, cycle: u64) -> Self {
        AccessInfo {
            core: CoreId(0),
            pc,
            addr: block.base_addr(),
            block,
            region: geometry.region_of(block),
            offset: geometry.offset_of(block),
            is_write: false,
            hit: false,
            cycle,
        }
    }
}

/// A hardware data prefetcher observing the LLC access stream.
///
/// Implementations append candidate blocks to `out` in [`on_access`];
/// the memory system deduplicates against resident and in-flight blocks,
/// enforces MSHR limits, and issues the survivors toward DRAM.
///
/// [`on_access`]: Prefetcher::on_access
pub trait Prefetcher {
    /// Short human-readable name ("Bingo", "SMS", ...), used in reports.
    fn name(&self) -> &str;

    /// Observes a demand access and appends prefetch candidates to `out`.
    ///
    /// `out` is a reusable buffer: it arrives empty and any blocks left in
    /// it are issued (subject to filtering) at the access's cycle.
    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>);

    /// Observes the eviction of `block` from the LLC. Default: ignored.
    fn on_eviction(&mut self, block: BlockAddr) {
        let _ = block;
    }

    /// Observes the completion of a fill (demand or prefetch). Default:
    /// ignored.
    fn on_fill(&mut self, block: BlockAddr, prefetch: bool) {
        let _ = (block, prefetch);
    }

    /// Total metadata storage in bits, for the storage/area studies
    /// (Section VI-A, Fig. 9). Default: 0 (no metadata).
    fn storage_bits(&self) -> u64 {
        0
    }

    /// One-line internal-statistics summary for diagnostics (match rates,
    /// table occupancy, ...). Default: empty.
    fn debug_stats(&self) -> String {
        String::new()
    }

    /// Structured internal metrics for experiment harnesses, as
    /// (name, value) pairs — e.g. history-lookup and match counts for the
    /// paper's match-probability and redundancy studies. Default: none.
    fn metrics(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }

    /// Applies a throttle level pushed by the memory system's
    /// [`ThrottleController`](crate::throttle::ThrottleController).
    ///
    /// Implementations must be *strictly subtractive*: at any level the
    /// emitted burst must be a subset (in fact a prefix, or a vote-raised
    /// narrowing) of what the unthrottled prefetcher would emit, and
    /// training/table state must evolve identically. Default: ignored
    /// (baselines run unthrottled; the controller's level still gates
    /// nothing for them).
    fn set_throttle_level(&mut self, level: ThrottleLevel) {
        let _ = level;
    }

    /// The prediction event that produced the candidates emitted by the
    /// most recent [`on_access`](Prefetcher::on_access) call, for
    /// lifecycle-telemetry attribution. Queried once per burst, right
    /// after `on_access` returns with a non-empty buffer. Default:
    /// [`PrefetchSource::Unattributed`] (baselines need not implement
    /// attribution).
    fn last_burst_source(&self) -> PrefetchSource {
        PrefetchSource::Unattributed
    }
}

/// The no-op prefetcher used for baseline runs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &str {
        "None"
    }

    fn on_access(&mut self, _info: &AccessInfo, _out: &mut Vec<BlockAddr>) {}
}

/// A simple next-N-line prefetcher, useful as a sanity baseline and in
/// substrate tests.
#[derive(Copy, Clone, Debug)]
pub struct NextLinePrefetcher {
    degree: usize,
    level: ThrottleLevel,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher issuing `degree` sequential blocks.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be nonzero");
        NextLinePrefetcher {
            degree,
            level: ThrottleLevel::Full,
        }
    }

    /// The effective degree under the current throttle level — always a
    /// prefix of the unthrottled burst, so throttling stays subtractive.
    fn effective_degree(&self) -> usize {
        match self.level {
            ThrottleLevel::Full => self.degree,
            ThrottleLevel::RaisedVote => self.degree.div_ceil(2),
            ThrottleLevel::TriggerOnly => 1,
            ThrottleLevel::Stopped => 0,
        }
    }
}

impl Default for NextLinePrefetcher {
    fn default() -> Self {
        NextLinePrefetcher::new(1)
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn name(&self) -> &str {
        "NextLine"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        for d in 1..=self.effective_degree() {
            out.push(info.block.offset(d as i64));
        }
    }

    fn set_throttle_level(&mut self, level: ThrottleLevel) {
        self.level = level;
    }
}

/// A prefetcher that deliberately panics after a fixed number of accesses.
///
/// Exists purely for fault-tolerance testing: a harness cell built on this
/// prefetcher is guaranteed to die mid-simulation, exercising the
/// panic-isolation path without touching real prefetcher code.
#[derive(Copy, Clone, Debug)]
pub struct FaultyPrefetcher {
    panic_after: u64,
    accesses: u64,
}

impl FaultyPrefetcher {
    /// Creates a prefetcher that panics on access number `panic_after + 1`
    /// (i.e. it survives exactly `panic_after` accesses).
    pub fn new(panic_after: u64) -> Self {
        FaultyPrefetcher {
            panic_after,
            accesses: 0,
        }
    }
}

impl Prefetcher for FaultyPrefetcher {
    fn name(&self) -> &str {
        "Faulty"
    }

    fn on_access(&mut self, _info: &AccessInfo, _out: &mut Vec<BlockAddr>) {
        self.accesses += 1;
        if self.accesses > self.panic_after {
            panic!(
                "FaultyPrefetcher panicked deliberately after {} accesses",
                self.panic_after
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RegionGeometry;

    fn info(block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(0x400),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    #[test]
    fn no_prefetcher_emits_nothing() {
        let mut p = NoPrefetcher;
        let mut out = Vec::new();
        p.on_access(&info(10), &mut out);
        assert!(out.is_empty());
        assert_eq!(p.storage_bits(), 0);
        assert_eq!(p.name(), "None");
    }

    #[test]
    fn next_line_emits_sequential_blocks() {
        let mut p = NextLinePrefetcher::new(3);
        let mut out = Vec::new();
        p.on_access(&info(10), &mut out);
        assert_eq!(
            out,
            vec![BlockAddr::new(11), BlockAddr::new(12), BlockAddr::new(13)]
        );
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn next_line_rejects_zero_degree() {
        let _ = NextLinePrefetcher::new(0);
    }

    #[test]
    fn next_line_throttle_truncates_its_burst_prefix() {
        let full: Vec<BlockAddr> = {
            let mut p = NextLinePrefetcher::new(4);
            let mut out = Vec::new();
            p.on_access(&info(10), &mut out);
            out
        };
        for (level, want) in [
            (ThrottleLevel::Full, 4),
            (ThrottleLevel::RaisedVote, 2),
            (ThrottleLevel::TriggerOnly, 1),
            (ThrottleLevel::Stopped, 0),
        ] {
            let mut p = NextLinePrefetcher::new(4);
            p.set_throttle_level(level);
            let mut out = Vec::new();
            p.on_access(&info(10), &mut out);
            assert_eq!(out.len(), want, "{level}");
            assert_eq!(out[..], full[..want], "throttled burst must be a prefix");
        }
    }

    #[test]
    fn faulty_prefetcher_survives_its_budget() {
        let mut p = FaultyPrefetcher::new(3);
        let mut out = Vec::new();
        for b in 0..3 {
            p.on_access(&info(b), &mut out);
        }
    }

    #[test]
    #[should_panic(expected = "panicked deliberately after 3 accesses")]
    fn faulty_prefetcher_panics_past_its_budget() {
        let mut p = FaultyPrefetcher::new(3);
        let mut out = Vec::new();
        for b in 0..4 {
            p.on_access(&info(b), &mut out);
        }
    }
}
