//! A small open-addressed hash map keyed by `u64`, for the simulator's
//! hottest lookup structures (the MSHR / pending-fill files).
//!
//! `std::collections::HashMap` pays SipHash plus a heap indirection on
//! every probe; the structures it backs here are bounded (MSHR files hold
//! at most a few dozen in-flight blocks), hit on every demand access and
//! every prefetch candidate, and never iterated. This map instead uses
//! Fibonacci multiplicative hashing into a flat slot array with linear
//! probing and backward-shift deletion, sized once at construction so the
//! steady state performs no allocation at all. The table doubles if its
//! load factor would exceed 1/2, so a caller that underestimates capacity
//! gets slower inserts, never a wrong answer.
//!
//! The map is deliberately *not* iterable: nothing in the simulator may
//! depend on hash-table ordering, and removing iteration makes that a
//! compile-time guarantee.

/// An open-addressed `u64 -> V` map with linear probing.
#[derive(Debug, Clone)]
pub struct OpenMap<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> OpenMap<V> {
    /// Creates a map that can hold `capacity` entries without rehashing.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(4) * 2).next_power_of_two();
        OpenMap {
            slots: std::iter::repeat_with(|| None).take(slots).collect(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fibonacci hash: spreads sequential keys (block indices) across the
    /// table by taking the top bits of a golden-ratio multiply.
    fn home(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> (64 - self.slots.len().trailing_zeros())) as usize
    }

    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| {
            let (_, v) = self.slots[i].as_ref().expect("found slot is occupied");
            v
        })
    }

    /// Mutable access to the value stored under `key`, if any.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        let (_, v) = self.slots[i].as_mut().expect("found slot is occupied");
        Some(v)
    }

    /// Inserts `val` under `key`, returning the previous value if the key
    /// was present.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((key, val));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => return Some(std::mem::replace(v, val)),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Removes and returns the value under `key`, if any. Uses
    /// backward-shift deletion, so probe chains stay contiguous and no
    /// tombstones accumulate.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut i = self.find(key)?;
        let (_, val) = self.slots[i].take().expect("found slot is occupied");
        self.len -= 1;
        let mask = self.slots.len() - 1;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let Some((k, _)) = &self.slots[j] else { break };
            // An entry probing from `home` past `i` would now find the
            // hole first; shift it back into the hole to keep its chain
            // reachable. Cyclic distances decide membership of the chain.
            let home = self.home(*k);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.slots[i] = self.slots[j].take();
                i = j;
            }
        }
        Some(val)
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            std::iter::repeat_with(|| None).take(doubled).collect(),
        );
        self.len = 0;
        for slot in old.into_iter().flatten() {
            let (k, v) = slot;
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = OpenMap::with_capacity(8);
        assert!(m.is_empty());
        assert_eq!(m.insert(42, "a"), None);
        assert_eq!(m.insert(42, "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(42), Some(&"b"));
        assert!(m.contains_key(42));
        assert_eq!(m.remove(42), Some("b"));
        assert_eq!(m.remove(42), None);
        assert!(m.is_empty());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m = OpenMap::with_capacity(4);
        m.insert(7, 10u32);
        *m.get_mut(7).expect("present") += 5;
        assert_eq!(m.get(7), Some(&15));
        assert_eq!(m.get_mut(8), None);
    }

    #[test]
    fn grows_past_declared_capacity() {
        let mut m = OpenMap::with_capacity(2);
        for k in 0..100u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 100);
        for k in 0..100u64 {
            assert_eq!(m.get(k), Some(&(k * 3)), "key {k}");
        }
    }

    #[test]
    fn backward_shift_keeps_colliding_chains_reachable() {
        // Fill, then delete from the middle of clusters in varying order;
        // every surviving key must stay findable.
        let mut m = OpenMap::with_capacity(16);
        let keys: Vec<u64> = (0..24).map(|i| i * 8).collect(); // clustered homes
        for &k in &keys {
            m.insert(k, k);
        }
        for (n, &k) in keys.iter().enumerate().filter(|(n, _)| n % 3 == 0) {
            assert_eq!(m.remove(k), Some(k), "removal #{n}");
        }
        for (n, &k) in keys.iter().enumerate() {
            let expect = if n % 3 == 0 { None } else { Some(&keys[n]) };
            assert_eq!(m.get(k), expect, "key {k} after deletions");
        }
    }

    #[test]
    fn behaves_like_std_hashmap_under_random_churn() {
        let mut m = OpenMap::with_capacity(8);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 64; // small key space forces heavy collision churn
            match x % 3 {
                0 => assert_eq!(m.insert(key, step), reference.insert(key, step)),
                1 => assert_eq!(m.remove(key), reference.remove(&key)),
                _ => assert_eq!(m.get(key), reference.get(&key)),
            }
            assert_eq!(m.len(), reference.len());
        }
        for k in 0..64 {
            assert_eq!(m.get(k), reference.get(&k), "final state key {k}");
        }
    }
}
