//! System configuration mirroring Table I of the paper.
//!
//! The defaults reproduce the evaluated machine: a 4 GHz, 4-core chip with
//! 4-wide out-of-order cores (256-entry ROB, 64-entry LSQ), split 64 KB
//! L1 caches, an 8 MB 16-way shared last-level cache with 4 banks and a
//! 15-cycle hit latency, and two DRAM channels providing 60 ns zero-load
//! latency and 37.5 GB/s of peak bandwidth. Blocks are 64 bytes everywhere.

use crate::addr::{RegionGeometry, BLOCK_BYTES};

/// Parameters of one cache level.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Tag+data access latency in core cycles.
    pub latency: u64,
    /// Number of miss status holding registers (outstanding misses).
    pub mshrs: usize,
    /// Number of banks; each bank accepts one access per cycle.
    pub banks: usize,
}

impl CacheConfig {
    /// Number of sets implied by size, associativity, and block size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways * BLOCK_BYTES` sets, or a non-power-of-two set count).
    pub fn sets(&self) -> usize {
        let sets = self.size_bytes / (self.ways as u64 * BLOCK_BYTES);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "cache of {} bytes / {} ways yields invalid set count {}",
            self.size_bytes,
            self.ways,
            sets
        );
        sets as usize
    }

    /// Capacity in cache blocks.
    pub fn blocks(&self) -> u64 {
        self.size_bytes / BLOCK_BYTES
    }
}

/// Parameters of the DRAM subsystem.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Latency (cycles) of a row-buffer hit, excluding data transfer.
    pub row_hit_latency: u64,
    /// Latency (cycles) of a row-buffer miss (precharge + activate + CAS).
    pub row_miss_latency: u64,
    /// Channel occupancy (cycles) per 64-byte transfer; sets peak bandwidth.
    pub transfer_cycles: u64,
}

impl DramConfig {
    /// Peak bandwidth in GB/s at the given core frequency.
    pub fn peak_bandwidth_gbps(&self, freq_ghz: f64) -> f64 {
        let blocks_per_cycle = self.channels as f64 / self.transfer_cycles as f64;
        blocks_per_cycle * BLOCK_BYTES as f64 * freq_ghz
    }
}

/// Parameters of one out-of-order core (Table I "Cores" row).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CoreConfig {
    /// Dispatch/issue width in instructions per cycle.
    pub width: usize,
    /// Retire width in instructions per cycle.
    pub retire_width: usize,
    /// Reorder buffer capacity.
    pub rob_entries: usize,
    /// Load/store queue capacity (outstanding stores tracked against this).
    pub lsq_entries: usize,
}

/// Full system configuration (Table I).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of cores on the chip.
    pub cores: usize,
    /// Core clock frequency in GHz (used only for bandwidth/latency docs).
    pub freq_ghz: f64,
    /// Per-core parameters.
    pub core: CoreConfig,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Shared last-level cache (the paper calls it "L2 Cache" in Table I).
    pub llc: CacheConfig,
    /// DRAM subsystem.
    pub dram: DramConfig,
    /// Spatial-region geometry used by prefetchers trained at the LLC.
    pub region: RegionGeometry,
    /// LLC MSHR slots reserved for demand requests; prefetches may only use
    /// the remainder so they can never starve demands.
    pub llc_mshrs_reserved_for_demand: usize,
    /// Bound on concurrently in-flight prefetch fills (the prefetch queue).
    /// `None` models an unbounded queue — the paper configuration — and is
    /// bit-for-bit identical to the pre-pressure-model simulator. `Some(n)`
    /// drops candidates beyond `n` outstanding prefetches with an explicit
    /// queue-full classification instead of issuing them; demand misses are
    /// never gated by this bound.
    pub prefetch_queue_depth: Option<usize>,
    /// Starvation SLO for the per-core throttle mode: the minimum
    /// acceptable min/max per-core progress ratio before the watchdog
    /// clamps the offending core(s). `None` uses
    /// [`throttle::DEFAULT_QOS_SLO`](crate::throttle::DEFAULT_QOS_SLO);
    /// ignored by every other throttle mode.
    pub qos_slo: Option<f64>,
}

impl SystemConfig {
    /// The exact configuration of Table I in the paper.
    ///
    /// DRAM timing at 4 GHz: 60 ns zero-load latency = 240 cycles for a
    /// row-buffer miss; a row hit costs 180 cycles. Each 64 B transfer
    /// occupies its channel for ~13.6 cycles, which with two channels yields
    /// 37.5 GB/s of peak bandwidth.
    pub fn paper() -> Self {
        SystemConfig {
            cores: 4,
            freq_ghz: 4.0,
            core: CoreConfig {
                width: 4,
                retire_width: 4,
                rob_entries: 256,
                lsq_entries: 64,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 8,
                latency: 4,
                mshrs: 8,
                banks: 1,
            },
            llc: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
                latency: 15,
                // Table I fixes only the L1 MSHR count (8); the shared LLC
                // follows ChampSim's convention of scaling MSHRs with
                // capacity so that footprint-sized prefetch bursts (up to
                // 32 blocks x 4 cores) are not artificially serialized.
                mshrs: 256,
                banks: 4,
            },
            dram: DramConfig {
                channels: 2,
                banks_per_channel: 8,
                row_bytes: 4096,
                row_hit_latency: 160,
                row_miss_latency: 226,
                transfer_cycles: 14,
            },
            region: RegionGeometry::default(),
            llc_mshrs_reserved_for_demand: 32,
            prefetch_queue_depth: None,
            qos_slo: None,
        }
    }

    /// A single-core variant of the paper configuration, convenient for
    /// unit tests and single-threaded microbenchmarks.
    pub fn paper_single_core() -> Self {
        Self::paper().with_cores(1)
    }

    /// The same configuration with a different core count. The shared
    /// resources (LLC capacity, MSHR pool, DRAM channels) deliberately do
    /// *not* scale with it — contention for them at higher counts is
    /// exactly what the multi-core capacity search measures.
    pub fn with_cores(self, cores: usize) -> Self {
        SystemConfig { cores, ..self }
    }

    /// A scaled-down configuration for fast tests: one core, 8 KB L1,
    /// 256 KB LLC. Miss behavior manifests after a few thousand accesses
    /// instead of millions.
    pub fn tiny() -> Self {
        SystemConfig {
            cores: 1,
            freq_ghz: 4.0,
            core: CoreConfig {
                width: 4,
                retire_width: 4,
                rob_entries: 64,
                lsq_entries: 16,
            },
            l1d: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 4,
                latency: 4,
                mshrs: 8,
                banks: 1,
            },
            llc: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                latency: 15,
                mshrs: 32,
                banks: 2,
            },
            dram: DramConfig {
                channels: 2,
                banks_per_channel: 8,
                row_bytes: 4096,
                row_hit_latency: 160,
                row_miss_latency: 226,
                transfer_cycles: 14,
            },
            region: RegionGeometry::default(),
            llc_mshrs_reserved_for_demand: 8,
            prefetch_queue_depth: None,
            qos_slo: None,
        }
    }

    /// Zero-load DRAM latency in nanoseconds (row miss, empty queues).
    pub fn dram_zero_load_ns(&self) -> f64 {
        (self.dram.row_miss_latency + self.dram.transfer_cycles) as f64 / self.freq_ghz
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any parameter is zero where that is meaningless, if
    /// cache geometry does not divide evenly, or if the demand MSHR
    /// reservation exceeds the LLC MSHR count.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("system must have at least one core".into());
        }
        if self.core.width == 0 || self.core.retire_width == 0 {
            return Err("core width must be nonzero".into());
        }
        if self.core.rob_entries == 0 {
            return Err("ROB must have at least one entry".into());
        }
        for (name, c) in [("l1d", &self.l1d), ("llc", &self.llc)] {
            if c.ways == 0 || c.banks == 0 || c.mshrs == 0 {
                return Err(format!("{name}: ways/banks/mshrs must be nonzero"));
            }
            let sets = c.size_bytes / (c.ways as u64 * BLOCK_BYTES);
            if sets == 0 || !sets.is_power_of_two() {
                return Err(format!("{name}: set count {sets} is not a power of two"));
            }
        }
        if self.dram.channels == 0 || self.dram.banks_per_channel == 0 {
            return Err("dram: channels and banks must be nonzero".into());
        }
        if self.dram.transfer_cycles == 0 {
            return Err("dram: transfer occupancy must be nonzero".into());
        }
        if !self.dram.row_bytes.is_power_of_two() || self.dram.row_bytes < BLOCK_BYTES {
            return Err("dram: row size must be a power of two >= one block".into());
        }
        if self.llc_mshrs_reserved_for_demand >= self.llc.mshrs {
            return Err("llc demand MSHR reservation must leave room for prefetches".into());
        }
        if self.prefetch_queue_depth == Some(0) {
            return Err("prefetch queue depth of 0 disables prefetching entirely; \
                        use a no-op prefetcher instead"
                .into());
        }
        if let Some(slo) = self.qos_slo {
            if !(slo.is_finite() && slo > 0.0 && slo <= 1.0) {
                return Err(format!("qos_slo must be a ratio in (0, 1], got {slo}"));
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        SystemConfig::paper()
            .validate()
            .expect("paper config valid");
        SystemConfig::tiny().validate().expect("tiny config valid");
        SystemConfig::paper_single_core()
            .validate()
            .expect("single-core config valid");
    }

    #[test]
    fn paper_llc_geometry_matches_table1() {
        let cfg = SystemConfig::paper();
        assert_eq!(cfg.llc.sets(), 8192); // 8 MB / (16 ways * 64 B)
        assert_eq!(cfg.l1d.sets(), 128); // 64 KB / (8 ways * 64 B)
        assert_eq!(cfg.llc.blocks(), 131_072);
    }

    #[test]
    fn paper_dram_bandwidth_close_to_37_5_gbps() {
        let cfg = SystemConfig::paper();
        let bw = cfg.dram.peak_bandwidth_gbps(cfg.freq_ghz);
        assert!(
            (bw - 37.5).abs() < 1.0,
            "peak bandwidth {bw:.2} GB/s should be ~37.5 GB/s"
        );
    }

    #[test]
    fn paper_dram_zero_load_latency_close_to_60ns() {
        let cfg = SystemConfig::paper();
        let ns = cfg.dram_zero_load_ns();
        assert!(
            (ns - 60.0).abs() < 2.0,
            "zero-load {ns:.1} ns should be ~60 ns"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = SystemConfig::paper();
        cfg.cores = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper();
        cfg.l1d.ways = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper();
        cfg.l1d.size_bytes = 3 * 1024; // 3 KB / (8*64) = 6 sets, not a power of two
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper();
        cfg.llc_mshrs_reserved_for_demand = cfg.llc.mshrs;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper();
        cfg.dram.row_bytes = 100;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::paper();
        cfg.prefetch_queue_depth = Some(0);
        assert!(cfg.validate().is_err());
        cfg.prefetch_queue_depth = Some(16);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(SystemConfig::default(), SystemConfig::paper());
    }
}
