//! Property-based tests of the simulator substrate's invariants.

use proptest::prelude::*;

use bingo_sim::{Addr, BlockAddr, Cache, CacheConfig, Dram, DramConfig, Lookup, RegionGeometry};

fn small_cache_config() -> CacheConfig {
    CacheConfig {
        size_bytes: 4096, // 8 sets x 8 ways
        ways: 8,
        latency: 10,
        mshrs: 8,
        banks: 2,
    }
}

proptest! {
    /// Block/address round trips hold for any address.
    #[test]
    fn addr_block_round_trip(raw in any::<u64>()) {
        let addr = Addr::new(raw);
        let block = addr.block();
        prop_assert!(block.base_addr().raw() <= raw || raw < 64);
        prop_assert_eq!(block.base_addr().block(), block);
    }

    /// Region/offset decomposition reconstructs the block for every
    /// power-of-two region size.
    #[test]
    fn region_round_trip(block in any::<u64>(), shift in 0u32..=6) {
        let g = RegionGeometry::new(64u64 << shift);
        let b = BlockAddr::new(block);
        let r = g.region_of(b);
        let o = g.offset_of(b);
        prop_assert!((o as usize) < g.blocks_per_region());
        prop_assert_eq!(g.block_at(r, o), b);
    }

    /// The cache never exceeds its capacity and never panics under an
    /// arbitrary access/fill/invalidate workload.
    #[test]
    fn cache_capacity_invariant(ops in proptest::collection::vec((0u8..4, 0u64..512), 1..400)) {
        let mut cache = Cache::new(small_cache_config());
        let capacity = 4096 / 64;
        let mut now = 0u64;
        for (op, block) in ops {
            now += 1;
            let b = BlockAddr::new(block);
            match op {
                0 => { let _ = cache.demand_access(b, now, false); }
                1 => {
                    if !cache.probe(b) && cache.mshr_available_for_demand() {
                        cache.allocate_fill(b, now + 100, false);
                    }
                }
                2 => { let _ = cache.complete_fill(b, false); }
                _ => { let _ = cache.invalidate(b); }
            }
            prop_assert!(cache.resident_lines() <= capacity);
            prop_assert!(cache.mshr_occupancy() <= 8);
        }
    }

    /// A resident block always reports a hit with a ready time after the
    /// access cycle.
    #[test]
    fn resident_blocks_hit(block in 0u64..512, now in 0u64..10_000) {
        let mut cache = Cache::new(small_cache_config());
        let b = BlockAddr::new(block);
        cache.allocate_fill(b, 0, false);
        cache.complete_fill(b, false);
        match cache.demand_access(b, now, false) {
            Lookup::Hit { ready_at } => prop_assert!(ready_at > now),
            other => prop_assert!(false, "expected hit, got {:?}", other),
        }
    }

    /// DRAM completions are always after the request cycle, and channel
    /// bookkeeping never goes backwards.
    #[test]
    fn dram_time_is_monotone(reqs in proptest::collection::vec((any::<u32>(), 0u64..1000), 1..200)) {
        let mut dram = Dram::new(DramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 4096,
            row_hit_latency: 160,
            row_miss_latency: 226,
            transfer_cycles: 14,
        });
        let mut now = 0u64;
        for (block, dt) in reqs {
            now += dt;
            let ready = dram.read(BlockAddr::new(block as u64), now);
            prop_assert!(ready > now, "ready {} <= now {}", ready, now);
            prop_assert!(ready <= now + 1_000_000, "unbounded latency");
        }
        prop_assert_eq!(dram.stats.reads as usize, dram.stats.reads as usize);
    }

    /// Prefetched lines are attributed exactly once: useful + useless
    /// never exceeds completed prefetch fills.
    #[test]
    fn prefetch_attribution_conserves(ops in proptest::collection::vec((0u8..3, 0u64..256), 1..300)) {
        let mut cache = Cache::new(small_cache_config());
        let mut now = 0;
        let mut fills = 0u64;
        for (op, block) in ops {
            now += 1;
            let b = BlockAddr::new(block);
            match op {
                0 => { let _ = cache.demand_access(b, now, false); }
                1 => {
                    if !cache.probe(b) && cache.mshr_available_for_prefetch(2) {
                        cache.allocate_fill(b, now + 10, true);
                    }
                }
                _ => {
                    if cache.complete_fill(b, false).is_some() || cache.probe(b) {
                        fills += 1;
                    }
                }
            }
        }
        let s = &cache.stats;
        prop_assert!(s.pf_useful + s.pf_useless <= s.pf_late + fills + s.pf_useful,
            "attribution leak: useful {} useless {} fills {}", s.pf_useful, s.pf_useless, fills);
    }
}
