//! Property-style tests of the simulator substrate's invariants.
//!
//! Random cases come from a seeded [`SmallRng`] so runs are deterministic
//! (the hermetic build has no proptest; failures print the offending case).

use bingo_rng::{Rng, SeedableRng, SmallRng};

use bingo_sim::{Addr, BlockAddr, Cache, CacheConfig, Dram, DramConfig, Lookup, RegionGeometry};

fn small_cache_config() -> CacheConfig {
    CacheConfig {
        size_bytes: 4096, // 8 sets x 8 ways
        ways: 8,
        latency: 10,
        mshrs: 8,
        banks: 2,
    }
}

/// Block/address round trips hold for any address.
#[test]
fn addr_block_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x51D0_0001);
    for _ in 0..512 {
        let raw = rng.next_u64();
        let addr = Addr::new(raw);
        let block = addr.block();
        assert!(block.base_addr().raw() <= raw || raw < 64);
        assert_eq!(block.base_addr().block(), block);
    }
}

/// Region/offset decomposition reconstructs the block for every
/// power-of-two region size.
#[test]
fn region_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x51D0_0002);
    for _ in 0..512 {
        let block = rng.next_u64();
        let shift = rng.gen_range(0..=6u32);
        let g = RegionGeometry::new(64u64 << shift);
        let b = BlockAddr::new(block);
        let r = g.region_of(b);
        let o = g.offset_of(b);
        assert!((o as usize) < g.blocks_per_region());
        assert_eq!(g.block_at(r, o), b);
    }
}

/// The cache never exceeds its capacity and never panics under an
/// arbitrary access/fill/invalidate workload.
#[test]
fn cache_capacity_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x51D0_0003);
    for _ in 0..64 {
        let mut cache = Cache::new(small_cache_config());
        let capacity = 4096 / 64;
        let mut now = 0u64;
        let n = rng.gen_range(1..400usize);
        for _ in 0..n {
            now += 1;
            let op = rng.gen_range(0..4u8);
            let b = BlockAddr::new(rng.gen_range(0..512u64));
            match op {
                0 => {
                    let _ = cache.demand_access(b, now, false);
                }
                1 => {
                    if !cache.probe(b) && cache.mshr_available_for_demand() {
                        cache.allocate_fill(b, now + 100, false);
                    }
                }
                2 => {
                    let _ = cache.complete_fill(b, false);
                }
                _ => {
                    let _ = cache.invalidate(b);
                }
            }
            assert!(cache.resident_lines() <= capacity);
            assert!(cache.mshr_occupancy() <= 8);
        }
    }
}

/// A resident block always reports a hit with a ready time after the
/// access cycle.
#[test]
fn resident_blocks_hit() {
    let mut rng = SmallRng::seed_from_u64(0x51D0_0004);
    for _ in 0..256 {
        let block = rng.gen_range(0..512u64);
        let now = rng.gen_range(0..10_000u64);
        let mut cache = Cache::new(small_cache_config());
        let b = BlockAddr::new(block);
        cache.allocate_fill(b, 0, false);
        cache.complete_fill(b, false);
        match cache.demand_access(b, now, false) {
            Lookup::Hit { ready_at } => assert!(ready_at > now),
            other => panic!("expected hit, got {other:?}"),
        }
    }
}

/// DRAM completions are always after the request cycle, and channel
/// bookkeeping never goes backwards.
#[test]
fn dram_time_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x51D0_0005);
    for _ in 0..64 {
        let mut dram = Dram::new(DramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 4096,
            row_hit_latency: 160,
            row_miss_latency: 226,
            transfer_cycles: 14,
        });
        let mut now = 0u64;
        let n = rng.gen_range(1..200usize);
        for _ in 0..n {
            let block = rng.next_u64() as u32;
            now += rng.gen_range(0..1000u64);
            let ready = dram.read(BlockAddr::new(block as u64), now);
            assert!(ready > now, "ready {ready} <= now {now}");
            assert!(ready <= now + 1_000_000, "unbounded latency");
        }
    }
}

/// Prefetched lines are attributed exactly once: useful + useless never
/// exceeds completed prefetch fills.
#[test]
fn prefetch_attribution_conserves() {
    let mut rng = SmallRng::seed_from_u64(0x51D0_0006);
    for _ in 0..64 {
        let mut cache = Cache::new(small_cache_config());
        let mut now = 0;
        let mut fills = 0u64;
        let n = rng.gen_range(1..300usize);
        for _ in 0..n {
            now += 1;
            let op = rng.gen_range(0..3u8);
            let b = BlockAddr::new(rng.gen_range(0..256u64));
            match op {
                0 => {
                    let _ = cache.demand_access(b, now, false);
                }
                1 => {
                    if !cache.probe(b) && cache.mshr_available_for_prefetch(2) {
                        cache.allocate_fill(b, now + 10, true);
                    }
                }
                _ => {
                    if cache.complete_fill(b, false).is_some() || cache.probe(b) {
                        fills += 1;
                    }
                }
            }
        }
        let s = &cache.stats;
        assert!(
            s.pf_useful + s.pf_useless <= s.pf_late + fills + s.pf_useful,
            "attribution leak: useful {} useless {} fills {}",
            s.pf_useful,
            s.pf_useless,
            fills
        );
    }
}
