//! Integration tests of the memory system's less-traveled paths:
//! writeback flows, warmup resets, bank fairness, and prefetch
//! interaction with capacity pressure.

use bingo_sim::{
    Addr, BlockAddr, CoreId, Instr, IssueResult, MemorySystem, NoPrefetcher, Pc, Prefetcher,
    System, SystemConfig,
};

const CORE: CoreId = CoreId(0);
const PC: Pc = Pc::new(0x400);

fn tiny_mem() -> MemorySystem {
    MemorySystem::new(SystemConfig::tiny(), vec![Box::new(NoPrefetcher)])
}

fn settle(mem: &mut MemorySystem, upto: u64) {
    for t in 0..=upto {
        mem.tick(t);
    }
}

#[test]
fn dirty_l1_eviction_marks_llc_dirty_then_llc_eviction_writes_back() {
    let mut mem = tiny_mem();
    // Store to a block (dirty in L1), then thrash its L1 set so it is
    // evicted to the LLC; later thrash the LLC set so the dirty line is
    // written back to DRAM.
    let dirty = Addr::new(0);
    let t = match mem.store(CORE, PC, dirty, 0) {
        IssueResult::Done(t) => t,
        IssueResult::Stall => panic!("store stalled"),
    };
    settle(&mut mem, t);
    // tiny L1: 32 sets, 4 ways -> conflict stride = 32 blocks.
    let mut now = t + 1;
    for i in 1..=6u64 {
        if let IssueResult::Done(done) = mem.load(CORE, PC, Addr::new(i * 32 * 64), now) {
            settle(&mut mem, done);
            now = done + 1;
        }
    }
    let writes_before = mem.dram_stats().writes;
    // tiny LLC: 512 sets, 8 ways -> conflict stride = 512 blocks. Fill the
    // set of block 0 with 9 more lines to force the dirty eviction.
    for i in 1..=9u64 {
        if let IssueResult::Done(done) = mem.load(CORE, PC, Addr::new(i * 512 * 64), now) {
            settle(&mut mem, done);
            now = done + 1;
        }
    }
    assert!(
        mem.dram_stats().writes > writes_before,
        "dirty LLC eviction must produce a DRAM writeback"
    );
}

#[test]
fn prefetcher_sees_evictions_from_fills() {
    #[derive(Debug, Default)]
    struct EvictionCounter {
        evictions: std::cell::Cell<u64>,
    }
    impl Prefetcher for EvictionCounter {
        fn name(&self) -> &str {
            "EvictionCounter"
        }
        fn on_access(&mut self, _: &bingo_sim::AccessInfo, _: &mut Vec<BlockAddr>) {}
        fn on_eviction(&mut self, _: BlockAddr) {
            self.evictions.set(self.evictions.get() + 1);
        }
        fn debug_stats(&self) -> String {
            self.evictions.get().to_string()
        }
    }

    let mut mem = MemorySystem::new(
        SystemConfig::tiny(),
        vec![Box::new(EvictionCounter::default())],
    );
    let mut now = 0;
    // 9 conflicting LLC lines (8-way set) -> at least one eviction.
    for i in 0..9u64 {
        if let IssueResult::Done(done) = mem.load(CORE, PC, Addr::new(i * 512 * 64), now) {
            for t in now..=done {
                mem.tick(t);
            }
            now = done + 1;
        }
    }
    let evictions: u64 = mem.prefetcher_debug()[0].parse().expect("counter");
    assert!(evictions >= 1, "prefetcher must observe LLC evictions");
}

#[test]
fn warmup_resets_statistics_but_keeps_contents() {
    // Run the same stream with and without a warmup split; the warmed
    // run's measured misses must be far fewer (contents survived) and its
    // instruction count must exclude warmup.
    let cfg = SystemConfig::tiny();
    let src = || {
        let mut n = 0u64;
        Box::new(move || {
            n += 1;
            if n.is_multiple_of(4) {
                Instr::Load {
                    pc: PC,
                    // 512 distinct blocks, revisited round-robin: cold
                    // misses only in the first pass.
                    addr: Addr::new((n / 4 % 512) * 64),
                    dep: None,
                }
            } else {
                Instr::Op
            }
        }) as Box<dyn bingo_sim::InstrSource>
    };
    let cold = System::new(cfg, vec![src()], vec![Box::new(NoPrefetcher)], 40_000).run();
    let warmed = System::new(cfg, vec![src()], vec![Box::new(NoPrefetcher)], 40_000)
        .with_warmup(40_000)
        .run();
    assert_eq!(warmed.cores[0].instructions, 40_000);
    assert!(
        warmed.llc.demand_misses * 10 < cold.llc.demand_misses.max(1) * 10
            && warmed.llc.demand_misses < cold.llc.demand_misses,
        "warmed run must not re-pay cold misses ({} vs {})",
        warmed.llc.demand_misses,
        cold.llc.demand_misses
    );
    assert!(warmed.total_cycles < cold.total_cycles);
}

#[test]
fn banked_llc_serializes_same_bank_not_cross_bank() {
    let mut mem = tiny_mem(); // tiny LLC: 2 banks
                              // Warm two blocks in different banks and two in the same bank.
    let mut now = 0;
    for b in [0u64, 1, 2] {
        if let IssueResult::Done(done) = mem.load(CORE, PC, Addr::new(b * 64), now) {
            settle(&mut mem, done);
            now = done + 1;
        }
    }
    // L1-bypass check isn't possible from outside; instead verify the two
    // same-bank LLC accesses from different L1 sets cost one extra cycle.
    // (Covered in unit tests of Cache::bank_start; here we just assert the
    // system stays consistent and hits after warming.)
    let t1 = match mem.load(CORE, PC, Addr::new(0), now) {
        IssueResult::Done(t) => t,
        IssueResult::Stall => panic!(),
    };
    assert_eq!(t1, now + 4, "L1 hit after warming");
}

#[test]
fn issue_prefetch_populates_llc_only() {
    let mut mem = tiny_mem();
    mem.issue_prefetch(BlockAddr::new(777), 0);
    let last = mem.drain();
    // The block is an LLC hit but an L1 miss for a later demand.
    let t = match mem.load(CORE, PC, BlockAddr::new(777).base_addr(), last + 1) {
        IssueResult::Done(t) => t,
        IssueResult::Stall => panic!(),
    };
    assert_eq!(t - (last + 1), 4 + 15 + 1, "LLC hit, not an L1 hit");
    assert_eq!(mem.llc_stats().pf_useful, 1);
}

#[test]
fn multi_core_llc_is_shared() {
    let mut cfg = SystemConfig::tiny();
    cfg.cores = 2;
    let mut mem = MemorySystem::new(cfg, vec![Box::new(NoPrefetcher), Box::new(NoPrefetcher)]);
    // Core 0 fetches a block; core 1's access to the same block hits LLC.
    let addr = Addr::new(0x8000);
    let t = match mem.load(CoreId(0), PC, addr, 0) {
        IssueResult::Done(t) => t,
        IssueResult::Stall => panic!(),
    };
    settle(&mut mem, t);
    let misses_before = mem.llc_stats().demand_misses;
    match mem.load(CoreId(1), PC, addr, t + 1) {
        IssueResult::Done(_) => {}
        IssueResult::Stall => panic!(),
    }
    assert_eq!(
        mem.llc_stats().demand_misses,
        misses_before,
        "second core must hit the shared LLC"
    );
}
