//! Integration tests of the prefetch-lifecycle telemetry layer.
//!
//! Two guarantees are locked here:
//!
//! 1. **Telemetry is invisible.** Enabling it must not change the simulated
//!    machine: miss streams, cycle counts, and every other statistic are
//!    bit-for-bit identical between a telemetry-off and a telemetry-on run.
//! 2. **The ledger agrees with the cache.** The lifecycle classification
//!    (timely / late / unused / dropped) must equal the LLC's own `pf_*`
//!    counters exactly, including across a warmup reset, because both are
//!    driven by the same events.

use bingo_sim::{
    Addr, BlockAddr, CoreId, Instr, InstrSource, IssueResult, MemorySystem, NextLinePrefetcher,
    NoPrefetcher, Pc, SimResult, System, SystemConfig, TelemetryLevel,
};

fn streaming_source(core: usize) -> Box<dyn InstrSource> {
    let mut next = 0u64;
    let base = (core as u64) << 40;
    Box::new(move || {
        next += 1;
        if next.is_multiple_of(4) {
            Instr::Load {
                pc: Pc::new(0x400),
                addr: Addr::new(base + (next / 4) * 64),
                dep: None,
            }
        } else {
            Instr::Op
        }
    })
}

fn run_streaming(level: TelemetryLevel, warmup: u64) -> SimResult {
    let cfg = SystemConfig::tiny();
    System::new(
        cfg,
        vec![streaming_source(0)],
        vec![Box::new(NextLinePrefetcher::new(4))],
        30_000,
    )
    .with_warmup(warmup)
    .with_telemetry(level)
    .run()
}

/// Strips the telemetry report so two runs can be compared on the
/// simulated machine's behavior alone.
fn machine_view(mut r: SimResult) -> SimResult {
    r.telemetry = None;
    r
}

#[test]
fn telemetry_on_is_invisible() {
    let off = run_streaming(TelemetryLevel::Off, 0);
    let counts = run_streaming(TelemetryLevel::Counts, 0);
    let trace = run_streaming(TelemetryLevel::Trace, 0);
    assert!(off.telemetry.is_none());
    assert!(counts.telemetry.is_some());
    assert!(trace.telemetry.is_some());
    // Identical IPC, miss counts, and every other counter, at every level.
    assert_eq!(off, machine_view(counts), "counts level changed the run");
    assert_eq!(off, machine_view(trace), "trace level changed the run");
}

#[test]
fn telemetry_on_is_invisible_across_warmup_reset() {
    let off = run_streaming(TelemetryLevel::Off, 5_000);
    let on = run_streaming(TelemetryLevel::Counts, 5_000);
    assert_eq!(off, machine_view(on));
}

#[test]
fn ledger_agrees_with_cache_counters() {
    for warmup in [0, 5_000] {
        let r = run_streaming(TelemetryLevel::Counts, warmup);
        let t = r.telemetry.as_ref().expect("telemetry enabled");
        assert_eq!(t.issued, r.llc.pf_issued, "warmup={warmup}");
        assert_eq!(t.timely, r.llc.pf_useful, "warmup={warmup}");
        assert_eq!(t.late, r.llc.pf_late, "warmup={warmup}");
        assert_eq!(t.unused, r.llc.pf_useless, "warmup={warmup}");
        assert_eq!(t.dropped_duplicate, r.llc.pf_dropped_duplicate);
        assert_eq!(t.dropped_mshr, r.llc.pf_dropped_mshr);
        assert_eq!(t.orphans, 0, "normal runs never desync the ledger");
        assert_eq!(t.in_flight_at_end, 0, "drain settles every record");
        assert!(t.issued > 0, "streaming must prefetch");
        assert!(
            (t.accuracy() - r.llc.accuracy()).abs() < 1e-12,
            "derived accuracy must match"
        );
    }
}

#[test]
fn streaming_attributes_to_trigger_pc() {
    let r = run_streaming(TelemetryLevel::Counts, 0);
    let t = r.telemetry.as_ref().unwrap();
    // The stream has a single load PC: the hot list is exactly that PC and
    // carries the whole issue count.
    assert_eq!(t.hot_pcs.len(), 1);
    assert_eq!(t.hot_pcs[0].0, 0x400);
    assert_eq!(t.hot_pcs[0].1.issued, t.issued);
    // NextLine does not attribute events.
    assert_eq!(t.by_source.len(), 1);
    assert_eq!(t.by_source[0].0, "unattributed");
    assert_eq!(t.by_source[0].1.issued, t.issued);
}

const CORE: CoreId = CoreId(0);
const PC: Pc = Pc::new(0x400100);

fn mem_with_telemetry() -> MemorySystem {
    let mut mem = MemorySystem::new(SystemConfig::tiny(), vec![Box::new(NoPrefetcher)]);
    mem.set_telemetry(TelemetryLevel::Counts);
    mem
}

fn demand(mem: &mut MemorySystem, addr: u64, now: u64) -> u64 {
    match mem.load(CORE, PC, Addr::new(addr), now) {
        IssueResult::Done(t) => t,
        IssueResult::Stall => panic!("unexpected stall at cycle {now}"),
    }
}

/// Ticks the memory system through `[from, to]` so scheduled fills land.
/// (Unlike `drain`, this is a mid-run settle: no end-of-run accounting.)
fn run_to(mem: &mut MemorySystem, from: u64, to: u64) {
    for t in from..=to {
        mem.tick(t);
    }
}

#[test]
fn duplicate_issue_while_in_flight_is_a_dropped_record() {
    let mut mem = mem_with_telemetry();
    mem.issue_prefetch(BlockAddr::new(100), 0);
    mem.issue_prefetch(BlockAddr::new(100), 1); // still in flight
    mem.drain();
    let t = mem.telemetry_report().unwrap();
    assert_eq!(t.issued, 1);
    assert_eq!(t.dropped_duplicate, 1);
    assert_eq!(t.unused, 1, "the one real prefetch was never demanded");
    assert_eq!(t.orphans, 0, "a filtered duplicate never opens a record");
}

#[test]
fn prefetch_evicted_then_re_demanded_settles_once() {
    let mut mem = mem_with_telemetry();
    // Prefetch a block and let it fill.
    let victim = 7u64; // block index
    mem.issue_prefetch(BlockAddr::new(victim), 0);
    run_to(&mut mem, 0, 400);
    // Evict it with demand pressure on its LLC set: tiny LLC is 8-way with
    // 512 sets, so blocks at stride 512 conflict.
    let mut now = 401;
    for i in 1..=9u64 {
        let done = demand(&mut mem, (victim + i * 512) * 64, now);
        run_to(&mut mem, now, done);
        now = done + 1;
    }
    let evicted = mem.telemetry_report().unwrap();
    assert_eq!(evicted.unused, 1, "conflict pressure evicted the prefetch");
    // Re-demanding the same block is a plain miss: the ledger record is
    // already settled and must not reopen, double-count, or orphan.
    let done = demand(&mut mem, victim * 64, now);
    run_to(&mut mem, now, done);
    mem.drain();
    let t = mem.telemetry_report().unwrap();
    assert_eq!(t.unused, 1, "no double count after re-demand");
    assert_eq!(t.timely, 0, "a re-demanded evicted prefetch is not a hit");
    assert_eq!(t.orphans, 0);
    assert_eq!(t.unused, mem.llc_stats().pf_useless);
    assert_eq!(mem.llc_stats().pf_useful, 0);
}

#[test]
fn timely_and_late_paths_settle_against_cache_counters() {
    let mut mem = mem_with_telemetry();
    // Timely: prefetch, let the fill land, then demand.
    mem.issue_prefetch(BlockAddr::new(40), 0);
    run_to(&mut mem, 0, 400);
    let done = demand(&mut mem, 40 * 64, 401);
    // Late: prefetch, demand while still in flight.
    mem.issue_prefetch(BlockAddr::new(80), done + 1);
    demand(&mut mem, 80 * 64, done + 2);
    mem.drain();
    let t = mem.telemetry_report().unwrap();
    assert_eq!(t.timely, 1);
    assert_eq!(t.late, 1);
    assert_eq!(t.timely, mem.llc_stats().pf_useful);
    assert_eq!(t.late, mem.llc_stats().pf_late);
    assert_eq!(t.fills, 1, "late prefetch settled before its fill landed");
    assert!(t.fill_latency_sum > 0);
    assert_eq!(t.timeliness(), 0.5);
}
