//! Property tests of `Trace` parsing robustness: arbitrarily truncated or
//! bit-flipped `BGTR` bytes must produce a typed `Err` (or, for payload
//! flips, possibly a different valid trace) — never a panic, never an
//! attempt to allocate a liar's `count`.

use bingo_rng::rngs::SmallRng;
use bingo_rng::{Rng, SeedableRng};
use bingo_sim::{Addr, Instr, Pc, Trace};

/// A trace with every record kind, long enough that corruption has bytes
/// to land on.
fn sample_bytes(seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut instrs = Vec::new();
    for i in 0..64u64 {
        match rng.gen_range(0..3u32) {
            0 => instrs.push(Instr::Op),
            1 => instrs.push(Instr::Load {
                pc: Pc::new(0x400 + i * 4),
                addr: Addr::new(rng.gen_range(0..1u64 << 30)),
                dep: if rng.gen_bool(0.3) {
                    Some(rng.gen_range(0..4u32) as u8)
                } else {
                    None
                },
            }),
            _ => instrs.push(Instr::Store {
                pc: Pc::new(0x800 + i * 4),
                addr: Addr::new(rng.gen_range(0..1u64 << 30)),
            }),
        }
    }
    let trace = Trace::from_instrs(instrs);
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("serialize");
    bytes
}

#[test]
fn every_proper_prefix_is_a_typed_error_never_a_panic() {
    let bytes = sample_bytes(0x7ACE_0001);
    for len in 0..bytes.len() {
        let result = Trace::parse(&bytes[..len]);
        assert!(
            result.is_err(),
            "prefix of {len}/{} bytes must not parse as a complete trace",
            bytes.len()
        );
    }
    // The intact buffer, of course, still parses.
    assert!(Trace::parse(&bytes).is_ok());
}

#[test]
fn random_bit_flips_never_panic() {
    let bytes = sample_bytes(0x7ACE_0002);
    let mut rng = SmallRng::seed_from_u64(0x7ACE_0003);
    for _ in 0..2000 {
        let mut corrupted = bytes.clone();
        // 1..=8 random single-bit flips anywhere in the stream, header
        // included.
        for _ in 0..rng.gen_range(1..=8u32) {
            let byte = rng.gen_range(0..corrupted.len());
            let bit = rng.gen_range(0..8u32);
            corrupted[byte] ^= 1 << bit;
        }
        // Payload flips may legitimately decode to a *different* valid
        // trace; the property is purely "no panic, and any Ok parse is
        // internally consistent".
        if let Ok(trace) = Trace::parse(&corrupted) {
            let _ = trace.memory_accesses();
            assert!(
                trace.len() <= corrupted.len(),
                "records cannot outnumber bytes"
            );
        }
    }
}

#[test]
fn random_truncation_plus_flips_never_panics() {
    let bytes = sample_bytes(0x7ACE_0004);
    let mut rng = SmallRng::seed_from_u64(0x7ACE_0005);
    for _ in 0..2000 {
        let len = rng.gen_range(0..=bytes.len());
        let mut corrupted = bytes[..len].to_vec();
        if !corrupted.is_empty() && rng.gen_bool(0.5) {
            let byte = rng.gen_range(0..corrupted.len());
            corrupted[byte] = corrupted[byte].wrapping_add(rng.gen_range(1..=255u32) as u8);
        }
        let _ = Trace::parse(&corrupted); // must not panic or over-allocate
    }
}

#[test]
fn corrupted_count_field_cannot_cause_huge_allocation() {
    let bytes = sample_bytes(0x7ACE_0006);
    // The count lives at offset 8 (after magic + version); force every
    // byte pattern of its high byte, including absurd counts.
    for high in 0..=255u8 {
        let mut corrupted = bytes.clone();
        corrupted[15] = high; // most significant byte of the LE count
        let _ = Trace::parse(&corrupted); // completing without OOM/abort is the assertion
    }
}
