//! Replaying captured traces into the simulator, and capturing live
//! sources into trace files.
//!
//! [`ReplaySource`] adapts a framed trace file to the simulator's
//! [`InstrSource`] contract (an infinite stream): when the trace is
//! exhausted it reopens the file and wraps around, accumulating the
//! ingestion report across passes. Under [`Policy::Strict`] a corrupt
//! byte panics with the typed error — inside a bench cell that panic is
//! caught and becomes a `CellOutcome::Panicked` with the byte offset in
//! its message. Under [`Policy::Lenient`] corruption is quarantined and
//! the replay continues on whatever records survive.

use std::fs::File;
use std::io::{self, BufReader, Seek, Write};
use std::path::{Path, PathBuf};

use bingo_sim::{IngestReport, Instr, InstrSource};

use crate::error::ReadError;
use crate::reader::{Policy, TraceReader};
use crate::writer::TraceWriter;

/// An [`InstrSource`] that replays a framed trace file, looping forever.
pub struct ReplaySource {
    path: PathBuf,
    policy: Policy,
    reader: TraceReader<BufReader<File>>,
    /// Ingestion totals from completed passes over the file.
    completed: IngestReport,
    /// Completed wrap-arounds.
    passes: u64,
}

impl std::fmt::Debug for ReplaySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplaySource")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("passes", &self.passes)
            .finish_non_exhaustive()
    }
}

impl ReplaySource {
    /// Opens `path` for replay under `policy`.
    pub fn open(path: impl Into<PathBuf>, policy: Policy) -> Result<Self, ReadError> {
        let path = path.into();
        let reader = Self::open_reader(&path, policy)?;
        Ok(ReplaySource {
            path,
            policy,
            reader,
            completed: IngestReport::default(),
            passes: 0,
        })
    }

    fn open_reader(path: &Path, policy: Policy) -> Result<TraceReader<BufReader<File>>, ReadError> {
        let file = File::open(path).map_err(|error| ReadError::Io { offset: 0, error })?;
        TraceReader::new(BufReader::new(file), policy)
    }

    /// The trace file being replayed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed wrap-arounds over the file.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// High-water memory mark of the current pass's reader.
    pub fn peak_resident_bytes(&self) -> usize {
        self.reader.peak_resident_bytes()
    }
}

impl InstrSource for ReplaySource {
    fn next_instr(&mut self) -> Instr {
        loop {
            match self.reader.next_instr() {
                Ok(Some(instr)) => return instr,
                Ok(None) => {
                    let pass = self.reader.report();
                    // A pass that delivered nothing would loop forever;
                    // fail loudly instead (lenient mode can hit this
                    // when every chunk of a short trace is corrupt).
                    assert!(
                        pass.delivered_records > 0,
                        "trace {}: no decodable records to replay",
                        self.path.display()
                    );
                    self.completed.absorb(&pass);
                    self.passes += 1;
                    match Self::open_reader(&self.path, self.policy) {
                        Ok(reader) => self.reader = reader,
                        Err(err) => panic!(
                            "trace {}: reopen for pass {} failed: {err}",
                            self.path.display(),
                            self.passes + 1
                        ),
                    }
                }
                Err(err) => panic!("trace {}: {err}", self.path.display()),
            }
        }
    }

    fn ingest_report(&self) -> Option<IngestReport> {
        let mut total = self.completed;
        total.absorb(&self.reader.report());
        Some(total)
    }
}

/// Captures `records` instructions from `source` into `sink` as a framed
/// trace with `chunk_records` records per chunk. Returns the total
/// written (always `records`).
pub fn capture_source<W: Write + Seek>(
    source: &mut dyn InstrSource,
    records: u64,
    chunk_records: u32,
    sink: W,
) -> io::Result<u64> {
    let mut writer = TraceWriter::new(sink, chunk_records)?;
    for _ in 0..records {
        writer.push(source.next_instr())?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use bingo_sim::{Addr, Pc};

    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bingo-trace-tests");
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join(format!("{name}-{}.btrc", std::process::id()))
    }

    fn synthetic() -> Box<dyn InstrSource> {
        let mut n = 0u64;
        Box::new(move || {
            n += 1;
            if n.is_multiple_of(3) {
                Instr::Load {
                    pc: Pc::new(0x400),
                    addr: Addr::new(n * 64),
                    dep: None,
                }
            } else {
                Instr::Op
            }
        })
    }

    #[test]
    fn replay_wraps_around_and_accumulates_reports() {
        let path = scratch("wrap");
        let file = File::create(&path).expect("create");
        capture_source(&mut *synthetic(), 10, 4, file).expect("capture");

        let mut replay = ReplaySource::open(&path, Policy::Strict).expect("open");
        let mut live = synthetic();
        // Two full passes: the wrap must restart the stream exactly.
        for pass in 0..2 {
            for i in 0..10 {
                assert_eq!(
                    replay.next_instr(),
                    live.next_instr(),
                    "pass {pass} record {i}"
                );
            }
            live = synthetic();
        }
        assert_eq!(replay.passes(), 1);
        let report = replay.ingest_report().expect("replay reports");
        assert_eq!(report.delivered_records, 20);
        assert!(report.is_clean());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "no decodable records")]
    fn empty_trace_fails_loudly_instead_of_spinning() {
        let path = scratch("empty");
        let file = File::create(&path).expect("create");
        capture_source(&mut *synthetic(), 0, 4, file).expect("capture");
        let mut replay = ReplaySource::open(&path, Policy::Strict).expect("open");
        let _ = replay.next_instr();
    }
}
