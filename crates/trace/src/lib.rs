//! # bingo-trace — hardened streaming trace ingestion
//!
//! Everything the reproduction needs to record, replay, and distrust
//! instruction traces. Trace files are treated as untrusted input end to
//! end: the on-disk format is framed into CRC-32-protected chunks, the
//! reader holds at most one chunk in memory regardless of trace length,
//! and every way a file can lie — truncation, bit rot, reordered or
//! forged chunks, impossible records — maps to either a typed error
//! with a byte offset (strict mode) or a counted quarantine that lets
//! the simulation finish on the surviving records (lenient mode).
//!
//! * [`format`] — the framed `.btrc` layout and record encoding.
//! * [`crc32`] — hand-rolled IEEE CRC-32 (the workspace is offline; no
//!   external crates).
//! * [`reader`] / [`writer`] — bounded-memory streaming codec.
//! * [`replay`] — [`ReplaySource`], the simulator-facing
//!   [`bingo_sim::InstrSource`] that loops a trace file, plus
//!   [`capture_source`] for recording live generators.
//! * [`raw`] — best-effort decoding of headerless ChampSim-style flat
//!   record streams.
//! * [`corrupt`] — seeded corruption operators for the adversarial
//!   decoder fuzzer.
//!
//! ## Quickstart
//!
//! ```
//! use std::io::Cursor;
//! use bingo_sim::Instr;
//! use bingo_trace::{Policy, TraceReader, TraceWriter};
//!
//! let mut file = Cursor::new(Vec::new());
//! let mut writer = TraceWriter::new(&mut file, 256).unwrap();
//! for _ in 0..1000 {
//!     writer.push(Instr::Op).unwrap();
//! }
//! writer.finish().unwrap();
//!
//! let mut reader = TraceReader::new(Cursor::new(file.into_inner()), Policy::Strict).unwrap();
//! let mut n = 0;
//! while let Some(instr) = reader.next_instr().unwrap() {
//!     assert_eq!(instr, Instr::Op);
//!     n += 1;
//! }
//! assert_eq!(n, 1000);
//! assert!(reader.report().is_clean());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corrupt;
pub mod crc32;
pub mod error;
pub mod format;
pub mod raw;
pub mod reader;
pub mod replay;
pub mod writer;

pub use corrupt::{apply, plan_for_seed, CorruptionOp};
pub use error::ReadError;
pub use format::{TraceHeader, DEFAULT_CHUNK_RECORDS, MAX_CHUNK_RECORDS};
pub use raw::RawReader;
pub use reader::{Policy, TraceReader};
pub use replay::{capture_source, ReplaySource};
pub use writer::TraceWriter;
