//! Typed errors for the framed trace format.
//!
//! Every variant carries the byte offset in the input stream where the
//! problem was detected, so a strict-mode failure pinpoints the corrupt
//! region of a multi-gigabyte capture without re-reading it.

use std::fmt;
use std::io;

/// A decoding failure, with the byte offset where it was detected.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io {
        /// Stream offset at which the read was attempted.
        offset: u64,
        /// The OS-level cause.
        error: io::Error,
    },
    /// The file does not start with [`crate::format::FILE_MAGIC`].
    BadMagic {
        /// Always 0: the magic is the first thing read.
        offset: u64,
    },
    /// The header declares a version this crate does not speak.
    BadVersion {
        /// Offset of the version field.
        offset: u64,
        /// The declared version.
        version: u32,
    },
    /// The header's records-per-chunk is zero or exceeds
    /// [`crate::format::MAX_CHUNK_RECORDS`].
    BadChunkCapacity {
        /// Offset of the chunk-capacity field.
        offset: u64,
        /// The declared capacity.
        chunk_records: u32,
    },
    /// The stream ended before a complete header, chunk header, or
    /// payload could be read.
    Truncated {
        /// Offset at which more bytes were expected.
        offset: u64,
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// A chunk does not start with [`crate::format::CHUNK_MAGIC`].
    BadChunkMagic {
        /// Offset of the malformed chunk header.
        offset: u64,
    },
    /// A chunk declares more records than the header's per-chunk
    /// capacity, or zero records.
    OversizedChunk {
        /// Offset of the chunk header.
        offset: u64,
        /// The declared record count.
        records: u32,
        /// The per-chunk capacity from the file header.
        limit: u32,
    },
    /// A chunk's payload length is impossible for its record count
    /// (below one byte per record or above the worst-case encoding).
    BadPayloadLength {
        /// Offset of the chunk header.
        offset: u64,
        /// The declared payload length.
        len: u32,
        /// The declared record count.
        records: u32,
    },
    /// The payload's CRC-32 does not match the chunk header.
    ChecksumMismatch {
        /// Offset of the payload.
        offset: u64,
        /// Checksum declared in the chunk header.
        expected: u32,
        /// Checksum computed over the payload actually read.
        actual: u32,
    },
    /// A record has an unknown kind tag.
    BadRecord {
        /// Offset of the offending kind byte.
        offset: u64,
        /// The unknown tag.
        kind: u8,
    },
    /// The payload ended mid-record.
    RecordTruncated {
        /// Offset of the truncated record.
        offset: u64,
    },
    /// The payload has bytes left over after its declared record count.
    TrailingPayload {
        /// Offset of the first leftover byte.
        offset: u64,
        /// Leftover byte count.
        bytes: u64,
    },
    /// The stream ended cleanly but delivered fewer records than the
    /// file header promised.
    MissingRecords {
        /// Offset of end-of-stream.
        offset: u64,
        /// Records promised by the file header.
        declared: u64,
        /// Records actually decoded.
        delivered: u64,
    },
    /// Bytes remain after the declared record count was delivered.
    TrailingData {
        /// Offset of the first trailing byte.
        offset: u64,
        /// Trailing bytes observed before reporting (may be a lower
        /// bound for non-seekable streams).
        bytes: u64,
    },
}

impl ReadError {
    /// Byte offset in the input stream where the error was detected.
    pub fn offset(&self) -> u64 {
        match *self {
            ReadError::Io { offset, .. }
            | ReadError::BadMagic { offset }
            | ReadError::BadVersion { offset, .. }
            | ReadError::BadChunkCapacity { offset, .. }
            | ReadError::Truncated { offset, .. }
            | ReadError::BadChunkMagic { offset }
            | ReadError::OversizedChunk { offset, .. }
            | ReadError::BadPayloadLength { offset, .. }
            | ReadError::ChecksumMismatch { offset, .. }
            | ReadError::BadRecord { offset, .. }
            | ReadError::RecordTruncated { offset }
            | ReadError::TrailingPayload { offset, .. }
            | ReadError::MissingRecords { offset, .. }
            | ReadError::TrailingData { offset, .. } => offset,
        }
    }
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io { offset, error } => {
                write!(f, "I/O error at byte {offset}: {error}")
            }
            ReadError::BadMagic { offset } => {
                write!(f, "bad file magic at byte {offset} (not a BGTRACE2 trace)")
            }
            ReadError::BadVersion { offset, version } => {
                write!(f, "unsupported trace version {version} at byte {offset}")
            }
            ReadError::BadChunkCapacity {
                offset,
                chunk_records,
            } => write!(
                f,
                "impossible chunk capacity {chunk_records} at byte {offset}"
            ),
            ReadError::Truncated { offset, context } => {
                write!(f, "truncated {context} at byte {offset}")
            }
            ReadError::BadChunkMagic { offset } => {
                write!(f, "bad chunk magic at byte {offset}")
            }
            ReadError::OversizedChunk {
                offset,
                records,
                limit,
            } => write!(
                f,
                "chunk at byte {offset} declares {records} record(s), limit {limit}"
            ),
            ReadError::BadPayloadLength {
                offset,
                len,
                records,
            } => write!(
                f,
                "chunk at byte {offset} declares impossible payload length {len} for {records} record(s)"
            ),
            ReadError::ChecksumMismatch {
                offset,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch at byte {offset}: header says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            ReadError::BadRecord { offset, kind } => {
                write!(f, "unknown record kind {kind} at byte {offset}")
            }
            ReadError::RecordTruncated { offset } => {
                write!(f, "record truncated at byte {offset}")
            }
            ReadError::TrailingPayload { offset, bytes } => {
                write!(f, "{bytes} stray payload byte(s) at byte {offset}")
            }
            ReadError::MissingRecords {
                offset,
                declared,
                delivered,
            } => write!(
                f,
                "stream ended at byte {offset} after {delivered} of {declared} declared record(s)"
            ),
            ReadError::TrailingData { offset, bytes } => {
                write!(f, "{bytes} trailing byte(s) at byte {offset}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_offset() {
        let errors = [
            ReadError::Io {
                offset: 17,
                error: io::Error::other("boom"),
            },
            ReadError::BadMagic { offset: 0 },
            ReadError::BadVersion {
                offset: 8,
                version: 9,
            },
            ReadError::BadChunkCapacity {
                offset: 12,
                chunk_records: 0,
            },
            ReadError::Truncated {
                offset: 24,
                context: "chunk header",
            },
            ReadError::BadChunkMagic { offset: 24 },
            ReadError::OversizedChunk {
                offset: 24,
                records: 99,
                limit: 4,
            },
            ReadError::BadPayloadLength {
                offset: 24,
                len: 1,
                records: 44,
            },
            ReadError::ChecksumMismatch {
                offset: 40,
                expected: 1,
                actual: 2,
            },
            ReadError::BadRecord {
                offset: 41,
                kind: 250,
            },
            ReadError::RecordTruncated { offset: 43 },
            ReadError::TrailingPayload {
                offset: 50,
                bytes: 3,
            },
            ReadError::MissingRecords {
                offset: 60,
                declared: 10,
                delivered: 4,
            },
            ReadError::TrailingData {
                offset: 70,
                bytes: 12,
            },
        ];
        for err in errors {
            let shown = err.to_string();
            assert!(
                shown.contains(&format!("byte {}", err.offset())),
                "{shown:?} lost its byte offset"
            );
        }
    }
}
