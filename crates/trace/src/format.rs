//! The framed binary trace format (`.btrc`), version 1.
//!
//! The in-memory v1 format of `bingo_sim::trace` (`BGTR`) holds the whole
//! instruction stream in one unframed blob: fine for small traces, but a
//! multi-gigabyte capture would have to be resident in full, and a single
//! flipped byte poisons everything after it. The framed format fixes both:
//!
//! ```text
//! file header (24 bytes):
//!   magic         [u8; 8] = "BGTRACE2"
//!   version       u32     = 1
//!   chunk_records u32         records per full chunk (1..=MAX_CHUNK_RECORDS)
//!   total_records u64         records in the whole trace
//! chunks, until total_records are delivered:
//!   magic       [u8; 4] = "BGCK"
//!   records     u32         records in this chunk (1..=chunk_records;
//!                           only the final chunk may be short)
//!   payload_len u32         payload bytes (records..=records*MAX_RECORD_BYTES)
//!   crc32       u32         CRC-32 (IEEE) of the payload bytes
//!   payload     [u8; payload_len]
//! ```
//!
//! Records inside a payload use the v1 encoding, little-endian:
//!
//! ```text
//! kind u8   (0 = op, 1 = load, 2 = store)
//! loads:  pc u64, addr u64, dep u8 (0xFF = none)
//! stores: pc u64, addr u64
//! ```
//!
//! Every multi-byte integer is little-endian. The chunk framing gives a
//! reader three properties the flat format cannot: memory is bounded by
//! one chunk regardless of trace length, corruption is detected by the
//! per-chunk CRC before any record is trusted, and a lenient reader can
//! resynchronize at the next valid chunk instead of abandoning the file.

use bingo_sim::{Addr, Instr, Pc};

/// File magic. Distinct from the flat format's `BGTR` so a misfed file is
/// a typed error, never a silent misparse.
pub const FILE_MAGIC: [u8; 8] = *b"BGTRACE2";

/// Format version this crate reads and writes.
pub const VERSION: u32 = 1;

/// Chunk magic, the lenient reader's resynchronization anchor.
pub const CHUNK_MAGIC: [u8; 4] = *b"BGCK";

/// File-header size in bytes.
pub const FILE_HEADER_BYTES: u64 = 24;

/// Chunk-header size in bytes.
pub const CHUNK_HEADER_BYTES: u64 = 16;

/// Upper bound on `chunk_records`: caps reader memory at
/// `MAX_CHUNK_RECORDS * MAX_RECORD_BYTES` (18 MB) no matter what a
/// corrupt header claims.
pub const MAX_CHUNK_RECORDS: u32 = 1 << 20;

/// Largest record encoding (a load: kind + pc + addr + dep).
pub const MAX_RECORD_BYTES: u32 = 18;

/// Default records per chunk (64 KB-ish chunks for op-heavy streams).
pub const DEFAULT_CHUNK_RECORDS: u32 = 16 * 1024;

/// Record kind tags.
pub const KIND_OP: u8 = 0;
/// Load record tag.
pub const KIND_LOAD: u8 = 1;
/// Store record tag.
pub const KIND_STORE: u8 = 2;

/// The parsed file header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version (currently always [`VERSION`]).
    pub version: u32,
    /// Records per full chunk.
    pub chunk_records: u32,
    /// Records in the whole trace.
    pub total_records: u64,
}

impl TraceHeader {
    /// Hard bound on a conforming chunk's payload length under this
    /// header — the reader's single-chunk memory budget.
    pub fn max_payload_bytes(&self) -> u64 {
        self.chunk_records as u64 * MAX_RECORD_BYTES as u64
    }
}

/// Appends one record's encoding to `out`.
pub fn encode_record(out: &mut Vec<u8>, instr: Instr) {
    match instr {
        Instr::Op => out.push(KIND_OP),
        Instr::Load { pc, addr, dep } => {
            out.push(KIND_LOAD);
            out.extend_from_slice(&pc.raw().to_le_bytes());
            out.extend_from_slice(&addr.raw().to_le_bytes());
            out.push(dep.map_or(0xFF, |c| c.min(0xFE)));
        }
        Instr::Store { pc, addr } => {
            out.push(KIND_STORE);
            out.extend_from_slice(&pc.raw().to_le_bytes());
            out.extend_from_slice(&addr.raw().to_le_bytes());
        }
    }
}

/// Outcome of decoding one record from a payload slice.
#[derive(Debug, PartialEq, Eq)]
pub enum RecordDecode {
    /// A record and the number of payload bytes it consumed.
    Ok(Instr, usize),
    /// The payload ended mid-record.
    Truncated,
    /// The kind tag is not a known record.
    BadKind(u8),
}

/// Decodes the record starting at `payload[0]`.
pub fn decode_record(payload: &[u8]) -> RecordDecode {
    let Some(&kind) = payload.first() else {
        return RecordDecode::Truncated;
    };
    let take_u64 = |at: usize| -> Option<u64> {
        payload
            .get(at..at + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    };
    match kind {
        KIND_OP => RecordDecode::Ok(Instr::Op, 1),
        KIND_LOAD => {
            let (Some(pc), Some(addr), Some(&dep)) = (take_u64(1), take_u64(9), payload.get(17))
            else {
                return RecordDecode::Truncated;
            };
            RecordDecode::Ok(
                Instr::Load {
                    pc: Pc::new(pc),
                    addr: Addr::new(addr),
                    dep: if dep == 0xFF { None } else { Some(dep) },
                },
                18,
            )
        }
        KIND_STORE => {
            let (Some(pc), Some(addr)) = (take_u64(1), take_u64(9)) else {
                return RecordDecode::Truncated;
            };
            RecordDecode::Ok(
                Instr::Store {
                    pc: Pc::new(pc),
                    addr: Addr::new(addr),
                },
                17,
            )
        }
        k => RecordDecode::BadKind(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Instr> {
        vec![
            Instr::Op,
            Instr::Load {
                pc: Pc::new(0x400),
                addr: Addr::new(0x1000),
                dep: None,
            },
            Instr::Load {
                pc: Pc::new(0x404),
                addr: Addr::new(u64::MAX),
                dep: Some(7),
            },
            Instr::Store {
                pc: Pc::new(0x408),
                addr: Addr::new(0x3000),
            },
        ]
    }

    #[test]
    fn record_round_trip() {
        for instr in samples() {
            let mut buf = Vec::new();
            encode_record(&mut buf, instr);
            assert!(buf.len() <= MAX_RECORD_BYTES as usize);
            assert_eq!(decode_record(&buf), RecordDecode::Ok(instr, buf.len()));
        }
    }

    #[test]
    fn truncation_and_bad_kind_are_typed() {
        let mut buf = Vec::new();
        encode_record(
            &mut buf,
            Instr::Load {
                pc: Pc::new(1),
                addr: Addr::new(2),
                dep: None,
            },
        );
        for cut in 1..buf.len() {
            assert_eq!(decode_record(&buf[..cut]), RecordDecode::Truncated);
        }
        assert_eq!(decode_record(&[9u8]), RecordDecode::BadKind(9));
        assert_eq!(decode_record(&[]), RecordDecode::Truncated);
    }
}
