//! Chunked trace writer.
//!
//! Streams records out in CRC-protected chunks, holding at most one
//! chunk's payload in memory — the capture-side mirror of the reader's
//! bounded-residency guarantee. The file header's `total_records` field
//! is written as a placeholder and patched on [`TraceWriter::finish`],
//! so captures of unknown length need no second pass.

use std::io::{self, Seek, SeekFrom, Write};

use bingo_sim::Instr;

use crate::crc32::crc32;
use crate::format::{encode_record, CHUNK_MAGIC, FILE_MAGIC, MAX_CHUNK_RECORDS, VERSION};

/// Byte offset of `total_records` in the file header.
const TOTAL_FIELD_OFFSET: u64 = 16;

/// Writes a framed trace to any `Write + Seek` sink.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    inner: W,
    chunk_records: u32,
    payload: Vec<u8>,
    in_chunk: u32,
    total: u64,
    finished: bool,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Creates a writer and emits the file header.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero or exceeds
    /// [`MAX_CHUNK_RECORDS`] — a caller bug, not an input condition.
    pub fn new(mut inner: W, chunk_records: u32) -> io::Result<Self> {
        assert!(
            (1..=MAX_CHUNK_RECORDS).contains(&chunk_records),
            "chunk_records must be in 1..={MAX_CHUNK_RECORDS}, got {chunk_records}"
        );
        inner.write_all(&FILE_MAGIC)?;
        inner.write_all(&VERSION.to_le_bytes())?;
        inner.write_all(&chunk_records.to_le_bytes())?;
        inner.write_all(&0u64.to_le_bytes())?; // total_records placeholder
        Ok(TraceWriter {
            inner,
            chunk_records,
            payload: Vec::new(),
            in_chunk: 0,
            total: 0,
            finished: false,
        })
    }

    /// Appends one record, flushing a chunk when it fills.
    pub fn push(&mut self, instr: Instr) -> io::Result<()> {
        debug_assert!(!self.finished, "push after finish");
        encode_record(&mut self.payload, instr);
        self.in_chunk += 1;
        self.total += 1;
        if self.in_chunk == self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Records written so far.
    pub fn total_records(&self) -> u64 {
        self.total
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.in_chunk == 0 {
            return Ok(());
        }
        self.inner.write_all(&CHUNK_MAGIC)?;
        self.inner.write_all(&self.in_chunk.to_le_bytes())?;
        self.inner
            .write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.inner.write_all(&crc32(&self.payload).to_le_bytes())?;
        self.inner.write_all(&self.payload)?;
        self.payload.clear();
        self.in_chunk = 0;
        Ok(())
    }

    /// Flushes the final partial chunk, patches the header's record
    /// count, and returns the total records written.
    pub fn finish(mut self) -> io::Result<u64> {
        self.flush_chunk()?;
        self.finished = true;
        let end = self.inner.stream_position()?;
        self.inner.seek(SeekFrom::Start(TOTAL_FIELD_OFFSET))?;
        self.inner.write_all(&self.total.to_le_bytes())?;
        self.inner.seek(SeekFrom::Start(end))?;
        self.inner.flush()?;
        Ok(self.total)
    }
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use bingo_sim::{Addr, Pc};

    use super::*;
    use crate::reader::{Policy, TraceReader};

    fn sample(n: u64) -> Instr {
        match n % 3 {
            0 => Instr::Op,
            1 => Instr::Load {
                pc: Pc::new(0x400 + n),
                addr: Addr::new(n * 64),
                dep: if n.is_multiple_of(5) {
                    Some((n % 4) as u8)
                } else {
                    None
                },
            },
            _ => Instr::Store {
                pc: Pc::new(0x500 + n),
                addr: Addr::new(n * 64 + 8),
            },
        }
    }

    #[test]
    fn write_read_round_trip_with_partial_final_chunk() {
        let mut file = Cursor::new(Vec::new());
        let mut w = TraceWriter::new(&mut file, 7).expect("header");
        for n in 0..23 {
            w.push(sample(n)).expect("push");
        }
        assert_eq!(w.finish().expect("finish"), 23);

        let bytes = file.into_inner();
        let mut r = TraceReader::new(Cursor::new(&bytes), Policy::Strict).expect("open");
        let header = r.header().expect("header parsed");
        assert_eq!(header.total_records, 23);
        assert_eq!(header.chunk_records, 7);
        for n in 0..23 {
            assert_eq!(r.next_instr().expect("read"), Some(sample(n)), "record {n}");
        }
        assert_eq!(r.next_instr().expect("clean end"), None);
        let report = r.report();
        assert_eq!(report.delivered_records, 23);
        assert!(report.is_clean());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut file = Cursor::new(Vec::new());
        let w = TraceWriter::new(&mut file, 4).expect("header");
        assert_eq!(w.finish().expect("finish"), 0);
        let mut r = TraceReader::new(Cursor::new(file.into_inner()), Policy::Strict).expect("open");
        assert_eq!(r.next_instr().expect("end"), None);
        assert!(r.report().is_clean());
    }

    #[test]
    #[should_panic(expected = "chunk_records must be")]
    fn zero_chunk_capacity_is_a_caller_bug() {
        let _ = TraceWriter::new(Cursor::new(Vec::new()), 0);
    }
}
