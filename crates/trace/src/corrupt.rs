//! Deterministic corruption operators for adversarial decoder testing.
//!
//! A [`CorruptionPlan`] is a seeded, reproducible list of byte-level
//! mutations — truncations, bit flips, chunk swaps, garbage prefixes,
//! mid-record amputations — applied to a well-formed trace image. The
//! fuzz driver asserts that every corrupted image either decodes, yields
//! a typed error (strict), or is quarantined (lenient); a plan that
//! provokes a panic is shrunk to a minimal reproducer with
//! `bingo_oracle`'s delta-debugging loop, which is why the plan is a
//! plain `Vec` of small self-describing ops.

use bingo_rng::{Rng, SeedableRng, SmallRng};

use crate::format::{CHUNK_HEADER_BYTES, CHUNK_MAGIC, FILE_HEADER_BYTES};

/// One byte-level mutation of a trace image.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CorruptionOp {
    /// Cut the image to `keep` bytes (mid-record and mid-header EOFs).
    Truncate {
        /// Bytes to keep from the front.
        keep: u64,
    },
    /// Flip bit `bit` of the byte at `offset` (offsets wrap modulo the
    /// image length, so shrunk plans stay applicable).
    BitFlip {
        /// Target byte offset.
        offset: u64,
        /// Bit index 0..8.
        bit: u8,
    },
    /// Swap chunk `a` with chunk `b` (indices into the chunk sequence;
    /// out-of-range indices are ignored). Reordering preserves every
    /// CRC, probing the reader's positional bookkeeping instead.
    SwapChunks {
        /// First chunk index.
        a: u32,
        /// Second chunk index.
        b: u32,
    },
    /// Overwrite the first `len` bytes with a pseudo-random pattern
    /// derived from `seed` (garbage file/chunk headers).
    GarbageHeader {
        /// Bytes to scramble from offset 0.
        len: u32,
        /// Pattern seed.
        seed: u64,
    },
}

/// Applies `ops` in order to a copy of `image`.
pub fn apply(image: &[u8], ops: &[CorruptionOp]) -> Vec<u8> {
    let mut bytes = image.to_vec();
    for &op in ops {
        match op {
            CorruptionOp::Truncate { keep } => {
                bytes.truncate(keep.min(bytes.len() as u64) as usize);
            }
            CorruptionOp::BitFlip { offset, bit } => {
                if !bytes.is_empty() {
                    let at = (offset % bytes.len() as u64) as usize;
                    bytes[at] ^= 1 << (bit % 8);
                }
            }
            CorruptionOp::SwapChunks { a, b } => {
                let chunks = chunk_spans(&bytes);
                let (a, b) = (a as usize, b as usize);
                if a < chunks.len() && b < chunks.len() && a != b {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    let (ls, le) = chunks[lo];
                    let (hs, he) = chunks[hi];
                    let mut rebuilt = Vec::with_capacity(bytes.len());
                    rebuilt.extend_from_slice(&bytes[..ls]);
                    rebuilt.extend_from_slice(&bytes[hs..he]);
                    rebuilt.extend_from_slice(&bytes[le..hs]);
                    rebuilt.extend_from_slice(&bytes[ls..le]);
                    rebuilt.extend_from_slice(&bytes[he..]);
                    bytes = rebuilt;
                }
            }
            CorruptionOp::GarbageHeader { len, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let end = (len as usize).min(bytes.len());
                for byte in &mut bytes[..end] {
                    *byte = rng.gen_range(0..=255u8);
                }
            }
        }
    }
    bytes
}

/// Byte spans `(start, end)` of each chunk in a well-formed image,
/// walked structurally (header sizes, not magic scanning). Stops at the
/// first span that doesn't parse, so partially corrupt images yield the
/// intact prefix.
fn chunk_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut at = FILE_HEADER_BYTES as usize;
    while at + CHUNK_HEADER_BYTES as usize <= bytes.len() {
        if bytes[at..at + 4] != CHUNK_MAGIC {
            break;
        }
        let payload_len =
            u32::from_le_bytes(bytes[at + 8..at + 12].try_into().expect("4 bytes")) as usize;
        let end = at + CHUNK_HEADER_BYTES as usize + payload_len;
        if end > bytes.len() {
            break;
        }
        spans.push((at, end));
        at = end;
    }
    spans
}

/// Draws a random corruption plan of 1–4 ops for `seed` against an
/// image of `image_len` bytes. Deterministic: the same seed and length
/// always produce the same plan.
pub fn plan_for_seed(seed: u64, image_len: u64) -> Vec<CorruptionOp> {
    // Domain-separation tag keeps this stream disjoint from other seeded
    // streams in the workspace that share small integer seeds.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xB1B0_7ACE_5EED_C0DE);
    let ops = rng.gen_range(1..=4usize);
    (0..ops).map(|_| draw_op(&mut rng, image_len)).collect()
}

fn draw_op(rng: &mut SmallRng, image_len: u64) -> CorruptionOp {
    let len = image_len.max(1);
    match rng.gen_range(0..5u32) {
        0 => CorruptionOp::Truncate {
            keep: rng.gen_range(0..len),
        },
        1 => CorruptionOp::BitFlip {
            offset: rng.gen_range(0..len),
            bit: rng.gen_range(0..8u8),
        },
        2 => CorruptionOp::SwapChunks {
            a: rng.gen_range(0..32u32),
            b: rng.gen_range(0..32u32),
        },
        3 => CorruptionOp::GarbageHeader {
            len: rng.gen_range(1..=FILE_HEADER_BYTES as u32 + CHUNK_HEADER_BYTES as u32),
            seed: rng.next_u64(),
        },
        // Mid-record EOF: truncate just past a plausible record start.
        _ => CorruptionOp::Truncate {
            keep: rng
                .gen_range(0..len)
                .saturating_add(rng.gen_range(1..18u64))
                .min(len.saturating_sub(1)),
        },
    }
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use bingo_sim::Instr;

    use super::*;
    use crate::writer::TraceWriter;

    fn image() -> Vec<u8> {
        let mut file = Cursor::new(Vec::new());
        let mut w = TraceWriter::new(&mut file, 4).expect("header");
        for n in 0..16u64 {
            // Distinct addresses so distinct chunks have distinct bytes.
            w.push(Instr::Store {
                pc: bingo_sim::Pc::new(0x400 + n),
                addr: bingo_sim::Addr::new(n * 64),
            })
            .expect("push");
        }
        w.finish().expect("finish");
        file.into_inner()
    }

    #[test]
    fn plans_are_deterministic() {
        let img = image();
        for seed in 0..50 {
            let a = plan_for_seed(seed, img.len() as u64);
            let b = plan_for_seed(seed, img.len() as u64);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(apply(&img, &a), apply(&img, &b), "seed {seed}");
        }
    }

    #[test]
    fn swap_preserves_length_and_content_multiset() {
        let img = image();
        let swapped = apply(&img, &[CorruptionOp::SwapChunks { a: 0, b: 3 }]);
        assert_eq!(swapped.len(), img.len());
        assert_ne!(swapped, img);
        let mut a = img.clone();
        let mut b = swapped.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "swap must only reorder bytes");
    }

    #[test]
    fn truncate_and_flip_do_what_they_say() {
        let img = image();
        assert_eq!(
            apply(&img, &[CorruptionOp::Truncate { keep: 10 }]).len(),
            10
        );
        let flipped = apply(&img, &[CorruptionOp::BitFlip { offset: 3, bit: 2 }]);
        assert_eq!(flipped[3], img[3] ^ 4);
        assert_eq!(&flipped[..3], &img[..3]);
        assert_eq!(&flipped[4..], &img[4..]);
    }

    #[test]
    fn out_of_range_swap_is_a_no_op() {
        let img = image();
        assert_eq!(
            apply(&img, &[CorruptionOp::SwapChunks { a: 0, b: 99 }]),
            img
        );
    }
}
