//! Streaming, bounded-memory reader for framed traces.
//!
//! [`TraceReader`] treats its input as untrusted: every length field is
//! range-checked before a single byte is allocated for it, every payload
//! is checksummed before a single record is decoded from it, and memory
//! residency never exceeds one chunk (plus its 16-byte header) no matter
//! how long the trace is or what a corrupt header claims.
//!
//! Two recovery policies:
//!
//! * [`Policy::Strict`] — the first malformed byte yields a typed
//!   [`ReadError`] carrying its byte offset. Nothing after the error is
//!   trusted; subsequent calls return `Ok(None)`.
//! * [`Policy::Lenient`] — corrupt bytes are *quarantined*, not fatal:
//!   the reader scans forward to the next plausible chunk boundary
//!   (the `BGCK` magic), verifies the candidate's checksum, and resumes.
//!   Every skipped byte, abandoned chunk, and undelivered record is
//!   counted in the [`IngestReport`]; the reader never panics and only
//!   fails on genuine I/O errors.

use std::io::Read;

use bingo_sim::{audit_assert, IngestReport, Instr};

use crate::crc32::crc32;
use crate::error::ReadError;
use crate::format::{
    decode_record, RecordDecode, TraceHeader, CHUNK_HEADER_BYTES, CHUNK_MAGIC, FILE_HEADER_BYTES,
    FILE_MAGIC, MAX_CHUNK_RECORDS, MAX_RECORD_BYTES, VERSION,
};

/// What the reader does when it meets bytes it cannot trust.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// First error aborts the read with a typed [`ReadError`].
    Strict,
    /// Skip to the next valid chunk boundary, counting everything
    /// quarantined; never fail except on I/O errors.
    Lenient,
}

impl Policy {
    /// Parses `"strict"` / `"lenient"` (the spelling used by CLI flags
    /// and environment knobs).
    pub fn parse(value: &str) -> Option<Policy> {
        match value.to_ascii_lowercase().as_str() {
            "strict" => Some(Policy::Strict),
            "lenient" => Some(Policy::Lenient),
            _ => None,
        }
    }
}

/// Streaming reader over a framed trace.
///
/// Generic over any [`Read`]; [`crate::replay::ReplaySource`] wraps it
/// around a buffered file for simulator replay.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
    policy: Policy,
    /// `None` only in lenient mode when the file header itself was
    /// corrupt; chunk capacity then falls back to [`MAX_CHUNK_RECORDS`]
    /// and the total record count is unknown.
    header: Option<TraceHeader>,
    /// Bytes consumed from `inner` so far (= stream offset of `buf[start]`).
    offset: u64,
    /// Read-ahead buffer; at most one chunk plus its header resident.
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    start: usize,
    /// True once `inner` returned end-of-stream.
    eof: bool,
    /// Records still to decode from the current validated chunk.
    chunk_records_left: u32,
    /// Payload bytes still unconsumed in the current validated chunk.
    chunk_payload_left: usize,
    report: IngestReport,
    /// High-water mark of `buf`'s capacity.
    peak_resident: usize,
    done: bool,
    /// Strict mode: an error was already surfaced; the stream is dead.
    failed: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a reader and parses the file header.
    ///
    /// In strict mode a malformed header is an immediate error. In
    /// lenient mode only I/O errors surface here; header corruption is
    /// quarantined and the reader resynchronizes on chunk magics.
    pub fn new(inner: R, policy: Policy) -> Result<Self, ReadError> {
        let mut reader = TraceReader {
            inner,
            policy,
            header: None,
            offset: 0,
            buf: Vec::new(),
            start: 0,
            eof: false,
            chunk_records_left: 0,
            chunk_payload_left: 0,
            report: IngestReport::default(),
            peak_resident: 0,
            done: false,
            failed: false,
        };
        match reader.parse_file_header() {
            Ok(()) => Ok(reader),
            Err(err) => match (policy, &err) {
                (_, ReadError::Io { .. }) | (Policy::Strict, _) => Err(err),
                // Lenient: leave the unparsable prefix in `buf`; the
                // chunk loop will quarantine it and hunt for `BGCK`.
                (Policy::Lenient, _) => Ok(reader),
            },
        }
    }

    /// The parsed file header, if one was readable.
    pub fn header(&self) -> Option<TraceHeader> {
        self.header
    }

    /// Ingestion accounting so far.
    pub fn report(&self) -> IngestReport {
        self.report
    }

    /// High-water mark of the read-ahead buffer, in bytes. Stays within
    /// [`Self::resident_bound`] for the life of the reader — the
    /// format's bounded-memory guarantee, asserted under `audit`.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
    }

    /// The documented residency bound: one chunk header plus the
    /// worst-case payload for the effective chunk capacity (or the file
    /// header, whichever is larger).
    pub fn resident_bound(&self) -> u64 {
        let cap = self
            .header
            .map_or(MAX_CHUNK_RECORDS, |h| h.chunk_records.max(1));
        FILE_HEADER_BYTES.max(CHUNK_HEADER_BYTES + cap as u64 * MAX_RECORD_BYTES as u64)
    }

    /// Decodes the next record.
    ///
    /// `Ok(None)` is clean end-of-trace. In strict mode, the first
    /// corruption returns `Err` once; later calls return `Ok(None)`.
    pub fn next_instr(&mut self) -> Result<Option<Instr>, ReadError> {
        loop {
            if self.done || self.failed {
                return Ok(None);
            }
            if self.chunk_records_left > 0 {
                match self.decode_one() {
                    Ok(instr) => return Ok(Some(instr)),
                    Err(err) => {
                        if self.policy == Policy::Strict {
                            self.failed = true;
                            return Err(err);
                        }
                        // CRC passed but the content is impossible: the
                        // chunk is a forgery. Abandon the rest of it.
                        self.abandon_chunk();
                    }
                }
            } else if self.chunk_payload_left > 0 {
                // All declared records delivered but payload bytes remain.
                if self.policy == Policy::Strict {
                    self.failed = true;
                    return Err(ReadError::TrailingPayload {
                        offset: self.offset,
                        bytes: self.chunk_payload_left as u64,
                    });
                }
                let stray = self.chunk_payload_left;
                self.chunk_payload_left = 0;
                self.quarantine(stray);
            } else {
                match self.load_chunk() {
                    Ok(true) => {}
                    Ok(false) => return Ok(None),
                    Err(err) => {
                        self.failed = true;
                        return Err(err);
                    }
                }
            }
        }
    }

    // ---- internals ------------------------------------------------------

    fn avail(&self) -> usize {
        self.buf.len() - self.start
    }

    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.avail());
        self.start += n;
        self.offset += n as u64;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
    }

    fn quarantine(&mut self, n: usize) {
        self.report.quarantined_bytes += n as u64;
        self.consume(n);
    }

    /// Ensures at least `want` bytes are available (or end-of-stream).
    /// Grows `buf` by exactly what is needed so capacity — and therefore
    /// [`Self::peak_resident_bytes`] — tracks the true requirement.
    fn refill(&mut self, want: usize) -> Result<usize, ReadError> {
        while self.avail() < want && !self.eof {
            // Drop the consumed prefix before growing.
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let need = want - self.avail();
            let old_len = self.buf.len();
            self.buf.reserve_exact(need);
            self.buf.resize(old_len + need, 0);
            let mut filled = 0;
            while filled < need {
                match self.inner.read(&mut self.buf[old_len + filled..]) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.buf.truncate(old_len + filled);
                        return Err(ReadError::Io {
                            offset: self.offset + self.avail() as u64,
                            error: e,
                        });
                    }
                }
            }
            self.buf.truncate(old_len + filled);
        }
        self.peak_resident = self.peak_resident.max(self.buf.capacity());
        audit_assert!(
            self.peak_resident as u64 <= self.resident_bound(),
            "reader residency {} exceeds bound {}",
            self.peak_resident,
            self.resident_bound()
        );
        Ok(self.avail())
    }

    fn parse_file_header(&mut self) -> Result<(), ReadError> {
        let avail = self.refill(FILE_HEADER_BYTES as usize)?;
        if avail < FILE_HEADER_BYTES as usize {
            return Err(ReadError::Truncated {
                offset: self.offset + avail as u64,
                context: "file header",
            });
        }
        let h = &self.buf[self.start..self.start + FILE_HEADER_BYTES as usize];
        if h[0..8] != FILE_MAGIC {
            return Err(ReadError::BadMagic {
                offset: self.offset,
            });
        }
        let version = u32::from_le_bytes(h[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ReadError::BadVersion {
                offset: self.offset + 8,
                version,
            });
        }
        let chunk_records = u32::from_le_bytes(h[12..16].try_into().expect("4 bytes"));
        if chunk_records == 0 || chunk_records > MAX_CHUNK_RECORDS {
            return Err(ReadError::BadChunkCapacity {
                offset: self.offset + 12,
                chunk_records,
            });
        }
        let total_records = u64::from_le_bytes(h[16..24].try_into().expect("8 bytes"));
        self.header = Some(TraceHeader {
            version,
            chunk_records,
            total_records,
        });
        self.consume(FILE_HEADER_BYTES as usize);
        Ok(())
    }

    /// Decodes one record from the current chunk. Caller guarantees
    /// `chunk_records_left > 0`.
    fn decode_one(&mut self) -> Result<Instr, ReadError> {
        let payload = &self.buf[self.start..self.start + self.chunk_payload_left];
        match decode_record(payload) {
            RecordDecode::Ok(instr, n) => {
                self.consume(n);
                self.chunk_payload_left -= n;
                self.chunk_records_left -= 1;
                self.report.delivered_records += 1;
                Ok(instr)
            }
            RecordDecode::BadKind(kind) => Err(ReadError::BadRecord {
                offset: self.offset,
                kind,
            }),
            RecordDecode::Truncated => Err(ReadError::RecordTruncated {
                offset: self.offset,
            }),
        }
    }

    /// Lenient mode: drop the rest of the current chunk after an
    /// impossible record.
    fn abandon_chunk(&mut self) {
        // Declared counts came from a CRC-valid header, so the
        // undelivered remainder is an exact quarantine count.
        self.report.quarantined_records += self.chunk_records_left as u64;
        self.report.skipped_chunks += 1;
        self.chunk_records_left = 0;
        let stray = self.chunk_payload_left;
        self.chunk_payload_left = 0;
        self.quarantine(stray);
    }

    /// Effective per-chunk record capacity.
    fn cap(&self) -> u32 {
        self.header.map_or(MAX_CHUNK_RECORDS, |h| h.chunk_records)
    }

    /// Reads and validates the next chunk header + payload. Returns
    /// `Ok(true)` with chunk state armed, or `Ok(false)` on clean end.
    fn load_chunk(&mut self) -> Result<bool, ReadError> {
        loop {
            if let Some(h) = self.header {
                if self.report.delivered_records >= h.total_records {
                    return self.finish_at_total();
                }
            }
            let avail = self.refill(CHUNK_HEADER_BYTES as usize)?;
            if avail == 0 {
                return self.finish_at_eof();
            }
            if avail < CHUNK_HEADER_BYTES as usize {
                match self.policy {
                    Policy::Strict => {
                        return Err(ReadError::Truncated {
                            offset: self.offset + avail as u64,
                            context: "chunk header",
                        })
                    }
                    Policy::Lenient => {
                        self.quarantine(avail);
                        return self.finish_at_eof();
                    }
                }
            }
            let h = &self.buf[self.start..self.start + CHUNK_HEADER_BYTES as usize];
            if h[0..4] != CHUNK_MAGIC {
                match self.policy {
                    Policy::Strict => {
                        return Err(ReadError::BadChunkMagic {
                            offset: self.offset,
                        })
                    }
                    Policy::Lenient => {
                        self.resync()?;
                        continue;
                    }
                }
            }
            let records = u32::from_le_bytes(h[4..8].try_into().expect("4 bytes"));
            let payload_len = u32::from_le_bytes(h[8..12].try_into().expect("4 bytes"));
            let declared_crc = u32::from_le_bytes(h[12..16].try_into().expect("4 bytes"));
            if records == 0 || records > self.cap() {
                match self.policy {
                    Policy::Strict => {
                        return Err(ReadError::OversizedChunk {
                            offset: self.offset,
                            records,
                            limit: self.cap(),
                        })
                    }
                    Policy::Lenient => {
                        self.report.skipped_chunks += 1;
                        self.resync()?;
                        continue;
                    }
                }
            }
            if let Some(hdr) = self.header {
                let remaining = hdr.total_records - self.report.delivered_records;
                if records as u64 > remaining {
                    match self.policy {
                        Policy::Strict => {
                            return Err(ReadError::OversizedChunk {
                                offset: self.offset,
                                records,
                                limit: remaining.min(hdr.chunk_records as u64) as u32,
                            })
                        }
                        Policy::Lenient => {
                            self.report.skipped_chunks += 1;
                            self.resync()?;
                            continue;
                        }
                    }
                }
            }
            if (payload_len as u64) < records as u64
                || payload_len as u64 > records as u64 * MAX_RECORD_BYTES as u64
            {
                match self.policy {
                    Policy::Strict => {
                        return Err(ReadError::BadPayloadLength {
                            offset: self.offset,
                            len: payload_len,
                            records,
                        })
                    }
                    Policy::Lenient => {
                        self.report.skipped_chunks += 1;
                        self.resync()?;
                        continue;
                    }
                }
            }
            let frame = CHUNK_HEADER_BYTES as usize + payload_len as usize;
            let avail = self.refill(frame)?;
            if avail < frame {
                match self.policy {
                    Policy::Strict => {
                        return Err(ReadError::Truncated {
                            offset: self.offset + avail as u64,
                            context: "chunk payload",
                        })
                    }
                    Policy::Lenient => {
                        self.report.skipped_chunks += 1;
                        self.quarantine(avail);
                        return self.finish_at_eof();
                    }
                }
            }
            let payload_at = self.start + CHUNK_HEADER_BYTES as usize;
            let actual_crc = crc32(&self.buf[payload_at..payload_at + payload_len as usize]);
            if actual_crc != declared_crc {
                match self.policy {
                    Policy::Strict => {
                        return Err(ReadError::ChecksumMismatch {
                            offset: self.offset + CHUNK_HEADER_BYTES,
                            expected: declared_crc,
                            actual: actual_crc,
                        })
                    }
                    Policy::Lenient => {
                        // The chunk header passed every structural check
                        // (magic, record count in range, payload bounds)
                        // and only the payload CRC failed, so the declared
                        // record count is the best mid-stream estimate of
                        // what is being dropped — a consumer that stops
                        // before end-of-stream still sees the loss.
                        // [`Self::finish_at_eof`] supersedes this tally
                        // with the exact header-derived count when the
                        // pass runs to completion.
                        self.report.quarantined_records += records as u64;
                        self.report.skipped_chunks += 1;
                        self.resync()?;
                        continue;
                    }
                }
            }
            self.consume(CHUNK_HEADER_BYTES as usize);
            self.chunk_records_left = records;
            self.chunk_payload_left = payload_len as usize;
            return Ok(true);
        }
    }

    /// All declared records delivered: strict verifies nothing trails.
    fn finish_at_total(&mut self) -> Result<bool, ReadError> {
        self.done = true;
        if self.policy == Policy::Strict {
            let trailing_at = self.offset;
            let mut trailing = 0u64;
            let step = self.resident_bound().min(4096) as usize;
            loop {
                let avail = self.refill(step)?;
                if avail == 0 {
                    break;
                }
                trailing += avail as u64;
                self.consume(avail);
            }
            if trailing > 0 {
                return Err(ReadError::TrailingData {
                    offset: trailing_at,
                    bytes: trailing,
                });
            }
        }
        Ok(false)
    }

    /// The stream ended before the declared record count was reached.
    fn finish_at_eof(&mut self) -> Result<bool, ReadError> {
        self.done = true;
        if let Some(h) = self.header {
            let missing = h
                .total_records
                .saturating_sub(self.report.delivered_records);
            match self.policy {
                Policy::Strict if missing > 0 => {
                    return Err(ReadError::MissingRecords {
                        offset: self.offset,
                        declared: h.total_records,
                        delivered: self.report.delivered_records,
                    })
                }
                // The file header is trusted (it parsed), so the exact
                // undelivered count is known — supersede any partial
                // per-chunk tallies with it.
                Policy::Lenient => self.report.quarantined_records = missing,
                _ => {}
            }
        }
        Ok(false)
    }

    /// Lenient mode: skip at least one byte, then scan forward until the
    /// buffer starts with a chunk magic (or the stream ends). Residency
    /// stays bounded: the scan window never exceeds one chunk header.
    fn resync(&mut self) -> Result<(), ReadError> {
        self.quarantine(1);
        loop {
            let avail = self.refill(CHUNK_HEADER_BYTES as usize)?;
            if avail < CHUNK_MAGIC.len() {
                // Too little left for any chunk; the outer loop's header
                // read will quarantine the remainder at end-of-stream.
                return Ok(());
            }
            let window = &self.buf[self.start..self.start + avail];
            if let Some(at) = window
                .windows(CHUNK_MAGIC.len())
                .position(|w| w == CHUNK_MAGIC)
            {
                self.quarantine(at);
                return Ok(());
            }
            // No magic: everything but a possible straddling suffix is junk.
            self.quarantine(avail - (CHUNK_MAGIC.len() - 1));
            if self.eof {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::io::{Cursor, Seek, SeekFrom, Write};

    use bingo_sim::{Addr, Pc};

    use super::*;
    use crate::writer::TraceWriter;

    /// A varied, well-formed trace image: `records` records in chunks of
    /// `chunk_records`.
    fn image(records: u64, chunk_records: u32) -> Vec<u8> {
        let mut file = Cursor::new(Vec::new());
        let mut w = TraceWriter::new(&mut file, chunk_records).expect("header");
        for n in 0..records {
            let instr = match n % 3 {
                0 => Instr::Op,
                1 => Instr::Load {
                    pc: Pc::new(0x400 + n),
                    addr: Addr::new(n * 64),
                    dep: None,
                },
                _ => Instr::Store {
                    pc: Pc::new(0x500 + n),
                    addr: Addr::new(n * 64 + 8),
                },
            };
            w.push(instr).expect("push");
        }
        w.finish().expect("finish");
        file.into_inner()
    }

    fn drain_strict(bytes: &[u8]) -> Result<IngestReport, ReadError> {
        let mut r = TraceReader::new(Cursor::new(bytes), Policy::Strict)?;
        while r.next_instr()?.is_some() {}
        Ok(r.report())
    }

    fn drain_lenient(bytes: &[u8]) -> IngestReport {
        let mut r = TraceReader::new(Cursor::new(bytes), Policy::Lenient).expect("lenient open");
        loop {
            match r.next_instr() {
                Ok(Some(_)) => {}
                Ok(None) => return r.report(),
                Err(e) => panic!("lenient mode must not fail on corruption: {e}"),
            }
        }
    }

    // ---- every error variant, constructed from a crafted file ----------

    #[test]
    fn bad_magic() {
        let mut bytes = image(8, 4);
        bytes[0] = b'X';
        match drain_strict(&bytes) {
            Err(ReadError::BadMagic { offset: 0 }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        // Lenient survives even header corruption by hunting for chunks.
        let report = drain_lenient(&bytes);
        assert_eq!(report.delivered_records, 8);
        assert!(report.quarantined_bytes > 0, "header bytes were skipped");
    }

    #[test]
    fn bad_version() {
        let mut bytes = image(8, 4);
        bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
        match drain_strict(&bytes) {
            Err(ReadError::BadVersion {
                offset: 8,
                version: 7,
            }) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn bad_chunk_capacity() {
        let mut bytes = image(8, 4);
        bytes[12..16].copy_from_slice(&0u32.to_le_bytes());
        match drain_strict(&bytes) {
            Err(ReadError::BadChunkCapacity {
                offset: 12,
                chunk_records: 0,
            }) => {}
            other => panic!("expected BadChunkCapacity, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_header() {
        let bytes = &image(8, 4)[..10];
        match drain_strict(bytes) {
            Err(ReadError::Truncated {
                offset: 10,
                context: "file header",
            }) => {}
            other => panic!("expected Truncated header, got {other:?}"),
        }
    }

    #[test]
    fn truncated_chunk_header_and_payload() {
        let full = image(8, 4);
        // Cut inside the first chunk header.
        match drain_strict(&full[..FILE_HEADER_BYTES as usize + 7]) {
            Err(ReadError::Truncated {
                context: "chunk header",
                offset,
            }) => assert_eq!(offset, FILE_HEADER_BYTES + 7),
            other => panic!("expected Truncated chunk header, got {other:?}"),
        }
        // Cut inside the first chunk payload (mid-record EOF).
        let cut = FILE_HEADER_BYTES as usize + CHUNK_HEADER_BYTES as usize + 5;
        match drain_strict(&full[..cut]) {
            Err(ReadError::Truncated {
                context: "chunk payload",
                offset,
            }) => assert_eq!(offset, cut as u64),
            other => panic!("expected Truncated payload, got {other:?}"),
        }
    }

    #[test]
    fn bad_chunk_magic() {
        let mut bytes = image(8, 4);
        bytes[FILE_HEADER_BYTES as usize] = b'!';
        match drain_strict(&bytes) {
            Err(ReadError::BadChunkMagic { offset }) => assert_eq!(offset, FILE_HEADER_BYTES),
            other => panic!("expected BadChunkMagic, got {other:?}"),
        }
    }

    #[test]
    fn oversized_chunk() {
        let mut bytes = image(8, 4);
        let at = FILE_HEADER_BYTES as usize + 4;
        bytes[at..at + 4].copy_from_slice(&99u32.to_le_bytes());
        match drain_strict(&bytes) {
            Err(ReadError::OversizedChunk {
                records: 99,
                limit: 4,
                offset,
            }) => assert_eq!(offset, FILE_HEADER_BYTES),
            other => panic!("expected OversizedChunk, got {other:?}"),
        }
    }

    #[test]
    fn chunk_overrunning_declared_total_is_oversized() {
        // Patch total_records down to 2; the first 4-record chunk now
        // promises more than the file does.
        let mut bytes = image(8, 4);
        bytes[16..24].copy_from_slice(&2u64.to_le_bytes());
        match drain_strict(&bytes) {
            Err(ReadError::OversizedChunk {
                records: 4,
                limit: 2,
                ..
            }) => {}
            other => panic!("expected OversizedChunk vs total, got {other:?}"),
        }
    }

    #[test]
    fn bad_payload_length() {
        let mut bytes = image(8, 4);
        let at = FILE_HEADER_BYTES as usize + 8;
        bytes[at..at + 4].copy_from_slice(&1u32.to_le_bytes()); // 4 records in 1 byte
        match drain_strict(&bytes) {
            Err(ReadError::BadPayloadLength {
                len: 1, records: 4, ..
            }) => {}
            other => panic!("expected BadPayloadLength, got {other:?}"),
        }
    }

    #[test]
    fn checksum_mismatch() {
        let mut bytes = image(8, 4);
        let payload_at = FILE_HEADER_BYTES as usize + CHUNK_HEADER_BYTES as usize;
        bytes[payload_at] ^= 0x40;
        match drain_strict(&bytes) {
            Err(ReadError::ChecksumMismatch { offset, .. }) => {
                assert_eq!(offset, payload_at as u64);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // Lenient: first chunk quarantined, later chunks still decode.
        let report = drain_lenient(&bytes);
        assert_eq!(report.delivered_records, 4, "second chunk survives");
        assert_eq!(report.quarantined_records, 4, "first chunk's records");
        assert!(report.skipped_chunks >= 1);
    }

    #[test]
    fn bad_record_and_trailing_payload_despite_valid_crc() {
        // Forge a CRC-valid chunk whose payload is garbage: kind 9.
        let mut file = Cursor::new(Vec::new());
        file.write_all(&FILE_MAGIC).unwrap();
        file.write_all(&VERSION.to_le_bytes()).unwrap();
        file.write_all(&4u32.to_le_bytes()).unwrap();
        file.write_all(&1u64.to_le_bytes()).unwrap();
        let payload = [9u8, 0u8];
        file.write_all(&CHUNK_MAGIC).unwrap();
        file.write_all(&1u32.to_le_bytes()).unwrap();
        file.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        file.write_all(&crate::crc32::crc32(&payload).to_le_bytes())
            .unwrap();
        file.write_all(&payload).unwrap();
        let bytes = file.into_inner();
        let payload_at = FILE_HEADER_BYTES + CHUNK_HEADER_BYTES;
        match drain_strict(&bytes) {
            Err(ReadError::BadRecord { kind: 9, offset }) => assert_eq!(offset, payload_at),
            other => panic!("expected BadRecord, got {other:?}"),
        }
        // Same forgery but with a valid record followed by a stray byte.
        let mut bytes2 = bytes;
        let p = payload_at as usize;
        bytes2[p] = 0; // Instr::Op, leaving one stray payload byte
        let crc = crate::crc32::crc32(&bytes2[p..p + 2]);
        bytes2[p - 4..p].copy_from_slice(&crc.to_le_bytes());
        match drain_strict(&bytes2) {
            Err(ReadError::TrailingPayload { bytes: 1, .. }) => {}
            other => panic!("expected TrailingPayload, got {other:?}"),
        }
        // Lenient quarantines the forged chunk and finishes.
        let report = drain_lenient(&bytes2);
        assert_eq!(report.delivered_records, 1);
        assert_eq!(report.quarantined_bytes, 1);
    }

    #[test]
    fn record_truncated_inside_crc_valid_payload() {
        // CRC-valid chunk declaring 1 record whose payload cuts a load
        // short: kind byte only.
        let mut file = Cursor::new(Vec::new());
        file.write_all(&FILE_MAGIC).unwrap();
        file.write_all(&VERSION.to_le_bytes()).unwrap();
        file.write_all(&4u32.to_le_bytes()).unwrap();
        file.write_all(&1u64.to_le_bytes()).unwrap();
        let payload = [1u8]; // a Load needs 18 bytes
        file.write_all(&CHUNK_MAGIC).unwrap();
        file.write_all(&1u32.to_le_bytes()).unwrap();
        file.write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        file.write_all(&crate::crc32::crc32(&payload).to_le_bytes())
            .unwrap();
        file.write_all(&payload).unwrap();
        match drain_strict(&file.into_inner()) {
            Err(ReadError::RecordTruncated { offset }) => {
                assert_eq!(offset, FILE_HEADER_BYTES + CHUNK_HEADER_BYTES);
            }
            other => panic!("expected RecordTruncated, got {other:?}"),
        }
    }

    #[test]
    fn missing_records() {
        let full = image(8, 4);
        // Keep header + first chunk only; header still promises 8.
        let first_chunk_end = {
            let payload_len = u32::from_le_bytes(
                full[FILE_HEADER_BYTES as usize + 8..FILE_HEADER_BYTES as usize + 12]
                    .try_into()
                    .unwrap(),
            );
            FILE_HEADER_BYTES as usize + CHUNK_HEADER_BYTES as usize + payload_len as usize
        };
        match drain_strict(&full[..first_chunk_end]) {
            Err(ReadError::MissingRecords {
                declared: 8,
                delivered: 4,
                ..
            }) => {}
            other => panic!("expected MissingRecords, got {other:?}"),
        }
        // Lenient reports the exact shortfall.
        let report = drain_lenient(&full[..first_chunk_end]);
        assert_eq!(report.delivered_records, 4);
        assert_eq!(report.quarantined_records, 4);
    }

    #[test]
    fn trailing_data() {
        let mut bytes = image(8, 4);
        bytes.extend_from_slice(b"junk after the last chunk");
        match drain_strict(&bytes) {
            Err(ReadError::TrailingData { bytes: 25, offset }) => {
                assert_eq!(offset, (bytes.len() - 25) as u64);
            }
            other => panic!("expected TrailingData, got {other:?}"),
        }
        // Lenient stops at the declared total and ignores the junk.
        let report = drain_lenient(&bytes);
        assert_eq!(report.delivered_records, 8);
    }

    #[test]
    fn io_error_carries_offset() {
        #[derive(Debug)]
        struct Broken;
        impl Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        match TraceReader::new(Broken, Policy::Lenient) {
            Err(ReadError::Io { offset: 0, .. }) => {}
            other => panic!("expected Io even in lenient mode, got {other:?}"),
        }
    }

    // ---- recovery and accounting ----------------------------------------

    #[test]
    fn strict_error_is_sticky() {
        let mut bytes = image(8, 4);
        bytes[FILE_HEADER_BYTES as usize + CHUNK_HEADER_BYTES as usize] ^= 1;
        let mut r = TraceReader::new(Cursor::new(&bytes), Policy::Strict).expect("open");
        assert!(r.next_instr().is_err());
        for _ in 0..3 {
            assert_eq!(r.next_instr().expect("sticky done"), None);
        }
    }

    #[test]
    fn lenient_resyncs_across_a_garbage_gap() {
        let full = image(12, 4);
        // Stomp 11 bytes in the middle of the second chunk's payload.
        let second_at = {
            let p = u32::from_le_bytes(
                full[FILE_HEADER_BYTES as usize + 8..FILE_HEADER_BYTES as usize + 12]
                    .try_into()
                    .unwrap(),
            ) as usize;
            FILE_HEADER_BYTES as usize + CHUNK_HEADER_BYTES as usize + p
        };
        let mut bytes = full;
        for (i, b) in bytes[second_at + 20..second_at + 31].iter_mut().enumerate() {
            *b = 0xA5 ^ i as u8;
        }
        let report = drain_lenient(&bytes);
        // Chunks 1 and 3 survive; chunk 2 is quarantined.
        assert_eq!(report.delivered_records, 8);
        assert_eq!(report.quarantined_records, 4);
        assert!(report.skipped_chunks >= 1);
        assert!(report.quarantined_bytes > 0);
        assert!(!report.is_clean());
    }

    #[test]
    fn lenient_on_all_garbage_delivers_nothing_but_never_fails() {
        let garbage: Vec<u8> = (0..997u32).map(|i| (i * 131) as u8).collect();
        let report = drain_lenient(&garbage);
        assert_eq!(report.delivered_records, 0);
        assert_eq!(report.quarantined_bytes, 997);
    }

    #[test]
    fn memory_stays_bounded_by_one_chunk() {
        // 64-record chunks, 100 chunks: the file is ~100x larger than
        // the residency bound.
        let bytes = image(6400, 64);
        let mut r = TraceReader::new(Cursor::new(&bytes), Policy::Strict).expect("open");
        while r.next_instr().expect("clean trace").is_some() {}
        let bound = r.resident_bound();
        assert!(
            bytes.len() as u64 > 10 * bound,
            "trace must dwarf the bound"
        );
        assert!(
            (r.peak_resident_bytes() as u64) <= bound,
            "peak residency {} exceeds one-chunk bound {bound}",
            r.peak_resident_bytes()
        );
    }

    #[test]
    fn memory_stays_bounded_under_lenient_resync() {
        let mut bytes = image(6400, 64);
        // Corrupt every third chunk's payload byte 0 to force resyncs.
        let mut at = FILE_HEADER_BYTES as usize;
        let mut i = 0;
        while at + CHUNK_HEADER_BYTES as usize <= bytes.len() {
            let p = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap()) as usize;
            if i % 3 == 0 {
                bytes[at + CHUNK_HEADER_BYTES as usize] ^= 0xFF;
            }
            at += CHUNK_HEADER_BYTES as usize + p;
            i += 1;
        }
        let mut r = TraceReader::new(Cursor::new(&bytes), Policy::Lenient).expect("open");
        while r.next_instr().expect("lenient never errors").is_some() {}
        assert!(r.report().skipped_chunks >= 30, "corruption was exercised");
        assert!(
            (r.peak_resident_bytes() as u64) <= r.resident_bound(),
            "resync must not grow residency past the bound"
        );
    }

    #[test]
    fn writer_patches_total_after_seek() {
        // Regression guard for the header patch: a reader of the raw
        // bytes sees the true total, not the placeholder.
        let mut file = Cursor::new(Vec::new());
        let mut w = TraceWriter::new(&mut file, 4).expect("header");
        for _ in 0..5 {
            w.push(Instr::Op).expect("push");
        }
        w.finish().expect("finish");
        file.seek(SeekFrom::Start(0)).unwrap();
        let bytes = file.into_inner();
        assert_eq!(
            u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
            5,
            "total_records must be patched in place"
        );
    }
}
