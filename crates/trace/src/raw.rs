//! Best-effort reader for *raw* record streams: a bare concatenation of
//! v1-encoded records with no header, no chunking, and no checksums —
//! the shape of a ChampSim-style flat trace or the body of the legacy
//! `BGTR` format with its 16-byte preamble stripped.
//!
//! With no framing there is nothing to resynchronize on, so recovery is
//! necessarily weaker than the framed reader's: decoding stops at the
//! first undecodable byte and reports its offset. Use
//! [`crate::writer::TraceWriter`] to convert a raw stream into the
//! framed format once, then get checksums and quarantine for free.

use std::io::Read;

use bingo_sim::{IngestReport, Instr};

use crate::error::ReadError;
use crate::format::{decode_record, RecordDecode, MAX_RECORD_BYTES};

/// Streaming decoder over a raw (headerless) record stream.
#[derive(Debug)]
pub struct RawReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    offset: u64,
    eof: bool,
    done: bool,
    report: IngestReport,
}

impl<R: Read> RawReader<R> {
    /// Wraps a byte stream of bare records.
    pub fn new(inner: R) -> Self {
        RawReader {
            inner,
            buf: Vec::with_capacity(MAX_RECORD_BYTES as usize),
            start: 0,
            offset: 0,
            eof: false,
            done: false,
            report: IngestReport::default(),
        }
    }

    /// Ingestion accounting so far (raw streams never quarantine; only
    /// `delivered_records` moves).
    pub fn report(&self) -> IngestReport {
        self.report
    }

    fn avail(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tops the lookahead up to one worst-case record.
    fn refill(&mut self) -> Result<(), ReadError> {
        while self.avail() < MAX_RECORD_BYTES as usize && !self.eof {
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let old_len = self.buf.len();
            self.buf.resize(MAX_RECORD_BYTES as usize, 0);
            match self.inner.read(&mut self.buf[old_len..]) {
                Ok(0) => {
                    self.buf.truncate(old_len);
                    self.eof = true;
                }
                Ok(n) => self.buf.truncate(old_len + n),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.buf.truncate(old_len);
                }
                Err(error) => {
                    self.buf.truncate(old_len);
                    return Err(ReadError::Io {
                        offset: self.offset + self.avail() as u64,
                        error,
                    });
                }
            }
        }
        Ok(())
    }

    /// Decodes the next record. `Ok(None)` is a clean end exactly at a
    /// record boundary; anything else is a typed error with the offset
    /// of the first byte that could not be decoded.
    pub fn next_instr(&mut self) -> Result<Option<Instr>, ReadError> {
        if self.done {
            return Ok(None);
        }
        self.refill()?;
        if self.avail() == 0 {
            self.done = true;
            return Ok(None);
        }
        match decode_record(&self.buf[self.start..]) {
            RecordDecode::Ok(instr, n) => {
                self.start += n;
                self.offset += n as u64;
                self.report.delivered_records += 1;
                Ok(Some(instr))
            }
            RecordDecode::BadKind(kind) => {
                self.done = true;
                Err(ReadError::BadRecord {
                    offset: self.offset,
                    kind,
                })
            }
            RecordDecode::Truncated => {
                self.done = true;
                Err(ReadError::RecordTruncated {
                    offset: self.offset,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use bingo_sim::{Addr, Pc};

    use super::*;
    use crate::format::encode_record;

    fn records() -> Vec<Instr> {
        vec![
            Instr::Op,
            Instr::Load {
                pc: Pc::new(0x400),
                addr: Addr::new(0x1000),
                dep: Some(1),
            },
            Instr::Store {
                pc: Pc::new(0x404),
                addr: Addr::new(0x2000),
            },
            Instr::Op,
        ]
    }

    fn encode_all(instrs: &[Instr]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for &i in instrs {
            encode_record(&mut bytes, i);
        }
        bytes
    }

    #[test]
    fn decodes_a_clean_raw_stream() {
        let bytes = encode_all(&records());
        let mut r = RawReader::new(Cursor::new(&bytes));
        for want in records() {
            assert_eq!(r.next_instr().expect("decode"), Some(want));
        }
        assert_eq!(r.next_instr().expect("clean end"), None);
        assert_eq!(r.report().delivered_records, 4);
    }

    #[test]
    fn stops_at_first_bad_byte_with_offset() {
        let mut bytes = encode_all(&records());
        let poison_at = bytes.len();
        bytes.push(0x7E); // not a record kind
        let mut r = RawReader::new(Cursor::new(&bytes));
        for _ in 0..4 {
            r.next_instr().expect("prefix decodes");
        }
        match r.next_instr() {
            Err(ReadError::BadRecord { offset, kind: 0x7E }) => {
                assert_eq!(offset, poison_at as u64);
            }
            other => panic!("expected BadRecord, got {other:?}"),
        }
        // The error is sticky.
        assert_eq!(r.next_instr().expect("done"), None);
    }

    #[test]
    fn mid_record_eof_is_typed() {
        let bytes = encode_all(&records());
        let cut = bytes.len() - 3; // final Op is 1 byte; cut into the store
        let mut r = RawReader::new(Cursor::new(&bytes[..cut]));
        r.next_instr().expect("op");
        r.next_instr().expect("load");
        match r.next_instr() {
            Err(ReadError::RecordTruncated { offset }) => {
                assert_eq!(offset, 19); // op (1) + load (18)
            }
            other => panic!("expected RecordTruncated, got {other:?}"),
        }
    }
}
