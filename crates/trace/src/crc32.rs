//! Hand-rolled CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant),
//! matching the repo's no-external-dependencies rule the same way the
//! bench crate hand-rolls its JSON. Table-driven, one table built at
//! compile time.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_every_bit() {
        let base = crc32(b"hello world");
        let mut bytes = *b"hello world";
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "bit {i} flip went undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
