//! Hand-rolled delta-debugging shrinker for failing traces.
//!
//! A fuzzed counterexample is typically hundreds of events long, of which
//! a handful matter. [`shrink`] reduces it with the classic ddmin recipe —
//! remove exponentially shrinking chunks, then individual events, re-running
//! the failure predicate after every cut — and finally *canonicalizes* the
//! survivor: PCs are renumbered `0x400, 0x404, ...` and regions `0, 1, ...`
//! in order of first appearance, so two shrunk traces for the same bug are
//! byte-identical regardless of which raw addresses the fuzzer happened to
//! draw. The result is small enough to read and stable enough to commit to
//! `tests/corpus/`.
//!
//! The predicate must be re-runnable: it is handed a fresh candidate trace
//! each time and must rebuild its prefetcher/oracle pair from scratch
//! (replay is cheap — a few hundred table operations).

use std::collections::HashMap;

use bingo_sim::{PrefetchEvent, PrefetchTrace, BLOCK_BYTES};

/// Shrinks `trace` to a locally minimal trace on which `still_fails`
/// still returns `true`.
///
/// The returned trace always satisfies the predicate: every candidate cut
/// is kept only after re-checking, and if canonicalization breaks the
/// failure (possible when the bug is address-dependent, e.g. a hash
/// collision) the un-canonicalized minimum is returned instead.
///
/// # Panics
///
/// Panics if `still_fails(trace)` is `false` — shrinking a passing trace
/// is a harness bug, not a recoverable condition.
pub fn shrink(
    trace: &PrefetchTrace,
    still_fails: &mut dyn FnMut(&PrefetchTrace) -> bool,
) -> PrefetchTrace {
    let events = shrink_items(trace.events(), &mut |candidate| {
        still_fails(&trace.with_events(candidate.to_vec()))
    });
    let mut current = trace.with_events(events);

    // Pass 3: canonical renaming, kept only if the failure survives it.
    let renamed = canonicalize(&current);
    if renamed != current && still_fails(&renamed) {
        current = renamed;
    }
    current
}

/// Shrinks any item sequence to a locally minimal subsequence on which
/// `still_fails` still returns `true` — the domain-agnostic core of
/// [`shrink`], also used to minimize corruption plans in the trace
/// decoder fuzzer.
///
/// # Panics
///
/// Panics if `still_fails(items)` is `false`.
pub fn shrink_items<T: Clone>(items: &[T], still_fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    assert!(
        still_fails(items),
        "shrink() called with a trace that does not fail"
    );
    let mut current = items.to_vec();

    // Pass 1: ddmin-style chunk removal with halving chunk sizes. After a
    // successful cut the same index is retried (new items slid into it).
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            if still_fails(&candidate) {
                current = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    // Pass 2: single-item removal to a fixpoint. Chunk removal can strand
    // newly removable items (a cut changes which later items matter).
    loop {
        let before = current.len();
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if still_fails(&candidate) {
                current = candidate;
            } else {
                i += 1;
            }
        }
        if current.len() == before {
            break;
        }
    }
    current
}

/// Renumbers PCs (`0x400 + 4i`) and regions (`0, 1, ...`) by order of
/// first appearance, preserving every block's offset within its region.
fn canonicalize(trace: &PrefetchTrace) -> PrefetchTrace {
    let bpr = trace.region_bytes() / BLOCK_BYTES;
    let mut pc_map: HashMap<u64, u64> = HashMap::new();
    let mut region_map: HashMap<u64, u64> = HashMap::new();
    let rename_block = |block: u64, region_map: &mut HashMap<u64, u64>| {
        let next = region_map.len() as u64;
        let region = *region_map.entry(block / bpr).or_insert(next);
        region * bpr + block % bpr
    };
    let events = trace
        .events()
        .iter()
        .map(|event| match *event {
            PrefetchEvent::Access { pc, block } => {
                let next = 0x400 + 4 * pc_map.len() as u64;
                let pc = *pc_map.entry(pc).or_insert(next);
                PrefetchEvent::Access {
                    pc,
                    block: rename_block(block, &mut region_map),
                }
            }
            PrefetchEvent::Evict { block } => PrefetchEvent::Evict {
                block: rename_block(block, &mut region_map),
            },
        })
        .collect();
    trace.with_events(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_trace() -> PrefetchTrace {
        let mut t = PrefetchTrace::new(2048);
        for i in 0..40 {
            t.access(0x9990 + 8 * (i % 5), 32 * 17 + i);
        }
        t.access(0xbeef, 32 * 90 + 7); // the one event the "bug" needs
        for i in 0..40 {
            t.evict(32 * 17 + i);
        }
        t
    }

    #[test]
    fn shrinks_to_the_single_relevant_event() {
        // Structural predicate (offset-within-region), so it survives the
        // canonical renaming of PCs and regions.
        let mut fails = |t: &PrefetchTrace| {
            t.events()
                .iter()
                .any(|e| matches!(e, PrefetchEvent::Access { block, .. } if block % 32 == 7))
        };
        let small = shrink(&noisy_trace(), &mut fails);
        assert_eq!(small.len(), 1);
        assert_eq!(
            small.events()[0],
            PrefetchEvent::Access {
                pc: 0x400,
                block: 7
            }
        );
    }

    #[test]
    fn preserves_event_order_across_cuts() {
        // Fails iff some access of block B precedes an evict of B.
        let mut fails = |t: &PrefetchTrace| {
            t.events().iter().enumerate().any(|(i, e)| {
                matches!(e, PrefetchEvent::Access { block, .. }
                    if t.events()[i + 1..].contains(&PrefetchEvent::Evict { block: *block }))
            })
        };
        let small = shrink(&noisy_trace(), &mut fails);
        assert_eq!(small.len(), 2);
        assert!(matches!(small.events()[0], PrefetchEvent::Access { .. }));
        assert!(matches!(small.events()[1], PrefetchEvent::Evict { .. }));
    }

    #[test]
    fn result_always_satisfies_the_predicate() {
        let mut calls = 0;
        let mut fails = |t: &PrefetchTrace| {
            calls += 1;
            t.len() >= 7 // arbitrary size-based "failure"
        };
        let small = shrink(&noisy_trace(), &mut fails);
        assert_eq!(small.len(), 7);
        assert!(calls > 1);
    }

    #[test]
    fn canonicalization_is_skipped_when_it_breaks_the_failure() {
        // Address-dependent bug: only trips on the raw PC 0xbeef.
        let mut fails = |t: &PrefetchTrace| {
            t.events()
                .iter()
                .any(|e| matches!(e, PrefetchEvent::Access { pc: 0xbeef, .. }))
        };
        let small = shrink(&noisy_trace(), &mut fails);
        assert_eq!(small.len(), 1);
        assert!(matches!(
            small.events()[0],
            PrefetchEvent::Access { pc: 0xbeef, .. }
        ));
    }

    #[test]
    fn canonical_form_is_independent_of_raw_addresses() {
        let mut a = PrefetchTrace::new(2048);
        a.access(0x1111, 32 * 50 + 3);
        a.access(0x2222, 32 * 51 + 9);
        let mut b = PrefetchTrace::new(2048);
        b.access(0x7777, 32 * 4 + 3);
        b.access(0x8888, 32 * 2 + 9);
        let mut fails = |t: &PrefetchTrace| t.len() >= 2;
        assert_eq!(shrink(&a, &mut fails), shrink(&b, &mut fails));
    }

    #[test]
    #[should_panic(expected = "does not fail")]
    fn refuses_a_passing_trace() {
        let t = PrefetchTrace::new(2048);
        shrink(&t, &mut |_| false);
    }

    #[test]
    fn shrink_items_works_on_arbitrary_item_types() {
        // "Failure" needs a 7 somewhere after a 3; everything else is noise.
        let items: Vec<u32> = (0..100).collect();
        let small = shrink_items(&items, &mut |c| {
            c.iter()
                .position(|&x| x == 3)
                .is_some_and(|at| c[at..].contains(&7))
        });
        assert_eq!(small, vec![3, 7]);
    }

    #[test]
    fn shrink_items_result_always_satisfies_the_predicate() {
        let items = vec!["a"; 31];
        let small = shrink_items(&items, &mut |c| c.len() >= 5);
        assert_eq!(small.len(), 5);
    }
}
