//! # bingo-oracle — executable specification and invariant oracles
//!
//! The optimized prefetchers in `crates/core` and `crates/baselines` are
//! validated end-to-end only through simulation metrics, which is exactly
//! the regime where a silent prediction bug hides: a model/implementation
//! drift shifts coverage by a few percent and every downstream figure
//! quietly absorbs it. This crate provides the independent ground truth a
//! differential harness can hold them against:
//!
//! * [`SpecBingo`] — a deliberately naive, allocation-heavy reference
//!   model of Bingo written straight from the paper text (Section IV):
//!   one unified table as a plain list of sets, footprints as
//!   [`std::collections::BTreeSet`], linear scans everywhere, the
//!   long-then-short lookup cascade, and the ≥ 20 % footprint vote. It
//!   shares no table, no LRU machinery, and no hot-path code with the
//!   real [`bingo::Bingo`] — only the event-key hash and the
//!   configuration type, which are interface, not logic.
//! * Invariant oracles ([`StrideOracle`], [`BopOracle`],
//!   [`NextLineOracle`], [`SmsOracle`]) — weaker, property-style checkers
//!   for the baselines: a stride prefetcher may only predict along the
//!   delta it actually observed, BOP may only emit multiples of an offset
//!   from its candidate list, SMS never leaves the trigger region.
//! * [`generate`] — a seeded adversarial trace generator producing
//!   page-boundary straddles, trigger/retrigger races,
//!   eviction-before-fill, aliasing PCs, and tiny/huge region configs.
//! * [`shrink`] — a hand-rolled ddmin-style shrinker that reduces a
//!   failing trace to a minimal, canonicalized regression case.
//!
//! The differential harness that replays traces through both sides lives
//! in `bingo-bench::differential`; the committed regression corpus lives
//! in `tests/corpus/` at the workspace root. See `TESTING.md` for the
//! workflow.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generate;
pub mod invariants;
pub mod shrink;
pub mod spec;

pub use generate::{generate, GeneratorConfig};
pub use invariants::{BopOracle, NextLineOracle, SmsOracle, StrideOracle};
pub use shrink::{shrink, shrink_items};
pub use spec::{SpecBingo, SpecStep};

use bingo_sim::{AccessInfo, BlockAddr};

/// A step-level checker of prefetcher behavior.
///
/// The differential harness feeds every replayed event to an oracle
/// together with what the real prefetcher emitted for it. An oracle either
/// models the prefetcher exactly ([`SpecBingo`]) and diffs the whole
/// burst, or tracks just enough state to check an invariant every burst
/// must satisfy (the baseline oracles). A violation is reported as a
/// human-readable explanation, which ends up in the shrunk trace's header
/// comment.
pub trait StepOracle {
    /// Short name for reports ("SpecBingo", "StrideInvariant", ...).
    fn name(&self) -> &str;

    /// Observes one demand access and the candidate burst the real
    /// prefetcher emitted for it.
    ///
    /// # Errors
    ///
    /// An explanation of the violated expectation.
    fn check_access(&mut self, info: &AccessInfo, emitted: &[BlockAddr]) -> Result<(), String>;

    /// Observes an LLC eviction (prefetchers emit nothing on these).
    ///
    /// # Errors
    ///
    /// An explanation of the violated expectation (default: none).
    fn check_eviction(&mut self, block: BlockAddr) -> Result<(), String> {
        let _ = block;
        Ok(())
    }
}

fn format_blocks(blocks: &[BlockAddr]) -> String {
    let inner: Vec<String> = blocks.iter().map(|b| format!("{:#x}", b.index())).collect();
    format!("[{}]", inner.join(", "))
}
