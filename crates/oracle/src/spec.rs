//! The executable specification of Bingo, transliterated from the paper
//! text (Section IV) with no regard for speed.
//!
//! Where the real implementation packs footprints into `u64` bitmaps and
//! reuses buffers, this model allocates a fresh
//! [`BTreeSet`](std::collections::BTreeSet) per footprint and scans every
//! structure linearly, so each rule of the paper is one short, auditable
//! block of code:
//!
//! 1. **Accumulation** (as in SMS): a *filter* list holds regions that
//!    have seen only their trigger access; the second access *promotes*
//!    the region to the *active* list where its footprint accumulates. The
//!    active list holds `accumulation_entries` residencies; promotion into
//!    a full list evicts the least-recently-touched residency straight
//!    into training.
//! 2. **Training**: a residency whose footprint has at least
//!    `min_footprint_blocks` blocks is stored in the unified history,
//!    indexed by a hash of its short event (`PC+Offset`) and tagged with
//!    its long event (`PC+Address`). Retraining an existing long tag
//!    replaces its footprint; otherwise a free way is used, else the
//!    least-recently-touched way is evicted (ties broken toward the
//!    lowest way, like a fixed-priority encoder).
//! 3. **Prediction** on each trigger access: look up the long event
//!    first; on a hit replay its footprint verbatim. Otherwise gather
//!    *all* ways matching the short event and vote: a block is kept if it
//!    appears in at least `ceil(vote_threshold * matches)` footprints
//!    (at least one). If the vote keeps nothing beyond the trigger block
//!    itself, no prefetch is issued and the lookup does not count as a
//!    hit. Prefetches are the kept offsets of the trigger's region,
//!    excluding the trigger block, in ascending offset order.
//!
//! The model reuses [`EventKind`]'s key hash and [`BingoConfig`] from the
//! implementation — keys and parameters are *interface* shared by both
//! sides — but re-derives every piece of table, replacement, and voting
//! *logic* independently, which is what makes the differential comparison
//! meaningful.

use std::collections::{BTreeMap, BTreeSet};

use bingo::{BingoConfig, EventKind};
use bingo_sim::{AccessInfo, BlockAddr, PrefetchSource, RegionId};

use crate::{format_blocks, StepOracle};

/// The observable outcome of one access fed to the specification — the
/// spec-side counterpart of [`bingo::PredictionStep`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecStep {
    /// Whether the access opened a new region residency (and therefore
    /// consulted the history).
    pub trigger: bool,
    /// Which event produced the prediction.
    pub source: PrefetchSource,
    /// Predicted blocks, ascending.
    pub prefetches: Vec<BlockAddr>,
}

#[derive(Clone, Debug)]
struct Residency {
    region: RegionId,
    trigger_pc: u64,
    trigger_block: u64,
    trigger_offset: u32,
    blocks: BTreeSet<u32>,
    last_touch: u64,
}

#[derive(Clone, Debug)]
struct Entry {
    long_key: u64,
    short_key: u64,
    blocks: BTreeSet<u32>,
    last_touch: u64,
}

/// The naive, obviously-correct Bingo reference model.
#[derive(Debug)]
pub struct SpecBingo {
    cfg: BingoConfig,
    /// Single-access regions awaiting their second access.
    filter: Vec<Residency>,
    /// Multi-access regions whose footprints are accumulating.
    active: Vec<Residency>,
    /// The unified history: `sets[i]` holds up to `history_ways` entries;
    /// `None` marks a free way (way position matters only for the
    /// eviction tie-break).
    sets: Vec<Vec<Option<Entry>>>,
    set_mask: u64,
    /// One logical clock for every recency decision. Only the relative
    /// order of touches matters, so a single global counter specifies LRU
    /// for all structures at once.
    clock: u64,
}

impl SpecBingo {
    /// Builds the specification for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `history_entries / history_ways` is not a power of two
    /// (the same geometry rule the implementation enforces).
    pub fn new(cfg: BingoConfig) -> Self {
        let sets = cfg.history_entries / cfg.history_ways;
        assert!(
            sets.is_power_of_two() && sets * cfg.history_ways == cfg.history_entries,
            "history geometry must give a power-of-two set count"
        );
        SpecBingo {
            filter: Vec::new(),
            active: Vec::new(),
            sets: vec![vec![None; cfg.history_ways]; sets],
            set_mask: sets as u64 - 1,
            clock: 0,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BingoConfig {
        &self.cfg
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Rule 1: the access either extends a live residency or opens a new
    /// one. Returns whether it was a trigger, plus any residency forced
    /// out of a full active list (which goes straight to training).
    fn observe(&mut self, info: &AccessInfo) -> (bool, Option<Residency>) {
        let now = self.tick();
        if let Some(r) = self.active.iter_mut().find(|r| r.region == info.region) {
            r.blocks.insert(info.offset);
            r.last_touch = now;
            return (false, None);
        }
        if let Some(i) = self.filter.iter().position(|r| r.region == info.region) {
            let mut r = self.filter.remove(i);
            r.blocks.insert(info.offset);
            r.last_touch = now;
            let evicted = if self.active.len() >= self.cfg.accumulation_entries {
                Some(remove_lru(&mut self.active))
            } else {
                None
            };
            self.active.push(r);
            return (false, evicted);
        }
        // A trigger: the region enters the filter with just its trigger
        // block recorded. Single-access regions churn here; a full filter
        // silently drops its least-recently-touched region (a one-block
        // footprint would not pass training anyway).
        let filter_capacity = self.cfg.accumulation_entries.max(8);
        if self.filter.len() >= filter_capacity {
            let _ = remove_lru(&mut self.filter);
        }
        self.filter.push(Residency {
            region: info.region,
            trigger_pc: info.pc.raw(),
            trigger_block: info.block.index(),
            trigger_offset: info.offset,
            blocks: BTreeSet::from([info.offset]),
            last_touch: now,
        });
        (true, None)
    }

    /// Rule 2: store the residency's footprint under its trigger events.
    fn train(&mut self, res: Residency) {
        if (res.blocks.len() as u32) < self.cfg.min_footprint_blocks {
            return;
        }
        let long_key = EventKind::PcAddress.key_parts(
            res.trigger_pc,
            res.trigger_block,
            res.trigger_offset as u64,
        );
        let short_key = EventKind::PcOffset.key_parts(
            res.trigger_pc,
            res.trigger_block,
            res.trigger_offset as u64,
        );
        let now = self.tick();
        let set = &mut self.sets[(short_key & self.set_mask) as usize];
        if let Some(e) = set.iter_mut().flatten().find(|e| e.long_key == long_key) {
            e.short_key = short_key;
            e.blocks = res.blocks;
            e.last_touch = now;
            return;
        }
        let way = free_or_lru_way(set);
        set[way] = Some(Entry {
            long_key,
            short_key,
            blocks: res.blocks,
            last_touch: now,
        });
    }

    /// Rule 3: long event first, then the short-event vote.
    fn predict(&mut self, info: &AccessInfo) -> (PrefetchSource, Vec<BlockAddr>) {
        let long_key = EventKind::PcAddress.key_of(info);
        let short_key = EventKind::PcOffset.key_of(info);
        let now = self.tick();
        let set = &mut self.sets[(short_key & self.set_mask) as usize];

        if let Some(e) = set.iter_mut().flatten().find(|e| e.long_key == long_key) {
            e.last_touch = now;
            let blocks = e.blocks.clone();
            return (PrefetchSource::LongEvent, emit(&self.cfg, info, &blocks));
        }

        let mut matches = 0u32;
        let mut votes: BTreeMap<u32, u32> = BTreeMap::new();
        for e in set.iter_mut().flatten() {
            if e.short_key == short_key {
                matches += 1;
                e.last_touch = now;
                for &offset in &e.blocks {
                    *votes.entry(offset).or_insert(0) += 1;
                }
            }
        }
        if matches == 0 {
            return (PrefetchSource::Unattributed, Vec::new());
        }
        // "At least 20% of the matching footprints": the same arithmetic
        // expression as the implementation, so the float rounding at the
        // boundary is part of the shared interface rather than a source of
        // spurious diffs.
        let need = ((self.cfg.vote_threshold * matches as f64).ceil() as u32).max(1);
        let kept: BTreeSet<u32> = votes
            .into_iter()
            .filter(|&(_, v)| v >= need)
            .map(|(offset, _)| offset)
            .collect();
        // A vote that keeps nothing beyond the trigger block issues no
        // prefetch and is not a match.
        if kept.iter().any(|&offset| offset != info.offset) {
            (PrefetchSource::ShortVote, emit(&self.cfg, info, &kept))
        } else {
            (PrefetchSource::Unattributed, Vec::new())
        }
    }

    /// Feeds one demand access through rules 1–3.
    pub fn step(&mut self, info: &AccessInfo) -> SpecStep {
        let (trigger, overflowed) = self.observe(info);
        if let Some(res) = overflowed {
            self.train(res);
        }
        let (source, prefetches) = if trigger {
            self.predict(info)
        } else {
            (PrefetchSource::Unattributed, Vec::new())
        };
        SpecStep {
            trigger,
            source,
            prefetches,
        }
    }

    /// An LLC eviction ends the block's region residency and trains it
    /// (when eviction training is enabled — the paper's configuration).
    pub fn evict(&mut self, block: BlockAddr) {
        if !self.cfg.train_on_eviction {
            return;
        }
        let region = self.cfg.region.region_of(block);
        let res = if let Some(i) = self.active.iter().position(|r| r.region == region) {
            Some(self.active.remove(i))
        } else {
            self.filter
                .iter()
                .position(|r| r.region == region)
                .map(|i| self.filter.remove(i))
        };
        if let Some(res) = res {
            self.train(res);
        }
    }
}

/// Removes and returns the least-recently-touched residency.
fn remove_lru(list: &mut Vec<Residency>) -> Residency {
    let (i, _) = list
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.last_touch)
        .expect("caller checked non-empty");
    list.remove(i)
}

/// The victim way for an insertion: the first free way, else the
/// least-recently-touched one (first such way on a tie).
fn free_or_lru_way(set: &[Option<Entry>]) -> usize {
    if let Some(i) = set.iter().position(|w| w.is_none()) {
        return i;
    }
    set.iter()
        .enumerate()
        .min_by_key(|(_, w)| w.as_ref().expect("no free way").last_touch)
        .map(|(i, _)| i)
        .expect("sets are non-empty")
}

/// The predicted blocks: every kept offset of the trigger's region except
/// the trigger block itself, ascending.
fn emit(cfg: &BingoConfig, info: &AccessInfo, offsets: &BTreeSet<u32>) -> Vec<BlockAddr> {
    offsets
        .iter()
        .filter(|&&offset| offset != info.offset)
        .map(|&offset| cfg.region.block_at(info.region, offset))
        .collect()
}

impl StepOracle for SpecBingo {
    fn name(&self) -> &str {
        "SpecBingo"
    }

    fn check_access(&mut self, info: &AccessInfo, emitted: &[BlockAddr]) -> Result<(), String> {
        let step = self.step(info);
        if step.prefetches == emitted {
            Ok(())
        } else {
            Err(format!(
                "pc={:#x} block={:#x}: spec predicts {}, implementation emitted {}",
                info.pc.raw(),
                info.block.index(),
                format_blocks(&step.prefetches),
                format_blocks(emitted),
            ))
        }
    }

    fn check_eviction(&mut self, block: BlockAddr) -> Result<(), String> {
        self.evict(block);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{Pc, RegionGeometry};

    fn small_cfg() -> BingoConfig {
        BingoConfig {
            history_entries: 256,
            history_ways: 4,
            accumulation_entries: 8,
            ..BingoConfig::paper()
        }
    }

    fn info(pc: u64, block: u64) -> AccessInfo {
        AccessInfo::demand(
            RegionGeometry::default(),
            Pc::new(pc),
            BlockAddr::new(block),
            0,
        )
    }

    fn visit(s: &mut SpecBingo, pc: u64, region: u64, offsets: &[u32]) -> SpecStep {
        let mut first = None;
        for &off in offsets {
            let step = s.step(&info(pc, region * 32 + off as u64));
            first.get_or_insert(step);
        }
        s.evict(BlockAddr::new(region * 32 + offsets[0] as u64));
        first.expect("at least one offset")
    }

    #[test]
    fn long_event_replays_exact_footprint() {
        let mut s = SpecBingo::new(small_cfg());
        let first = visit(&mut s, 0x400, 10, &[3, 7, 9]);
        assert!(first.trigger);
        assert!(first.prefetches.is_empty());
        let replay = visit(&mut s, 0x400, 10, &[3]);
        assert_eq!(replay.source, PrefetchSource::LongEvent);
        assert_eq!(
            replay.prefetches,
            vec![BlockAddr::new(10 * 32 + 7), BlockAddr::new(10 * 32 + 9)]
        );
    }

    #[test]
    fn short_vote_generalizes_to_new_regions() {
        let mut s = SpecBingo::new(small_cfg());
        visit(&mut s, 0x400, 10, &[3, 7, 9]);
        let step = visit(&mut s, 0x400, 99, &[3]);
        assert_eq!(step.source, PrefetchSource::ShortVote);
        assert_eq!(
            step.prefetches,
            vec![BlockAddr::new(99 * 32 + 7), BlockAddr::new(99 * 32 + 9)]
        );
    }

    #[test]
    fn non_trigger_accesses_predict_nothing() {
        let mut s = SpecBingo::new(small_cfg());
        visit(&mut s, 0x400, 10, &[3, 7]);
        assert!(s.step(&info(0x400, 50 * 32 + 3)).trigger);
        let second = s.step(&info(0x400, 50 * 32 + 9));
        assert!(!second.trigger);
        assert!(second.prefetches.is_empty());
    }

    #[test]
    fn strict_vote_can_keep_nothing() {
        let mut s = SpecBingo::new(BingoConfig {
            vote_threshold: 0.9,
            ..small_cfg()
        });
        visit(&mut s, 0x400, 10, &[3, 7]);
        visit(&mut s, 0x400, 11, &[3, 9]);
        let step = visit(&mut s, 0x400, 99, &[3]);
        assert_eq!(step.source, PrefetchSource::Unattributed);
        assert!(step.prefetches.is_empty());
    }

    #[test]
    fn single_access_regions_never_train() {
        let mut s = SpecBingo::new(small_cfg());
        visit(&mut s, 0x400, 10, &[3]);
        let step = visit(&mut s, 0x400, 99, &[3]);
        assert!(step.prefetches.is_empty());
    }

    #[test]
    fn check_access_flags_a_mismatch() {
        let mut s = SpecBingo::new(small_cfg());
        let bogus = [BlockAddr::new(9999)];
        let err = s
            .check_access(&info(0x400, 10 * 32 + 3), &bogus)
            .unwrap_err();
        assert!(err.contains("spec predicts []"), "{err}");
        assert!(err.contains("0x270f"), "{err}");
    }
}
