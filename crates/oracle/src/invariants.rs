//! Invariant oracles for the baseline prefetchers.
//!
//! Unlike [`crate::SpecBingo`], these do not re-model their target
//! exactly; they track the minimum state needed to check a property every
//! burst must satisfy, which makes them robust to internal tuning (table
//! sizes, confidence thresholds, learning schedules) while still catching
//! the bugs that matter: predicting along a stride that was never
//! observed, emitting an offset outside BOP's candidate list, SMS leaking
//! prefetches across a region boundary.

use std::collections::BTreeMap;

use bingo_baselines::{BopConfig, StrideConfig};
use bingo_sim::{AccessInfo, BlockAddr, RegionGeometry};

use crate::{format_blocks, StepOracle};

/// Builds the burst a degree-`degree` prefetcher issues along delta `d`
/// from `block` — the shared shape of stride, BOP, and next-line bursts
/// (saturating at block zero exactly as [`BlockAddr::offset`] does).
fn delta_burst(block: BlockAddr, d: i64, degree: usize) -> Vec<BlockAddr> {
    (1..=degree as i64).map(|k| block.offset(d * k)).collect()
}

/// Checks that a stride prefetcher only ever predicts along the delta it
/// actually observed: whenever a burst is issued for PC `p` at block `X`,
/// the burst must be `X + d, X + 2d, ...` where `d` is the distance from
/// the *previous* access of `p` to `X`.
///
/// This holds for the real [`bingo_baselines::StridePrefetcher`] even
/// under PC collisions, because a collision resets the table entry and a
/// reset entry cannot fire before re-observing the PC — so at fire time
/// the entry's stride always equals the latest same-PC delta. The oracle
/// tracks PCs in an unbounded map precisely so collisions on the real
/// side cannot excuse a wrong prediction.
#[derive(Debug)]
pub struct StrideOracle {
    degree: usize,
    last_block: BTreeMap<u64, u64>,
}

impl StrideOracle {
    /// Builds the oracle for a stride prefetcher with `cfg`'s degree.
    pub fn new(cfg: &StrideConfig) -> Self {
        StrideOracle {
            degree: cfg.degree,
            last_block: BTreeMap::new(),
        }
    }
}

impl StepOracle for StrideOracle {
    fn name(&self) -> &str {
        "StrideInvariant"
    }

    fn check_access(&mut self, info: &AccessInfo, emitted: &[BlockAddr]) -> Result<(), String> {
        let pc = info.pc.raw();
        let block = info.block.index();
        let prev = self.last_block.insert(pc, block);
        if emitted.is_empty() {
            return Ok(());
        }
        let Some(prev) = prev else {
            return Err(format!(
                "pc={pc:#x}: prefetched on the very first access of this PC"
            ));
        };
        let d = block as i64 - prev as i64;
        if d == 0 {
            return Err(format!(
                "pc={pc:#x} block={block:#x}: prefetched on a repeated address (stride 0)"
            ));
        }
        let expect = delta_burst(info.block, d, self.degree);
        if emitted == expect {
            Ok(())
        } else {
            Err(format!(
                "pc={pc:#x} block={block:#x}: observed stride {d} implies {}, got {}",
                format_blocks(&expect),
                format_blocks(emitted),
            ))
        }
    }
}

/// Checks that every BOP burst is `X + d, X + 2d, ...` for a *single*
/// delta `d` drawn from the configured candidate-offset list, with
/// exactly `degree` candidates per burst. BOP's learning machinery
/// (scores, rounds, the RR table) is deliberately not modeled: whatever
/// offset it selects, it must come from the list it was given.
#[derive(Debug)]
pub struct BopOracle {
    degree: usize,
    offsets: Vec<i64>,
}

impl BopOracle {
    /// Builds the oracle for a BOP prefetcher with `cfg`'s candidate list
    /// and degree.
    pub fn new(cfg: &BopConfig) -> Self {
        BopOracle {
            degree: cfg.degree,
            offsets: cfg.offsets.clone(),
        }
    }
}

impl StepOracle for BopOracle {
    fn name(&self) -> &str {
        "BopInvariant"
    }

    fn check_access(&mut self, info: &AccessInfo, emitted: &[BlockAddr]) -> Result<(), String> {
        if emitted.is_empty() {
            return Ok(());
        }
        if emitted.len() != self.degree {
            return Err(format!(
                "block={:#x}: burst of {} candidates from a degree-{} BOP",
                info.block.index(),
                emitted.len(),
                self.degree
            ));
        }
        let explained = self
            .offsets
            .iter()
            .any(|&d| emitted == delta_burst(info.block, d, self.degree));
        if explained {
            Ok(())
        } else {
            Err(format!(
                "block={:#x}: burst {} matches no candidate offset",
                info.block.index(),
                format_blocks(emitted),
            ))
        }
    }
}

/// Exact mirror of the trivial next-line prefetcher: every access emits
/// precisely the next `degree` sequential blocks. Mostly a self-test of
/// the replay plumbing — if this oracle reports a diff, the harness, not
/// the prefetcher, is usually what broke.
#[derive(Debug)]
pub struct NextLineOracle {
    degree: usize,
}

impl NextLineOracle {
    /// Builds the oracle for a degree-`degree` next-line prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero (as does the prefetcher itself).
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be nonzero");
        NextLineOracle { degree }
    }
}

impl StepOracle for NextLineOracle {
    fn name(&self) -> &str {
        "NextLineMirror"
    }

    fn check_access(&mut self, info: &AccessInfo, emitted: &[BlockAddr]) -> Result<(), String> {
        let expect = delta_burst(info.block, 1, self.degree);
        if emitted == expect {
            Ok(())
        } else {
            Err(format!(
                "block={:#x}: expected {}, got {}",
                info.block.index(),
                format_blocks(&expect),
                format_blocks(emitted),
            ))
        }
    }
}

/// Checks the footprint-confinement invariant of SMS (and any per-page
/// spatial prefetcher): every predicted block lies in the trigger's
/// region, is not the trigger block itself, appears at most once, and the
/// burst is emitted in ascending order (footprints are bitmaps — there is
/// no legitimate way to emit them otherwise).
#[derive(Debug)]
pub struct SmsOracle {
    region: RegionGeometry,
}

impl SmsOracle {
    /// Builds the oracle for a spatial prefetcher using `region` geometry.
    pub fn new(region: RegionGeometry) -> Self {
        SmsOracle { region }
    }
}

impl StepOracle for SmsOracle {
    fn name(&self) -> &str {
        "SmsRegionInvariant"
    }

    fn check_access(&mut self, info: &AccessInfo, emitted: &[BlockAddr]) -> Result<(), String> {
        for b in emitted {
            if self.region.region_of(*b) != info.region {
                return Err(format!(
                    "block={:#x}: prefetch {:#x} escapes the trigger region",
                    info.block.index(),
                    b.index()
                ));
            }
            if *b == info.block {
                return Err(format!(
                    "block={:#x}: prefetched the trigger block itself",
                    info.block.index()
                ));
            }
        }
        if emitted.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!(
                "block={:#x}: burst {} is not strictly ascending",
                info.block.index(),
                format_blocks(emitted),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::Pc;

    fn info(pc: u64, block: u64) -> AccessInfo {
        AccessInfo::demand(
            RegionGeometry::default(),
            Pc::new(pc),
            BlockAddr::new(block),
            0,
        )
    }

    fn blocks(idx: &[u64]) -> Vec<BlockAddr> {
        idx.iter().map(|&i| BlockAddr::new(i)).collect()
    }

    #[test]
    fn stride_accepts_burst_along_observed_delta() {
        let mut o = StrideOracle::new(&StrideConfig::typical());
        assert!(o.check_access(&info(0x400, 100), &[]).is_ok());
        assert!(o
            .check_access(&info(0x400, 104), &blocks(&[108, 112]))
            .is_ok());
    }

    #[test]
    fn stride_rejects_burst_off_the_observed_delta() {
        let mut o = StrideOracle::new(&StrideConfig::typical());
        assert!(o.check_access(&info(0x400, 100), &[]).is_ok());
        let err = o
            .check_access(&info(0x400, 104), &blocks(&[105, 106]))
            .unwrap_err();
        assert!(err.contains("observed stride 4"), "{err}");
    }

    #[test]
    fn stride_rejects_first_access_prefetch_and_zero_delta() {
        let mut o = StrideOracle::new(&StrideConfig::typical());
        assert!(o.check_access(&info(0x400, 100), &blocks(&[104])).is_err());
        assert!(o.check_access(&info(0x400, 100), &blocks(&[104])).is_err());
    }

    #[test]
    fn stride_tracks_pcs_independently() {
        let mut o = StrideOracle::new(&StrideConfig::typical());
        assert!(o.check_access(&info(0x400, 100), &[]).is_ok());
        assert!(o.check_access(&info(0x500, 1000), &[]).is_ok());
        // PC 0x400's stride is judged against its own history, not 0x500's.
        assert!(o
            .check_access(&info(0x400, 102), &blocks(&[104, 106]))
            .is_ok());
    }

    #[test]
    fn bop_accepts_candidate_offsets_only() {
        let mut o = BopOracle::new(&BopConfig::paper());
        assert!(o.check_access(&info(0x400, 100), &blocks(&[103])).is_ok());
        let err = o
            .check_access(&info(0x400, 100), &blocks(&[107]))
            .unwrap_err();
        assert!(err.contains("no candidate offset"), "{err}");
    }

    #[test]
    fn bop_rejects_wrong_degree() {
        let mut o = BopOracle::new(&BopConfig::paper()); // degree 1
        let err = o
            .check_access(&info(0x400, 100), &blocks(&[101, 102]))
            .unwrap_err();
        assert!(err.contains("degree-1"), "{err}");
    }

    #[test]
    fn next_line_mirror_is_exact() {
        let mut o = NextLineOracle::new(2);
        assert!(o.check_access(&info(0x1, 10), &blocks(&[11, 12])).is_ok());
        assert!(o.check_access(&info(0x1, 10), &blocks(&[11])).is_err());
        assert!(o.check_access(&info(0x1, 10), &[]).is_err());
    }

    #[test]
    fn sms_confines_bursts_to_the_trigger_region() {
        let mut o = SmsOracle::new(RegionGeometry::default());
        let trigger = info(0x400, 32 * 5 + 3);
        assert!(o
            .check_access(&trigger, &blocks(&[32 * 5 + 7, 32 * 5 + 9]))
            .is_ok());
        let err = o.check_access(&trigger, &blocks(&[32 * 6])).unwrap_err();
        assert!(err.contains("escapes"), "{err}");
        assert!(o.check_access(&trigger, &blocks(&[32 * 5 + 3])).is_err());
        assert!(o
            .check_access(&trigger, &blocks(&[32 * 5 + 9, 32 * 5 + 7]))
            .is_err());
    }
}
