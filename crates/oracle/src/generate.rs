//! Seeded adversarial trace generation.
//!
//! The generator is deliberately not a realistic workload model — the
//! workload crate already has those. It is a bug-hunting distribution:
//! every action is chosen because it stresses a boundary the prefetchers
//! must get right. Sequential walks straddle region boundaries mid-burst;
//! a small PC pool forces history-table aliasing; exact `(pc, block)`
//! revisits race a region's trigger against its own retrigger; evictions
//! target both hot blocks (ending live residencies) and blocks that were
//! never accessed (eviction-before-fill). Everything is driven by a
//! [`bingo_rng::SmallRng`] seed, so a trace is reproducible from
//! `(config, seed)` alone.

use bingo_rng::{Rng, SeedableRng, SmallRng};
use bingo_sim::{PrefetchTrace, BLOCK_BYTES};

/// Shape parameters for [`generate`].
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Region size in bytes (power of two, ≥ one block).
    pub region_bytes: u64,
    /// Number of events (accesses + evictions) in the trace.
    pub events: usize,
    /// Size of the PC pool. Small pools maximize aliasing.
    pub pcs: usize,
    /// Number of distinct regions the trace touches.
    pub regions: u64,
}

impl GeneratorConfig {
    /// Small tables' worth of traffic: few PCs, few regions, heavy reuse.
    /// The workhorse preset — collisions and evictions happen constantly.
    pub fn small() -> Self {
        GeneratorConfig {
            region_bytes: 2048,
            events: 400,
            pcs: 4,
            regions: 8,
        }
    }

    /// Paper-scale regions with a wider footprint of PCs and regions.
    pub fn paper() -> Self {
        GeneratorConfig {
            region_bytes: 2048,
            events: 600,
            pcs: 12,
            regions: 32,
        }
    }

    /// Degenerate 128-byte regions: two blocks per region, so nearly
    /// every footprint is empty-or-singleton and sequential walks cross a
    /// region boundary every other access.
    pub fn tiny_regions() -> Self {
        GeneratorConfig {
            region_bytes: 128,
            events: 300,
            pcs: 3,
            regions: 24,
        }
    }

    /// Oversized 4-KiB regions: 64-bit footprints fill slowly and bursts
    /// within one region get long.
    pub fn huge_regions() -> Self {
        GeneratorConfig {
            region_bytes: 4096,
            events: 600,
            pcs: 6,
            regions: 6,
        }
    }

    /// All presets, in a fixed order suitable for round-robin fuzzing.
    pub fn all() -> Vec<GeneratorConfig> {
        vec![
            GeneratorConfig::small(),
            GeneratorConfig::paper(),
            GeneratorConfig::tiny_regions(),
            GeneratorConfig::huge_regions(),
        ]
    }

    fn blocks_per_region(&self) -> u64 {
        self.region_bytes / BLOCK_BYTES
    }
}

/// Generates a reproducible adversarial trace from `(cfg, seed)`.
///
/// # Panics
///
/// Panics if `cfg.region_bytes` is not a power of two of at least one
/// block, or if `cfg.pcs` or `cfg.regions` is zero.
pub fn generate(cfg: &GeneratorConfig, seed: u64) -> PrefetchTrace {
    assert!(cfg.pcs > 0 && cfg.regions > 0, "empty pc/region pool");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = PrefetchTrace::new(cfg.region_bytes);
    let bpr = cfg.blocks_per_region();
    let pc_pool: Vec<u64> = (0..cfg.pcs as u64).map(|i| 0x400 + 4 * i).collect();
    let max_block = cfg.regions * bpr;

    // The walker streams sequentially and straddles region boundaries as a
    // matter of course; everything else perturbs it.
    let mut walker: u64 = rng.gen_range(0..max_block);
    // Exact (pc, block) pairs seen so far, for revisit races.
    let mut seen: Vec<(u64, u64)> = Vec::new();
    // Blocks accessed so far, for plausible (post-fill) evictions.
    let mut touched: Vec<u64> = Vec::new();

    fn access(
        trace: &mut PrefetchTrace,
        seen: &mut Vec<(u64, u64)>,
        touched: &mut Vec<u64>,
        pc: u64,
        block: u64,
    ) {
        trace.access(pc, block);
        if seen.len() < 4096 {
            seen.push((pc, block));
        }
        if touched.len() < 4096 {
            touched.push(block);
        }
    }

    while trace.len() < cfg.events {
        match rng.gen_range(0u32..100) {
            // Sequential walk: 1–6 consecutive blocks under one PC. Long
            // enough runs cross a region boundary mid-burst.
            0..=34 => {
                let pc = pc_pool[rng.gen_range(0..pc_pool.len())];
                for _ in 0..rng.gen_range(1usize..=6) {
                    access(&mut trace, &mut seen, &mut touched, pc, walker);
                    walker = (walker + 1) % max_block;
                }
            }
            // Teleport the walker right up against a region boundary so
            // the next walk is guaranteed to straddle it.
            35..=39 => {
                let region = rng.gen_range(0..cfg.regions);
                walker = region * bpr + (bpr - 1);
            }
            // Random single access: fresh (pc, block) pairings, sparse
            // footprints, new residencies.
            40..=54 => {
                let pc = pc_pool[rng.gen_range(0..pc_pool.len())];
                let block = rng.gen_range(0..max_block);
                access(&mut trace, &mut seen, &mut touched, pc, block);
            }
            // Trigger/retrigger race: replay an exact (pc, block) pair.
            // If it was a region trigger, this re-arms the same residency.
            55..=64 => {
                if seen.is_empty() {
                    continue;
                }
                let (pc, block) = seen[rng.gen_range(0..seen.len())];
                access(&mut trace, &mut seen, &mut touched, pc, block);
            }
            // PC aliasing on a hot block: same block, different PC, so
            // long-event keys diverge while short-event keys collide.
            65..=71 => {
                if seen.is_empty() {
                    continue;
                }
                let (_, block) = seen[rng.gen_range(0..seen.len())];
                let pc = pc_pool[rng.gen_range(0..pc_pool.len())];
                access(&mut trace, &mut seen, &mut touched, pc, block);
            }
            // Dense in-region burst: ascending blocks under one PC, the
            // pattern that actually trains useful footprints.
            72..=81 => {
                let pc = pc_pool[rng.gen_range(0..pc_pool.len())];
                let region = rng.gen_range(0..cfg.regions);
                let start = rng.gen_range(0..bpr);
                let len = rng.gen_range(1..=bpr.min(8));
                for k in 0..len {
                    let off = start + k;
                    if off >= bpr {
                        break;
                    }
                    access(&mut trace, &mut seen, &mut touched, pc, region * bpr + off);
                }
            }
            // Evict a block that was actually accessed: ends a residency
            // and trains the history table.
            82..=92 => {
                if touched.is_empty() {
                    continue;
                }
                let block = touched[rng.gen_range(0..touched.len())];
                trace.evict(block);
            }
            // Evict a block that was never accessed (or a random one):
            // eviction-before-fill must be a harmless no-op on both sides.
            _ => {
                let block = rng.gen_range(0..max_block.max(2) * 2);
                trace.evict(block);
            }
        }
    }
    // A multi-access action may overshoot the budget; trim to exact size so
    // the trace length is a pure function of the config.
    let mut events = trace.events().to_vec();
    events.truncate(cfg.events);
    trace.with_events(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::PrefetchEvent;

    #[test]
    fn generation_is_deterministic_in_config_and_seed() {
        let cfg = GeneratorConfig::small();
        assert_eq!(generate(&cfg, 7), generate(&cfg, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GeneratorConfig::small();
        assert_ne!(generate(&cfg, 1), generate(&cfg, 2));
    }

    #[test]
    fn respects_requested_event_count() {
        for cfg in GeneratorConfig::all() {
            let t = generate(&cfg, 3);
            assert_eq!(t.len(), cfg.events);
        }
    }

    #[test]
    fn traces_contain_both_accesses_and_evictions() {
        let t = generate(&GeneratorConfig::small(), 11);
        let accesses = t
            .events()
            .iter()
            .filter(|e| matches!(e, PrefetchEvent::Access { .. }))
            .count();
        let evicts = t.len() - accesses;
        assert!(
            accesses > 0 && evicts > 0,
            "{accesses} accesses, {evicts} evicts"
        );
    }

    #[test]
    fn access_blocks_stay_within_the_configured_region_pool() {
        let cfg = GeneratorConfig::tiny_regions();
        let bpr = cfg.region_bytes / BLOCK_BYTES;
        let t = generate(&cfg, 5);
        for e in t.events() {
            if let PrefetchEvent::Access { block, .. } = e {
                assert!(*block < cfg.regions * bpr);
            }
        }
    }

    #[test]
    fn round_trips_through_the_text_format() {
        let t = generate(&GeneratorConfig::huge_regions(), 9);
        let parsed = PrefetchTrace::parse_text(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
    }
}
