//! Best-Offset Prefetcher (BOP) — Michaud, HPCA 2016; winner of the Second
//! Data Prefetching Championship.
//!
//! BOP learns a single best prefetch *offset* `D` and, on every access to
//! block `X`, prefetches `X + D`. Learning proceeds in rounds: each access
//! tests one candidate offset `d` from a fixed list — if `X - d` is found
//! in the *recent requests* (RR) table, `d` earns a point, because a
//! prefetch with offset `d` issued at `X - d` would have been timely for
//! the current access. When an offset's score reaches `SCORE_MAX`, or the
//! round limit expires, the highest-scoring offset becomes the new `D`; a
//! best score below `BAD_SCORE` turns prefetching off until a later round
//! rehabilitates an offset.

use bingo_sim::{AccessInfo, BlockAddr, Prefetcher};

/// Candidate offsets: integers up to 64 with prime factors in {2, 3, 5},
/// as in the original design.
pub const DEFAULT_OFFSETS: &[i64] = &[
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54, 60,
    64,
];

/// Configuration of a [`Bop`] prefetcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BopConfig {
    /// Recent-requests table entries (256 in the paper's comparison).
    pub rr_entries: usize,
    /// Score at which a learning round ends immediately.
    pub score_max: u32,
    /// Number of full passes over the offset list per round.
    pub max_rounds: u32,
    /// Minimum winning score for prefetching to stay enabled.
    pub bad_score: u32,
    /// Prefetch degree: how many multiples of the best offset to issue
    /// (1 in the original; 32 in the Fig. 10 iso-degree variant).
    pub degree: usize,
    /// Candidate offsets.
    pub offsets: Vec<i64>,
}

impl BopConfig {
    /// The paper's configuration: 256-entry RR table, degree 1.
    pub fn paper() -> Self {
        BopConfig {
            rr_entries: 256,
            score_max: 31,
            max_rounds: 100,
            bad_score: 1,
            degree: 1,
            offsets: DEFAULT_OFFSETS.to_vec(),
        }
    }

    /// The iso-degree (Fig. 10) variant: degree 32.
    pub fn aggressive() -> Self {
        BopConfig {
            degree: 32,
            ..Self::paper()
        }
    }

    /// Metadata storage in bits of a [`Bop`] built from this
    /// configuration: 12-bit partial tags in the RR table, a 5-bit score
    /// per candidate offset, and 16 bits of round/selection state.
    pub fn storage_bits(&self) -> u64 {
        let rr = self.rr_entries as u64 * 12;
        let scores = self.offsets.len() as u64 * 5;
        rr + scores + 16
    }
}

impl Default for BopConfig {
    fn default() -> Self {
        BopConfig::paper()
    }
}

/// The BOP prefetcher.
#[derive(Debug)]
pub struct Bop {
    cfg: BopConfig,
    rr: Vec<u64>,
    scores: Vec<u32>,
    test_index: usize,
    rounds: u32,
    best_offset: i64,
    enabled: bool,
}

impl Bop {
    /// Creates a BOP prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the offset list or the RR table is empty, or degree is 0.
    pub fn new(cfg: BopConfig) -> Self {
        assert!(!cfg.offsets.is_empty(), "offset list must be nonempty");
        assert!(cfg.rr_entries > 0 && cfg.degree > 0);
        Bop {
            rr: vec![u64::MAX; cfg.rr_entries],
            scores: vec![0; cfg.offsets.len()],
            test_index: 0,
            rounds: 0,
            best_offset: 1,
            enabled: true,
            cfg,
        }
    }

    /// The currently selected best offset.
    pub fn best_offset(&self) -> i64 {
        self.best_offset
    }

    /// Whether prefetching is currently enabled (best score was adequate).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn rr_insert(&mut self, block: u64) {
        let idx = (block as usize) % self.rr.len();
        self.rr[idx] = block;
    }

    fn rr_contains(&self, block: u64) -> bool {
        self.rr[(block as usize) % self.rr.len()] == block
    }

    fn end_round(&mut self) {
        // Ties favor the earliest (smallest) offset in the candidate list,
        // which also tends to be the most timely one.
        let mut best_idx = 0;
        for (i, &s) in self.scores.iter().enumerate() {
            if s > self.scores[best_idx] {
                best_idx = i;
            }
        }
        let best_score = self.scores[best_idx];
        self.best_offset = self.cfg.offsets[best_idx];
        self.enabled = best_score >= self.cfg.bad_score;
        self.scores.iter_mut().for_each(|s| *s = 0);
        self.rounds = 0;
        self.test_index = 0;
    }
}

impl Prefetcher for Bop {
    fn name(&self) -> &str {
        "BOP"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        let x = info.block.index();

        // Learning: test one candidate offset against the RR table.
        let d = self.cfg.offsets[self.test_index];
        let mut round_ended = false;
        if d < 0 || x >= d as u64 {
            let base = x.wrapping_sub(d as u64);
            if self.rr_contains(base) {
                self.scores[self.test_index] += 1;
                if self.scores[self.test_index] >= self.cfg.score_max {
                    self.end_round();
                    round_ended = true;
                }
            }
        }
        if !round_ended {
            if self.test_index + 1 < self.cfg.offsets.len() {
                self.test_index += 1;
            } else {
                self.test_index = 0;
                self.rounds += 1;
                if self.rounds >= self.cfg.max_rounds {
                    self.end_round();
                }
            }
        }

        self.rr_insert(x);

        if self.enabled {
            for k in 1..=self.cfg.degree as i64 {
                out.push(info.block.offset(self.best_offset * k));
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{CoreId, Pc, RegionGeometry};

    fn info(block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(0x400),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    fn access(b: &mut Bop, block: u64) -> Vec<u64> {
        let mut out = Vec::new();
        b.on_access(&info(block), &mut out);
        out.iter().map(|x| x.index()).collect()
    }

    #[test]
    fn learns_offset_of_a_strided_stream() {
        let mut b = Bop::new(BopConfig::paper());
        for i in 0..4000u64 {
            access(&mut b, 1000 + i * 3);
        }
        assert_eq!(b.best_offset(), 3, "stride-3 stream should select offset 3");
        assert!(b.is_enabled());
    }

    #[test]
    fn unit_stride_selects_offset_one() {
        let mut b = Bop::new(BopConfig::paper());
        for i in 0..4000u64 {
            access(&mut b, i);
        }
        assert_eq!(b.best_offset(), 1);
        let p = access(&mut b, 5000);
        assert_eq!(p, vec![5001]);
    }

    #[test]
    fn degree_one_issues_single_prefetch() {
        let mut b = Bop::new(BopConfig::paper());
        let p = access(&mut b, 100);
        assert_eq!(p.len(), 1, "default degree is 1");
    }

    #[test]
    fn aggressive_issues_degree_32() {
        let mut b = Bop::new(BopConfig::aggressive());
        for i in 0..4000u64 {
            access(&mut b, i);
        }
        let p = access(&mut b, 10_000);
        assert_eq!(p.len(), 32);
        assert_eq!(p[0], 10_001);
        assert_eq!(p[31], 10_032);
    }

    #[test]
    fn random_stream_disables_prefetching() {
        let mut b = Bop::new(BopConfig::paper());
        // A pseudo-random widely-spread stream: no offset scores.
        let mut x = 0x12345u64;
        for _ in 0..(DEFAULT_OFFSETS.len() as u64 * 120) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            access(&mut b, x >> 20);
        }
        assert!(
            !b.is_enabled(),
            "random traffic should score below BAD_SCORE and disable"
        );
        let p = access(&mut b, 42);
        assert!(p.is_empty());
    }

    #[test]
    fn reenables_after_pattern_returns() {
        let mut b = Bop::new(BopConfig::paper());
        let mut x = 0x9999u64;
        for _ in 0..(DEFAULT_OFFSETS.len() as u64 * 120) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            access(&mut b, x >> 20);
        }
        assert!(!b.is_enabled());
        for i in 0..5000u64 {
            access(&mut b, 77_000 + i);
        }
        assert!(b.is_enabled(), "sequential stream should rehabilitate BOP");
        assert_eq!(b.best_offset(), 1);
    }

    #[test]
    fn score_max_ends_round_early() {
        let cfg = BopConfig {
            score_max: 3,
            ..BopConfig::paper()
        };
        let n_offsets = cfg.offsets.len() as u64;
        let mut b = Bop::new(cfg);
        // Dense sequential accesses: offset 1 hits on most tests.
        for i in 0..(n_offsets * 10) {
            access(&mut b, i);
        }
        assert_eq!(b.best_offset(), 1);
    }

    #[test]
    fn storage_is_under_one_kb() {
        let b = Bop::new(BopConfig::paper());
        assert!(b.storage_bits() / 8 < 1024, "BOP is tiny");
    }
}
