//! O(1) replacement index shared by the table-based baselines.
//!
//! AMPM, SPP, and VLDP all key a fixed-capacity table by a tag (zone or
//! page id), touch the matching entry on every access, and on a miss fill
//! the first never-used slot or evict the least-recently-touched entry.
//! Scanning the table for both steps is O(capacity) per access; AMPM's
//! 2048-zone map made that an ~80 KB sweep per L1 miss, which dominated
//! the simulator profile. This index gives the same answers in O(1):
//!
//! * tag probe — a hash map over live keys replaces
//!   `position(|e| e.valid && e.tag == tag)`. Keys are unique among live
//!   entries (an insert only happens after a failed probe), so the first
//!   match is the only match.
//! * never-used slot — the original tables never clear `valid`, so
//!   `position(|e| !e.valid)` always returns slots in fill order; a live
//!   counter reproduces it.
//! * LRU victim — touch stamps strictly increase, so the
//!   `min_by_key(last_touch)` minimum is unique and equals the tail of a
//!   recency-ordered list maintained with O(1) splices.

use bingo_sim::OpenMap;

/// Result of [`LruIndex::touch`].
pub(crate) enum SlotRef {
    /// The key was already tracked at this slot (now marked MRU).
    Hit(usize),
    /// The key was bound to this slot: a never-used slot in fill order,
    /// or the exact-LRU victim with its previous key evicted. The caller
    /// must reinitialize the payload at this slot.
    Miss(usize),
}

const NIL: u32 = u32::MAX;

/// Key-to-slot map with exact-LRU replacement over a fixed slot range.
#[derive(Debug, Clone)]
pub(crate) struct LruIndex {
    index: OpenMap<usize>,
    keys: Vec<u64>,
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    live: usize,
}

impl LruIndex {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0 && capacity < NIL as usize);
        LruIndex {
            index: OpenMap::with_capacity(capacity),
            keys: vec![0; capacity],
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            live: 0,
        }
    }

    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    fn push_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Looks up `key`, marking its slot most-recently-used; on a miss,
    /// claims a slot and rebinds it to `key`.
    pub fn touch(&mut self, key: u64) -> SlotRef {
        if let Some(&slot) = self.index.get(key) {
            if self.head != slot as u32 {
                self.unlink(slot as u32);
                self.push_front(slot as u32);
            }
            return SlotRef::Hit(slot);
        }
        let slot = if self.live < self.keys.len() {
            self.live += 1;
            self.live - 1
        } else {
            let victim = self.tail;
            self.unlink(victim);
            self.index.remove(self.keys[victim as usize]);
            victim as usize
        };
        self.keys[slot] = key;
        self.index.insert(key, slot);
        self.push_front(slot as u32);
        SlotRef::Miss(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scan-based replacement the baselines used before: linear tag
    /// probe, fill order via `position(!valid)`, victim via
    /// `min_by_key(last_touch)`.
    struct Reference {
        entries: Vec<(u64, bool, u64)>, // (key, valid, last_touch)
        stamp: u64,
    }

    impl Reference {
        fn new(capacity: usize) -> Self {
            Reference {
                entries: vec![(0, false, 0); capacity],
                stamp: 0,
            }
        }

        fn touch(&mut self, key: u64) -> (usize, bool) {
            self.stamp += 1;
            let stamp = self.stamp;
            if let Some(i) = self.entries.iter().position(|e| e.1 && e.0 == key) {
                self.entries[i].2 = stamp;
                return (i, true);
            }
            let victim = self.entries.iter().position(|e| !e.1).unwrap_or_else(|| {
                self.entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.2)
                    .map(|(i, _)| i)
                    .expect("nonempty")
            });
            self.entries[victim] = (key, true, stamp);
            (victim, false)
        }
    }

    fn check_stream(capacity: usize, keys: &[u64]) {
        let mut fast = LruIndex::new(capacity);
        let mut slow = Reference::new(capacity);
        for (n, &k) in keys.iter().enumerate() {
            let (want_slot, want_hit) = slow.touch(k);
            let (got_slot, got_hit) = match fast.touch(k) {
                SlotRef::Hit(s) => (s, true),
                SlotRef::Miss(s) => (s, false),
            };
            assert_eq!(
                (got_slot, got_hit),
                (want_slot, want_hit),
                "divergence at access {n} (key {k}, capacity {capacity})"
            );
        }
    }

    #[test]
    fn fills_in_slot_order() {
        check_stream(4, &[10, 11, 12, 13]);
    }

    #[test]
    fn hit_refreshes_recency() {
        // 10 is refreshed, so 11 must be the victim for 14.
        check_stream(4, &[10, 11, 12, 13, 10, 14, 11]);
    }

    #[test]
    fn capacity_one_thrashes() {
        check_stream(1, &[1, 2, 1, 1, 3, 2]);
    }

    #[test]
    fn matches_reference_on_random_streams() {
        // Deterministic xorshift so the stream is reproducible.
        let mut state = 0x9e37_79b9u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &capacity in &[1usize, 2, 3, 7, 16, 64] {
            // Key range ~2x capacity forces constant eviction; a narrow
            // range exercises the hit/refresh path.
            for &span in &[2 * capacity as u64 + 1, capacity as u64 + 1] {
                let keys: Vec<u64> = (0..4096).map(|_| rng() % span).collect();
                check_stream(capacity, &keys);
            }
        }
    }
}
