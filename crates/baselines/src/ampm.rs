//! Access Map Pattern Matching (AMPM) — Ishii, Inaba, Hiraki, ICS 2009;
//! winner of the First Data Prefetching Championship.
//!
//! AMPM keeps a *memory access map*: per-zone bitmaps of recently accessed
//! cache blocks. On an access to block `t` it tests candidate strides `d`:
//! if `t-d` and `t-2d` were both accessed, the stream is assumed to
//! continue and `t+d` is prefetched (and symmetrically for backward
//! streams). Per the paper's methodology the map is sized to cover the
//! whole LLC capacity.

use std::fmt;

use bingo_sim::{AccessInfo, BlockAddr, Prefetcher};

use crate::lru::{LruIndex, SlotRef};

/// Configuration of an [`Ampm`] prefetcher.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AmpmConfig {
    /// Zone size in blocks (64 blocks = 4 KB zones).
    pub zone_blocks: u32,
    /// Number of zones tracked; the paper sizes the map to cover the LLC
    /// (8 MB / 4 KB = 2048 zones).
    pub zones: usize,
    /// Maximum stride magnitude tested.
    pub max_stride: u32,
    /// Maximum prefetches issued per access.
    pub degree: usize,
}

impl AmpmConfig {
    /// The paper's configuration: 4 KB zones covering the 8 MB LLC, with
    /// the original's adaptive degree approximated at 8.
    pub fn paper() -> Self {
        AmpmConfig {
            zone_blocks: 64,
            zones: 2048,
            max_stride: 16,
            degree: 8,
        }
    }

    /// Metadata storage in bits of an [`Ampm`] built from this
    /// configuration: per zone a ~36-bit tag, the access and prefetch
    /// bitmaps, and an 8-bit LRU stamp.
    pub fn storage_bits(&self) -> u64 {
        self.zones as u64 * (36 + 2 * self.zone_blocks as u64 + 8)
    }
}

impl Default for AmpmConfig {
    fn default() -> Self {
        AmpmConfig::paper()
    }
}

#[derive(Copy, Clone, Default)]
struct Zone {
    accessed: u64,
    prefetched: u64,
}

impl fmt::Debug for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Zone")
            .field("accessed", &format_args!("{:#x}", self.accessed))
            .finish()
    }
}

/// The AMPM prefetcher.
#[derive(Debug)]
pub struct Ampm {
    cfg: AmpmConfig,
    zones: Vec<Zone>,
    lru: LruIndex,
    zone_shift: u32,
    /// Feedback-directed degree throttling (the original's adaptive
    /// aggressiveness): accesses that land on previously-prefetched map
    /// bits are "good"; a low good/issued ratio shrinks the degree.
    fb_issued: u64,
    fb_good: u64,
    current_degree: usize,
}

impl Ampm {
    /// Creates an AMPM prefetcher.
    ///
    /// # Panics
    ///
    /// Panics unless `zone_blocks` is a power of two in `2..=64` and all
    /// other parameters are nonzero.
    pub fn new(cfg: AmpmConfig) -> Self {
        assert!(
            cfg.zone_blocks.is_power_of_two() && (2..=64).contains(&cfg.zone_blocks),
            "zone must be a power of two of 2..=64 blocks"
        );
        assert!(cfg.zones > 0 && cfg.degree > 0 && cfg.max_stride > 0);
        Ampm {
            zones: vec![Zone::default(); cfg.zones],
            lru: LruIndex::new(cfg.zones),
            zone_shift: cfg.zone_blocks.trailing_zeros(),
            fb_issued: 0,
            fb_good: 0,
            current_degree: cfg.degree,
            cfg,
        }
    }

    fn update_feedback(&mut self) {
        if self.fb_issued < 1024 {
            return;
        }
        let ratio = self.fb_good as f64 / self.fb_issued as f64;
        self.current_degree = if ratio > 0.5 {
            self.cfg.degree
        } else if ratio > 0.25 {
            (self.cfg.degree / 2).max(1)
        } else {
            1
        };
        self.fb_issued /= 2;
        self.fb_good /= 2;
    }

    fn zone_slot(&mut self, zone_id: u64) -> usize {
        match self.lru.touch(zone_id) {
            SlotRef::Hit(i) => i,
            SlotRef::Miss(i) => {
                self.zones[i] = Zone::default();
                i
            }
        }
    }
}

impl Prefetcher for Ampm {
    fn name(&self) -> &str {
        "AMPM"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        let zone_id = info.block.index() >> self.zone_shift;
        let t = (info.block.index() & (self.cfg.zone_blocks as u64 - 1)) as i64;
        let slot = self.zone_slot(zone_id);
        let was_prefetched = self.zones[slot].prefetched >> t & 1 == 1;
        if was_prefetched {
            self.fb_good += 1;
        }
        self.zones[slot].accessed |= 1u64 << t;
        self.update_feedback();
        let degree = self.current_degree;

        let accessed = self.zones[slot].accessed;
        let nblocks = self.cfg.zone_blocks as i64;
        let zone_base = zone_id << self.zone_shift;
        let mut issued = 0usize;
        let test = |bits: u64, idx: i64| idx >= 0 && idx < nblocks && (bits >> idx) & 1 == 1;

        // Commit to the *smallest* supported stride (dense maps would
        // otherwise "detect" every multiple of it) and look ahead along
        // that one stride, bounded by the (feedback-throttled) degree.
        if let Some(d) = (1..=self.cfg.max_stride as i64)
            .find(|&d| test(accessed, t - d) && test(accessed, t - 2 * d))
        {
            for k in 1..=degree as i64 {
                if issued >= degree {
                    break;
                }
                let target = t + k * d;
                if target >= nblocks {
                    break;
                }
                let covered = self.zones[slot].accessed | self.zones[slot].prefetched;
                if !test(covered, target) {
                    out.push(BlockAddr::new(zone_base + target as u64));
                    self.zones[slot].prefetched |= 1u64 << target;
                    self.fb_issued += 1;
                    issued += 1;
                }
            }
        }
        if issued < degree {
            // Backward pattern: t, t+d, t+2d  =>  t-d (reverse scans).
            if let Some(d) = (1..=self.cfg.max_stride as i64)
                .find(|&d| test(accessed, t + d) && test(accessed, t + 2 * d))
            {
                let covered = self.zones[slot].accessed | self.zones[slot].prefetched;
                if t - d >= 0 && !test(covered, t - d) {
                    out.push(BlockAddr::new(zone_base + (t - d) as u64));
                    self.zones[slot].prefetched |= 1u64 << (t - d);
                    self.fb_issued += 1;
                }
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{CoreId, Pc, RegionGeometry};

    fn info(block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(0x400),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    fn small() -> Ampm {
        Ampm::new(AmpmConfig {
            zones: 16,
            ..AmpmConfig::paper()
        })
    }

    fn access(a: &mut Ampm, block: u64) -> Vec<u64> {
        let mut out = Vec::new();
        a.on_access(&info(block), &mut out);
        out.iter().map(|b| b.index()).collect()
    }

    #[test]
    fn unit_stride_detected_on_third_access() {
        let mut a = small();
        assert!(access(&mut a, 100).is_empty());
        assert!(access(&mut a, 101).is_empty());
        let p = access(&mut a, 102);
        assert!(
            p.contains(&103),
            "stride-1 stream should prefetch 103, got {p:?}"
        );
    }

    #[test]
    fn larger_stride_detected() {
        let mut a = small();
        access(&mut a, 256);
        access(&mut a, 260);
        let p = access(&mut a, 264);
        assert!(
            p.contains(&268),
            "stride-4 stream should prefetch 268, got {p:?}"
        );
    }

    #[test]
    fn backward_stream_detected() {
        let mut a = small();
        access(&mut a, 40);
        access(&mut a, 39);
        let p = access(&mut a, 38);
        assert!(
            p.contains(&37),
            "backward stream should prefetch 37, got {p:?}"
        );
    }

    #[test]
    fn no_duplicate_prefetch_for_marked_blocks() {
        let mut a = small();
        access(&mut a, 100);
        access(&mut a, 101);
        let p1 = access(&mut a, 102);
        assert!(p1.contains(&103));
        // Re-access 102: 103 already marked prefetched.
        let p2 = access(&mut a, 102);
        assert!(!p2.contains(&103), "got {p2:?}");
    }

    #[test]
    fn degree_limits_prefetches_per_access() {
        let mut a = Ampm::new(AmpmConfig {
            zones: 16,
            degree: 1,
            ..AmpmConfig::paper()
        });
        // Build a dense region where many strides would fire.
        for b in 0..8 {
            access(&mut a, b);
        }
        let p = access(&mut a, 8);
        assert!(p.len() <= 1, "degree 1 must cap issues, got {p:?}");
    }

    #[test]
    fn random_accesses_do_not_trigger() {
        let mut a = small();
        let blocks = [5u64, 17, 40, 9, 33, 58];
        let mut total = 0;
        for &b in &blocks {
            total += access(&mut a, b).len();
        }
        assert_eq!(total, 0, "no stride pattern present");
    }

    #[test]
    fn map_survives_cache_evictions() {
        // The access map records *accesses*, independent of residency; an
        // eviction must not erase learned patterns.
        let mut a = small();
        access(&mut a, 100);
        access(&mut a, 101);
        a.on_eviction(BlockAddr::new(100));
        let p = access(&mut a, 102);
        assert!(p.contains(&103), "got {p:?}");
    }

    #[test]
    fn zone_capacity_is_lru() {
        let mut a = Ampm::new(AmpmConfig {
            zones: 2,
            ..AmpmConfig::paper()
        });
        access(&mut a, 0); // zone 0
        access(&mut a, 64); // zone 1
        access(&mut a, 1); // refresh zone 0
        access(&mut a, 128); // zone 2 evicts zone 1
        let p = access(&mut a, 2); // zone 0 pattern fires despite churn
        assert!(p.contains(&3), "zone 0 survived, got {p:?}");
    }

    #[test]
    fn storage_covers_llc_with_paper_config() {
        let a = Ampm::new(AmpmConfig::paper());
        let covered_bytes = 2048u64 * 4096;
        assert_eq!(covered_bytes, 8 * 1024 * 1024, "map covers the 8 MB LLC");
        let kb = a.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(kb > 20.0 && kb < 60.0, "AMPM storage {kb:.1} KB");
    }
}
