//! Spatial Memory Streaming (SMS) — Somogyi et al., ISCA 2006.
//!
//! SMS is the strongest prior per-page-history prefetcher in the paper's
//! comparison and the direct base of Bingo: it records region footprints in
//! an accumulation structure and associates each footprint with the
//! **single** `PC+Offset` event of the trigger access. Bingo's central
//! criticism (Section II/III) is precisely this single-event association:
//! `PC+Offset` generalizes across regions (covering compulsory misses) but
//! cannot exploit the higher accuracy of an exact `PC+Address` recurrence.
//!
//! The implementation reuses the accumulation table and the generic
//! event-keyed history table from the `bingo` crate, configured with the
//! paper's SMS parameters: a 16 K-entry, 16-way pattern history table.

use bingo::multi_event::{MultiEventConfig, MultiEventPrefetcher};
use bingo::EventKind;
use bingo_sim::{AccessInfo, BlockAddr, Prefetcher, RegionGeometry};

/// Configuration of an [`Sms`] prefetcher.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SmsConfig {
    /// Spatial region geometry (2 KB, as for Bingo).
    pub region: RegionGeometry,
    /// Pattern-history-table entries (16 K in the paper's comparison).
    pub pattern_entries: usize,
    /// Pattern-history-table associativity (16-way in the paper).
    pub ways: usize,
    /// Accumulation-table capacity.
    pub accumulation_entries: usize,
}

impl SmsConfig {
    /// The paper's SMS configuration (Section V-B).
    pub fn paper() -> Self {
        SmsConfig {
            region: RegionGeometry::default(),
            pattern_entries: 16 * 1024,
            ways: 16,
            accumulation_entries: 64,
        }
    }

    /// The equivalent single-event configuration [`Sms::new`] builds from.
    fn inner(&self) -> MultiEventConfig {
        MultiEventConfig {
            events: vec![EventKind::PcOffset],
            entries_per_table: self.pattern_entries,
            ways: self.ways,
            region: self.region,
            accumulation_entries: self.accumulation_entries,
            min_footprint_blocks: 2,
        }
    }

    /// Metadata storage in bits of an [`Sms`] built from this
    /// configuration, computed without allocating any tables.
    pub fn storage_bits(&self) -> u64 {
        self.inner().storage_bits()
    }
}

impl Default for SmsConfig {
    fn default() -> Self {
        SmsConfig::paper()
    }
}

/// The SMS prefetcher.
#[derive(Debug)]
pub struct Sms {
    inner: MultiEventPrefetcher,
}

impl Sms {
    /// Creates an SMS prefetcher.
    ///
    /// # Panics
    ///
    /// Panics on invalid table geometry.
    pub fn new(cfg: SmsConfig) -> Self {
        Sms {
            inner: MultiEventPrefetcher::new(cfg.inner()),
        }
    }

    /// Fraction of trigger lookups that found a pattern.
    pub fn match_probability(&self) -> f64 {
        self.inner.stats.match_probability()
    }
}

impl Default for Sms {
    fn default() -> Self {
        Sms::new(SmsConfig::paper())
    }
}

impl Prefetcher for Sms {
    fn name(&self) -> &str {
        "SMS"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        self.inner.on_access(info, out);
    }

    fn on_eviction(&mut self, block: BlockAddr) {
        self.inner.on_eviction(block);
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }

    fn metrics(&self) -> Vec<(&'static str, f64)> {
        self.inner.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{CoreId, Pc};

    fn info(pc: u64, block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(pc),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    fn visit(s: &mut Sms, pc: u64, region: u64, offsets: &[u32]) -> Vec<BlockAddr> {
        let mut out = Vec::new();
        let mut first = Vec::new();
        for (i, &off) in offsets.iter().enumerate() {
            out.clear();
            s.on_access(&info(pc, region * 32 + off as u64), &mut out);
            if i == 0 {
                first = out.clone();
            }
        }
        s.on_eviction(BlockAddr::new(region * 32 + offsets[0] as u64));
        first
    }

    #[test]
    fn generalizes_across_regions_via_pc_offset() {
        let mut s = Sms::default();
        visit(&mut s, 0x400, 1, &[2, 6, 9]);
        let p = visit(&mut s, 0x400, 77, &[2]);
        let mut blocks: Vec<u64> = p.iter().map(|b| b.index()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![77 * 32 + 6, 77 * 32 + 9]);
    }

    #[test]
    fn cannot_distinguish_same_pc_offset_with_different_addresses() {
        // Two regions with the same trigger PC+Offset but different
        // footprints: SMS keeps only the latest pattern, so a revisit of
        // the first region replays the *wrong* footprint — exactly the
        // inaccuracy Bingo's long event fixes.
        let mut s = Sms::default();
        visit(&mut s, 0x400, 1, &[2, 6]);
        visit(&mut s, 0x400, 2, &[2, 11]);
        let p = visit(&mut s, 0x400, 1, &[2]);
        let blocks: Vec<u64> = p.iter().map(|b| b.index()).collect();
        assert_eq!(blocks, vec![32 + 11], "SMS replays the latest pattern");
    }

    #[test]
    fn different_pc_does_not_match() {
        let mut s = Sms::default();
        visit(&mut s, 0x400, 1, &[2, 6]);
        let p = visit(&mut s, 0x500, 50, &[2]);
        assert!(p.is_empty());
    }

    #[test]
    fn storage_is_about_100_kb() {
        let s = Sms::default();
        let kb = s.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(kb > 80.0 && kb < 140.0, "SMS storage {kb:.1} KB");
    }
}
