//! Variable Length Delta Prefetcher (VLDP) — Shevgoor et al., MICRO 2015.
//!
//! VLDP is a shared-history (SHH) prefetcher that predicts the next *delta*
//! (distance between consecutive accesses within a page) using multiple
//! delta-history tables of increasing history length — itself a TAGE-like
//! cascade, but over deltas rather than footprints:
//!
//! * **DHB** (delta history buffer): per-page last offset and the last up
//!   to three deltas (16 entries, LRU);
//! * **OPT** (offset prediction table): first-access offset → first delta,
//!   with an accuracy counter (64 entries, direct-mapped);
//! * **DPT-1/2/3** (delta prediction tables): delta history of length
//!   1/2/3 → next delta (64 entries each), looked up longest history first.
//!
//! Multi-degree prefetching feeds each predicted delta back into the
//! history to predict deeper; the original design caps the degree at 4,
//! and the paper's iso-degree study (Fig. 10) lifts it to 32.

use bingo_sim::{AccessInfo, BlockAddr, Prefetcher};

use crate::lru::{LruIndex, SlotRef};

/// Configuration of a [`Vldp`] prefetcher.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct VldpConfig {
    /// Page size in blocks over which deltas are tracked (4 KB pages).
    pub page_blocks: u32,
    /// Delta-history-buffer entries.
    pub dhb_entries: usize,
    /// Offset-prediction-table entries.
    pub opt_entries: usize,
    /// Entries per delta prediction table.
    pub dpt_entries: usize,
    /// Maximum lookahead degree (4 in the original, 32 when aggressive).
    pub degree: usize,
}

impl VldpConfig {
    /// The paper's configuration: 16-entry DHB, 64-entry OPT, three
    /// 64-entry DPTs, degree 4.
    pub fn paper() -> Self {
        VldpConfig {
            page_blocks: 64,
            dhb_entries: 16,
            opt_entries: 64,
            dpt_entries: 64,
            degree: 4,
        }
    }

    /// The iso-degree (Fig. 10) aggressive variant: degree 32.
    pub fn aggressive() -> Self {
        VldpConfig {
            degree: 32,
            ..Self::paper()
        }
    }

    /// Metadata storage in bits of a [`Vldp`] built from this
    /// configuration: DHB (page tag, last offset, three 8-bit deltas,
    /// length, LRU), OPT (delta, confidence, valid), and the three DPTs
    /// (16-bit tag, delta, confidence, valid).
    pub fn storage_bits(&self) -> u64 {
        let dhb = self.dhb_entries as u64 * (36 + 7 + 3 * 8 + 2 + 8);
        let opt = self.opt_entries as u64 * (8 + 2 + 1);
        let dpt = 3 * self.dpt_entries as u64 * (16 + 8 + 2 + 1);
        dhb + opt + dpt
    }
}

impl Default for VldpConfig {
    fn default() -> Self {
        VldpConfig::paper()
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct DhbEntry {
    valid: bool,
    last_offset: i32,
    /// Most recent delta first; 0 slots unused.
    deltas: [i32; 3],
    num_deltas: usize,
}

#[derive(Copy, Clone, Debug, Default)]
struct OptEntry {
    delta: i32,
    confidence: i8,
    valid: bool,
}

#[derive(Copy, Clone, Debug, Default)]
struct DptEntry {
    tag: u64,
    delta: i32,
    confidence: i8,
    valid: bool,
}

/// The VLDP prefetcher.
#[derive(Debug)]
pub struct Vldp {
    cfg: VldpConfig,
    dhb: Vec<DhbEntry>,
    lru: LruIndex,
    opt: Vec<OptEntry>,
    dpts: [Vec<DptEntry>; 3],
    page_shift: u32,
}

impl Vldp {
    /// Creates a VLDP prefetcher.
    ///
    /// # Panics
    ///
    /// Panics unless `page_blocks` is a power of two in `2..=64` and the
    /// table sizes are nonzero.
    pub fn new(cfg: VldpConfig) -> Self {
        assert!(
            cfg.page_blocks.is_power_of_two() && (2..=64).contains(&cfg.page_blocks),
            "page must be a power of two of 2..=64 blocks"
        );
        assert!(cfg.dhb_entries > 0 && cfg.opt_entries > 0 && cfg.dpt_entries > 0);
        assert!(cfg.degree > 0);
        Vldp {
            dhb: vec![DhbEntry::default(); cfg.dhb_entries],
            lru: LruIndex::new(cfg.dhb_entries),
            opt: vec![OptEntry::default(); cfg.opt_entries],
            dpts: [
                vec![DptEntry::default(); cfg.dpt_entries],
                vec![DptEntry::default(); cfg.dpt_entries],
                vec![DptEntry::default(); cfg.dpt_entries],
            ],
            page_shift: cfg.page_blocks.trailing_zeros(),
            cfg,
        }
    }

    fn history_key(history: &[i32]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &d in history {
            h ^= d as u32 as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn dpt_train(&mut self, len: usize, history: &[i32], next: i32) {
        debug_assert_eq!(history.len(), len);
        let key = Self::history_key(history);
        let idx = (key % self.dpts[len - 1].len() as u64) as usize;
        let e = &mut self.dpts[len - 1][idx];
        if e.valid && e.tag == key {
            if e.delta == next {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.confidence -= 1;
                if e.confidence < 0 {
                    e.delta = next;
                    e.confidence = 0;
                }
            }
        } else {
            *e = DptEntry {
                tag: key,
                delta: next,
                confidence: 0,
                valid: true,
            };
        }
    }

    fn dpt_predict(&self, history: &[i32]) -> Option<i32> {
        // Longest usable history first.
        for len in (1..=history.len().min(3)).rev() {
            let slice = &history[..len];
            let key = Self::history_key(slice);
            let idx = (key % self.dpts[len - 1].len() as u64) as usize;
            let e = &self.dpts[len - 1][idx];
            if e.valid && e.tag == key {
                return Some(e.delta);
            }
        }
        None
    }

    fn dhb_slot(&mut self, page: u64) -> usize {
        match self.lru.touch(page) {
            SlotRef::Hit(i) => i,
            // `valid: false` marks a fresh page; the caller flips it
            // after initializing the entry.
            SlotRef::Miss(i) => {
                self.dhb[i] = DhbEntry::default();
                i
            }
        }
    }
}

impl Prefetcher for Vldp {
    fn name(&self) -> &str {
        "VLDP"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        let page = info.block.index() >> self.page_shift;
        let offset = (info.block.index() & (self.cfg.page_blocks as u64 - 1)) as i32;
        let page_base = page << self.page_shift;
        let nblocks = self.cfg.page_blocks as i32;

        let slot = self.dhb_slot(page);
        if !self.dhb[slot].valid {
            // First access to the page: initialize and consult the OPT.
            self.dhb[slot].valid = true;
            self.dhb[slot].last_offset = offset;
            let opt_idx = offset as usize % self.opt.len();
            let opt = self.opt[opt_idx];
            if opt.valid && opt.confidence >= 0 {
                let target = offset + opt.delta;
                if target >= 0 && target < nblocks && opt.delta != 0 {
                    out.push(BlockAddr::new(page_base + target as u64));
                }
            }
            return;
        }

        let entry = self.dhb[slot];
        let delta = offset - entry.last_offset;
        if delta == 0 {
            return; // same block again: nothing to learn
        }

        // Train the OPT with the page's first delta.
        if entry.num_deltas == 0 {
            let opt_idx = entry.last_offset as usize % self.opt.len();
            let e = &mut self.opt[opt_idx];
            if e.valid {
                if e.delta == delta {
                    e.confidence = (e.confidence + 1).min(3);
                } else {
                    e.confidence -= 1;
                    if e.confidence < 0 {
                        e.delta = delta;
                        e.confidence = 0;
                    }
                }
            } else {
                *e = OptEntry {
                    delta,
                    confidence: 0,
                    valid: true,
                };
            }
        }

        // Train the DPTs: old history (length 1..=num) -> observed delta.
        let old = entry;
        for len in 1..=old.num_deltas.min(3) {
            let history: Vec<i32> = old.deltas[..len].to_vec();
            self.dpt_train(len, &history, delta);
        }

        // Shift the new delta into the history.
        let e = &mut self.dhb[slot];
        e.deltas = [delta, old.deltas[0], old.deltas[1]];
        e.num_deltas = (old.num_deltas + 1).min(3);
        e.last_offset = offset;

        // Multi-degree lookahead: predict, issue, feed back.
        let mut history = self.dhb[slot].deltas;
        let mut num = self.dhb[slot].num_deltas;
        let mut pos = offset;
        for _ in 0..self.cfg.degree {
            let Some(d) = self.dpt_predict(&history[..num.min(3)]) else {
                break;
            };
            let target = pos + d;
            if d == 0 || target < 0 || target >= nblocks {
                break;
            }
            out.push(BlockAddr::new(page_base + target as u64));
            history = [d, history[0], history[1]];
            num = (num + 1).min(3);
            pos = target;
        }
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{CoreId, Pc, RegionGeometry};

    fn info(block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(0x400),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    fn access(v: &mut Vldp, block: u64) -> Vec<u64> {
        let mut out = Vec::new();
        v.on_access(&info(block), &mut out);
        out.iter().map(|b| b.index()).collect()
    }

    /// Streams through a page with a fixed delta to warm the tables.
    fn warm_stream(v: &mut Vldp, page: u64, delta: u64, count: u64) {
        for i in 0..count {
            access(v, page * 64 + i * delta);
        }
    }

    #[test]
    fn learns_constant_stride_within_page() {
        let mut v = Vldp::new(VldpConfig::paper());
        warm_stream(&mut v, 0, 2, 8);
        // New page, same delta pattern forming.
        access(&mut v, 64);
        let p = access(&mut v, 64 + 2);
        assert!(
            p.contains(&(64 + 4)),
            "delta-2 history should predict next, got {p:?}"
        );
    }

    #[test]
    fn multi_degree_chains_predictions() {
        let mut v = Vldp::new(VldpConfig::paper());
        warm_stream(&mut v, 0, 1, 16);
        access(&mut v, 128);
        let p = access(&mut v, 129);
        // Degree 4: should predict 130, 131, 132, 133.
        assert!(p.len() >= 3, "expected deep lookahead, got {p:?}");
        assert!(p.contains(&130) && p.contains(&131));
    }

    #[test]
    fn aggressive_degree_goes_deeper() {
        let mk = |cfg: VldpConfig| {
            let mut v = Vldp::new(cfg);
            warm_stream(&mut v, 0, 1, 32);
            access(&mut v, 128);
            access(&mut v, 129)
        };
        let normal = mk(VldpConfig::paper());
        let aggr = mk(VldpConfig::aggressive());
        assert!(
            aggr.len() > normal.len(),
            "aggressive ({}) must issue more than normal ({})",
            aggr.len(),
            normal.len()
        );
    }

    #[test]
    fn opt_predicts_first_delta_on_new_page() {
        let mut v = Vldp::new(VldpConfig::paper());
        // Several pages whose first access at offset 0 is followed by +3.
        for page in 0..6u64 {
            access(&mut v, page * 64);
            access(&mut v, page * 64 + 3);
        }
        // Brand-new page, first access at offset 0: OPT fires immediately.
        let p = access(&mut v, 100 * 64);
        assert_eq!(p, vec![100 * 64 + 3]);
    }

    #[test]
    fn alternating_deltas_learned_with_longer_history() {
        // Pattern +1, +3, +1, +3 ... distinguishable only with history >= 2.
        let mut v = Vldp::new(VldpConfig::paper());
        let mut pos = 0u64;
        let mut deltas = [1u64, 3].iter().cycle();
        for _ in 0..24 {
            access(&mut v, pos);
            pos += *deltas.next().unwrap();
        }
        // Fresh page, replay prefix 0, +1 -> 1, +3 -> 4: after seeing
        // [3, 1] history the DPT-2 should predict +1 next.
        access(&mut v, 10 * 64);
        access(&mut v, 10 * 64 + 1);
        let p = access(&mut v, 10 * 64 + 4);
        assert!(
            p.contains(&(10 * 64 + 5)),
            "expected +1 after [+3,+1], got {p:?}"
        );
    }

    #[test]
    fn predictions_stay_within_page() {
        let mut v = Vldp::new(VldpConfig::paper());
        warm_stream(&mut v, 0, 1, 16);
        // Near the end of a page: lookahead must not cross the boundary.
        access(&mut v, 3 * 64 + 61);
        let p = access(&mut v, 3 * 64 + 62);
        for b in &p {
            assert!(*b < 4 * 64, "prediction {b} crossed the page");
        }
    }

    #[test]
    fn same_block_repeat_is_ignored() {
        let mut v = Vldp::new(VldpConfig::paper());
        access(&mut v, 10);
        let p = access(&mut v, 10);
        assert!(p.is_empty());
    }

    #[test]
    fn storage_is_small() {
        let v = Vldp::new(VldpConfig::paper());
        let kb = v.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(kb < 4.0, "VLDP is a storage-light SHH design ({kb:.2} KB)");
    }
}
