//! # bingo-baselines — the prefetchers Bingo is compared against
//!
//! From-scratch implementations of every baseline in the paper's evaluation
//! (Section V-B), all implementing [`bingo_sim::Prefetcher`]:
//!
//! | Prefetcher | Class | Paper configuration |
//! |------------|-------|---------------------|
//! | [`Bop`]    | shared-history | 256-entry recent-requests table, degree 1 |
//! | [`Spp`]    | shared-history | 256-entry signature table, 512-entry pattern table, 1024-entry filter |
//! | [`Vldp`]   | shared-history | 16-entry DHB, 64-entry OPT, three 64-entry DPTs, degree ≤ 4 |
//! | [`Ampm`]   | per-page-history | access map covering the 8 MB LLC |
//! | [`Sms`]    | per-page-history | 16 K-entry 16-way `PC+Offset` pattern table |
//! | [`StridePrefetcher`] | shared-history | classic PC-stride reference |
//!
//! The `aggressive()` constructors of [`BopConfig`], [`SppConfig`], and
//! [`VldpConfig`] provide the lifted-degree variants of the iso-degree
//! study (Fig. 10): BOP/VLDP at degree 32, SPP at a 1 % confidence
//! threshold.
//!
//! ## Example
//!
//! ```
//! use bingo_baselines::{Bop, BopConfig, Sms, Vldp, VldpConfig};
//! use bingo_sim::Prefetcher;
//!
//! let prefetchers: Vec<Box<dyn Prefetcher>> = vec![
//!     Box::new(Bop::new(BopConfig::paper())),
//!     Box::new(Vldp::new(VldpConfig::paper())),
//!     Box::new(Sms::default()),
//! ];
//! for p in &prefetchers {
//!     assert!(!p.name().is_empty());
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ampm;
pub mod bop;
mod lru;
pub mod sms;
pub mod spp;
pub mod stride;
pub mod vldp;

pub use ampm::{Ampm, AmpmConfig};
pub use bop::{Bop, BopConfig, DEFAULT_OFFSETS};
pub use sms::{Sms, SmsConfig};
pub use spp::{Spp, SppConfig};
pub use stride::{StrideConfig, StridePrefetcher};
pub use vldp::{Vldp, VldpConfig};
