//! Classic PC-indexed stride prefetcher (reference-point baseline).
//!
//! Baer–Chen style: a reference prediction table keyed by load PC tracks
//! the last address and stride per instruction with a 2-bit confidence
//! counter; confident entries prefetch `degree` strides ahead. Not part of
//! the paper's headline comparison (it is strictly dominated by BOP/VLDP
//! on the evaluated workloads) but included as the canonical SHH
//! representative for tests, examples, and ablations.

use bingo_sim::{AccessInfo, BlockAddr, Prefetcher};

/// Configuration of a [`StridePrefetcher`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StrideConfig {
    /// Reference-prediction-table entries.
    pub entries: usize,
    /// Confidence needed before prefetching (2-bit counter).
    pub min_confidence: u8,
    /// Number of strides ahead to prefetch.
    pub degree: usize,
}

impl StrideConfig {
    /// A typical configuration: 256 entries, confidence 2, degree 2.
    pub fn typical() -> Self {
        StrideConfig {
            entries: 256,
            min_confidence: 2,
            degree: 2,
        }
    }

    /// Metadata storage in bits of a [`StridePrefetcher`] built from this
    /// configuration: per RPT entry a 16-bit PC tag, ~36-bit last block,
    /// 8-bit stride, 2-bit confidence, and a valid bit.
    pub fn storage_bits(&self) -> u64 {
        self.entries as u64 * (16 + 36 + 8 + 2 + 1)
    }
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig::typical()
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct RptEntry {
    pc: u64,
    valid: bool,
    last_block: u64,
    stride: i64,
    confidence: u8,
}

/// The stride prefetcher.
#[derive(Debug)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<RptEntry>,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `degree` is zero.
    pub fn new(cfg: StrideConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.degree > 0);
        StridePrefetcher {
            table: vec![RptEntry::default(); cfg.entries],
            cfg,
        }
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        StridePrefetcher::new(StrideConfig::typical())
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &str {
        "Stride"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        let pc = info.pc.raw();
        let block = info.block.index();
        let idx = (pc as usize / 4) % self.table.len();
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = RptEntry {
                pc,
                valid: true,
                last_block: block,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let observed = block as i64 - e.last_block as i64;
        e.last_block = block;
        if observed == 0 {
            return;
        }
        if observed == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            if e.confidence > 0 {
                e.confidence -= 1;
            } else {
                e.stride = observed;
            }
            return;
        }
        if e.confidence >= self.cfg.min_confidence {
            let stride = e.stride;
            for k in 1..=self.cfg.degree as i64 {
                out.push(info.block.offset(stride * k));
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{CoreId, Pc, RegionGeometry};

    fn info(pc: u64, block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(pc),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    fn access(s: &mut StridePrefetcher, pc: u64, block: u64) -> Vec<u64> {
        let mut out = Vec::new();
        s.on_access(&info(pc, block), &mut out);
        out.iter().map(|x| x.index()).collect()
    }

    #[test]
    fn constant_stride_detected_after_confidence_builds() {
        let mut s = StridePrefetcher::default();
        assert!(access(&mut s, 0x400, 100).is_empty()); // allocate
        assert!(access(&mut s, 0x400, 104).is_empty()); // learn stride 4
        assert!(access(&mut s, 0x400, 108).is_empty()); // conf 1
        let p = access(&mut s, 0x400, 112); // conf 2 -> fire
        assert_eq!(p, vec![116, 120]);
    }

    #[test]
    fn negative_stride_supported() {
        let mut s = StridePrefetcher::default();
        access(&mut s, 0x400, 200);
        access(&mut s, 0x400, 195);
        access(&mut s, 0x400, 190);
        let p = access(&mut s, 0x400, 185);
        assert_eq!(p, vec![180, 175]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut s = StridePrefetcher::default();
        access(&mut s, 0x400, 0);
        access(&mut s, 0x400, 4);
        access(&mut s, 0x400, 8);
        access(&mut s, 0x400, 12);
        // Break the pattern with a new stride (5): confidence must decay
        // before the new stride is adopted and fires again.
        assert!(access(&mut s, 0x400, 100).is_empty()); // delta 88, conf 2->1
        assert!(access(&mut s, 0x400, 105).is_empty()); // delta 5, conf 1->0
        assert!(access(&mut s, 0x400, 110).is_empty()); // delta 5, adopt stride
        assert!(access(&mut s, 0x400, 115).is_empty()); // conf 1
        assert_eq!(access(&mut s, 0x400, 120), vec![125, 130]); // conf 2
    }

    #[test]
    fn different_pcs_tracked_separately() {
        let mut s = StridePrefetcher::default();
        for i in 0..4 {
            access(&mut s, 0x400, i * 2);
            access(&mut s, 0x500, 1000 + i * 7);
        }
        let p1 = access(&mut s, 0x400, 8);
        let p2 = access(&mut s, 0x500, 1028);
        assert_eq!(p1, vec![10, 12]);
        assert_eq!(p2, vec![1035, 1042]);
    }

    #[test]
    fn pc_collision_reallocates() {
        let mut s = StridePrefetcher::new(StrideConfig {
            entries: 1,
            ..StrideConfig::typical()
        });
        access(&mut s, 0x400, 0);
        access(&mut s, 0x400, 4);
        // Conflicting PC evicts the entry.
        access(&mut s, 0x500, 999);
        assert!(access(&mut s, 0x400, 8).is_empty(), "state was evicted");
    }
}
