//! Signature Path Prefetcher (SPP) — Kim et al., MICRO 2016.
//!
//! SPP compresses the delta history of each page into a 12-bit *signature*
//! and learns, per signature, a distribution over next deltas. Prefetching
//! walks the signature path speculatively: starting from the current
//! signature it repeatedly picks the most probable delta, multiplies the
//! running *path confidence* by that delta's probability, and keeps
//! prefetching deeper until the confidence falls below a threshold. This
//! adaptive-degree throttling is SPP's signature trait — and, as the paper
//! argues (Section II), ties its coverage to the quality of the throttling
//! decisions. The iso-degree study (Fig. 10) lowers the threshold to 1 %.

use bingo_sim::{AccessInfo, BlockAddr, Prefetcher};

use crate::lru::{LruIndex, SlotRef};

/// Configuration of an [`Spp`] prefetcher.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SppConfig {
    /// Page size in blocks over which deltas are tracked (4 KB pages).
    pub page_blocks: u32,
    /// Signature-table entries (per-page tracking state).
    pub signature_entries: usize,
    /// Pattern-table entries (signature → delta distribution).
    pub pattern_entries: usize,
    /// Delta slots per pattern-table entry.
    pub deltas_per_entry: usize,
    /// Prefetch-filter entries.
    pub filter_entries: usize,
    /// Path-confidence threshold below which the lookahead stops
    /// (0.25 default; 0.01 in the aggressive iso-degree variant).
    pub confidence_threshold: f64,
    /// Hard cap on lookahead depth.
    pub max_depth: usize,
}

impl SppConfig {
    /// The paper's configuration: 256-entry signature table, 512-entry
    /// pattern table, 1024-entry prefetch filter.
    pub fn paper() -> Self {
        SppConfig {
            page_blocks: 64,
            signature_entries: 256,
            pattern_entries: 512,
            deltas_per_entry: 4,
            filter_entries: 1024,
            confidence_threshold: 0.30,
            max_depth: 5,
        }
    }

    /// The iso-degree (Fig. 10) variant: 1 % confidence threshold.
    pub fn aggressive() -> Self {
        SppConfig {
            confidence_threshold: 0.01,
            max_depth: 32,
            ..Self::paper()
        }
    }

    /// Metadata storage in bits of an [`Spp`] built from this
    /// configuration: signature table (16-bit page tag, 12-bit signature,
    /// 7-bit last offset, 8 LRU bits), pattern table (8-bit signature
    /// counter plus a 7-bit delta and 8-bit counter per slot), and a
    /// 12-bit-tag prefetch filter.
    pub fn storage_bits(&self) -> u64 {
        let st = self.signature_entries as u64 * (16 + SIG_BITS as u64 + 7 + 8);
        let pt = self.pattern_entries as u64 * (8 + self.deltas_per_entry as u64 * (7 + 8));
        let filter = self.filter_entries as u64 * 12;
        st + pt + filter
    }
}

impl Default for SppConfig {
    fn default() -> Self {
        SppConfig::paper()
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct SigEntry {
    valid: bool,
    last_offset: i32,
    signature: u16,
}

#[derive(Copy, Clone, Debug, Default)]
struct DeltaSlot {
    delta: i32,
    counter: u32,
}

#[derive(Clone, Debug, Default)]
struct PatternEntry {
    sig_counter: u32,
    deltas: Vec<DeltaSlot>,
}

const SIG_BITS: u32 = 12;
const SIG_SHIFT: u32 = 3;
const COUNTER_MAX: u32 = 255;

fn update_signature(sig: u16, delta: i32) -> u16 {
    let d = (delta & 0x3f) as u16; // 6-bit two's-complement delta chunk
    ((sig << SIG_SHIFT) ^ d) & ((1 << SIG_BITS) - 1)
}

/// The SPP prefetcher.
#[derive(Debug)]
pub struct Spp {
    cfg: SppConfig,
    signatures: Vec<SigEntry>,
    lru: LruIndex,
    patterns: Vec<PatternEntry>,
    filter: Vec<u64>,
    page_shift: u32,
}

impl Spp {
    /// Creates an SPP prefetcher.
    ///
    /// # Panics
    ///
    /// Panics unless `page_blocks` is a power of two in `2..=64`, table
    /// sizes are nonzero, and the threshold is in `(0, 1]`.
    pub fn new(cfg: SppConfig) -> Self {
        assert!(
            cfg.page_blocks.is_power_of_two() && (2..=64).contains(&cfg.page_blocks),
            "page must be a power of two of 2..=64 blocks"
        );
        assert!(cfg.signature_entries > 0 && cfg.pattern_entries > 0 && cfg.filter_entries > 0);
        assert!(
            cfg.confidence_threshold > 0.0 && cfg.confidence_threshold <= 1.0,
            "confidence threshold must be in (0, 1]"
        );
        Spp {
            signatures: vec![SigEntry::default(); cfg.signature_entries],
            lru: LruIndex::new(cfg.signature_entries),
            patterns: vec![PatternEntry::default(); cfg.pattern_entries],
            filter: vec![u64::MAX; cfg.filter_entries],
            page_shift: cfg.page_blocks.trailing_zeros(),
            cfg,
        }
    }

    fn sig_slot(&mut self, page: u64) -> usize {
        match self.lru.touch(page) {
            SlotRef::Hit(i) => i,
            SlotRef::Miss(i) => {
                // `valid: false` marks a fresh page; `on_access` flips it
                // after recording the first offset.
                self.signatures[i] = SigEntry::default();
                i
            }
        }
    }

    fn pattern_train(&mut self, sig: u16, delta: i32) {
        let idx = sig as usize % self.patterns.len();
        let max_slots = self.cfg.deltas_per_entry;
        let e = &mut self.patterns[idx];
        if e.sig_counter >= COUNTER_MAX {
            // Periodic halving keeps ratios adaptive.
            e.sig_counter /= 2;
            for d in &mut e.deltas {
                d.counter /= 2;
            }
        }
        e.sig_counter += 1;
        if let Some(slot) = e.deltas.iter_mut().find(|d| d.delta == delta) {
            slot.counter += 1;
            return;
        }
        if e.deltas.len() < max_slots {
            e.deltas.push(DeltaSlot { delta, counter: 1 });
        } else if let Some(min) = e.deltas.iter_mut().min_by_key(|d| d.counter) {
            // Replace the weakest delta.
            *min = DeltaSlot { delta, counter: 1 };
        }
    }

    fn pattern_best(&self, sig: u16) -> Option<(i32, f64)> {
        let e = &self.patterns[sig as usize % self.patterns.len()];
        if e.sig_counter == 0 {
            return None;
        }
        let best = e.deltas.iter().max_by_key(|d| d.counter)?;
        Some((best.delta, best.counter as f64 / e.sig_counter as f64))
    }

    /// Returns `true` if the block passed the filter (not recently
    /// prefetched).
    fn filter_pass(&mut self, block: u64) -> bool {
        let idx = (block as usize) % self.filter.len();
        if self.filter[idx] == block {
            return false;
        }
        self.filter[idx] = block;
        true
    }
}

impl Prefetcher for Spp {
    fn name(&self) -> &str {
        "SPP"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        let page = info.block.index() >> self.page_shift;
        let offset = (info.block.index() & (self.cfg.page_blocks as u64 - 1)) as i32;
        let page_base = page << self.page_shift;
        let nblocks = self.cfg.page_blocks as i32;

        let slot = self.sig_slot(page);
        if !self.signatures[slot].valid {
            self.signatures[slot].valid = true;
            self.signatures[slot].last_offset = offset;
            self.signatures[slot].signature = 0;
            return;
        }
        let entry = self.signatures[slot];
        let delta = offset - entry.last_offset;
        if delta == 0 {
            return;
        }

        // Train: old signature -> observed delta; then advance.
        self.pattern_train(entry.signature, delta);
        let new_sig = update_signature(entry.signature, delta);
        self.signatures[slot].signature = new_sig;
        self.signatures[slot].last_offset = offset;

        // Lookahead along the signature path.
        let mut sig = new_sig;
        let mut confidence = 1.0;
        let mut pos = offset;
        for _ in 0..self.cfg.max_depth {
            let Some((d, p)) = self.pattern_best(sig) else {
                break;
            };
            confidence *= p;
            if confidence < self.cfg.confidence_threshold || d == 0 {
                break;
            }
            let target = pos + d;
            if target < 0 || target >= nblocks {
                break;
            }
            let block = page_base + target as u64;
            if self.filter_pass(block) {
                out.push(BlockAddr::new(block));
            }
            sig = update_signature(sig, d);
            pos = target;
        }
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{CoreId, Pc, RegionGeometry};

    fn info(block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(0x400),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    fn access(s: &mut Spp, block: u64) -> Vec<u64> {
        let mut out = Vec::new();
        s.on_access(&info(block), &mut out);
        out.iter().map(|b| b.index()).collect()
    }

    fn warm_stream(s: &mut Spp, page: u64, delta: u64, count: u64) {
        for i in 0..count {
            access(s, page * 64 + i * delta);
        }
    }

    #[test]
    fn signature_update_is_deterministic_and_bounded() {
        let s = update_signature(0, 1);
        assert_eq!(s, update_signature(0, 1));
        assert!(update_signature(0xFFF, 63) < (1 << SIG_BITS));
        assert_ne!(update_signature(0, 1), update_signature(0, 2));
    }

    #[test]
    fn learns_unit_stride_and_prefetches() {
        let mut s = Spp::new(SppConfig::paper());
        warm_stream(&mut s, 0, 1, 32);
        access(&mut s, 2 * 64);
        let p = access(&mut s, 2 * 64 + 1);
        assert!(
            p.contains(&(2 * 64 + 2)),
            "stride-1 prediction after first delta, got {p:?}"
        );
    }

    #[test]
    fn confidence_throttles_depth() {
        // On a clean stride the lookahead depth is bounded by max_depth for
        // the aggressive 1% variant and is at least as deep as the 25%
        // default. (Use the *first* prediction on a fresh page so the
        // prefetch filter plays no role.)
        let run = |cfg: SppConfig| {
            let mut s = Spp::new(cfg);
            warm_stream(&mut s, 0, 1, 64);
            access(&mut s, 10 * 64);
            access(&mut s, 10 * 64 + 1).len()
        };
        let normal = run(SppConfig::paper());
        let aggressive = run(SppConfig::aggressive());
        assert!(
            aggressive >= normal,
            "aggressive ({aggressive}) must issue at least as many as normal ({normal})"
        );
        assert!(
            aggressive > 8,
            "1% threshold should run deep, got {aggressive}"
        );
        assert!(normal >= 1, "default must still prefetch, got {normal}");
    }

    #[test]
    fn filter_suppresses_repeat_prefetches() {
        let mut s = Spp::new(SppConfig::paper());
        warm_stream(&mut s, 0, 1, 32);
        access(&mut s, 5 * 64);
        access(&mut s, 5 * 64 + 1);
        let first = access(&mut s, 5 * 64 + 2);
        // Walk back and repeat: same targets should be filtered.
        access(&mut s, 5 * 64 + 1);
        let again = access(&mut s, 5 * 64 + 2);
        assert!(first.len() >= again.len());
    }

    #[test]
    fn lookahead_respects_page_bounds() {
        let mut s = Spp::new(SppConfig::aggressive());
        warm_stream(&mut s, 0, 1, 64);
        access(&mut s, 7 * 64 + 61);
        access(&mut s, 7 * 64 + 62);
        let p = access(&mut s, 7 * 64 + 63);
        for b in &p {
            assert!(*b < 8 * 64, "prediction {b} crossed the page");
        }
    }

    #[test]
    fn mixed_deltas_split_confidence() {
        let mut s = Spp::new(SppConfig::paper());
        // From a fresh signature, observe alternating +1/+2 transitions so
        // no delta dominates; path confidence should stop the lookahead
        // quickly (shallow prefetching).
        let mut pos = 0u64;
        for i in 0..40 {
            access(&mut s, pos);
            pos += if i % 2 == 0 { 1 } else { 2 };
        }
        access(&mut s, 30 * 64);
        access(&mut s, 30 * 64 + 1);
        let p = access(&mut s, 30 * 64 + 2);
        assert!(p.len() <= 3, "noisy pattern must throttle, got {p:?}");
    }

    #[test]
    fn counter_halving_keeps_ratios() {
        let mut s = Spp::new(SppConfig::paper());
        for _ in 0..300 {
            s.pattern_train(42, 1);
        }
        let (d, p) = s.pattern_best(42).expect("trained");
        assert_eq!(d, 1);
        assert!(p > 0.9, "dominant delta keeps high probability, got {p}");
    }

    #[test]
    fn storage_is_a_few_kb() {
        let s = Spp::new(SppConfig::paper());
        let kb = s.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(kb < 10.0, "SPP is storage-light ({kb:.2} KB)");
    }
}
