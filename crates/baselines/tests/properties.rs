//! Property-style robustness tests: every baseline prefetcher must accept
//! arbitrary access streams without panicking, with bounded output, and
//! with its internal invariants intact.
//!
//! Streams come from a seeded [`SmallRng`] so runs are deterministic (the
//! hermetic build has no proptest; failures print the offending stream
//! parameters).

use bingo_rng::{Rng, SeedableRng, SmallRng};

use bingo_baselines::{
    Ampm, AmpmConfig, Bop, BopConfig, Sms, Spp, SppConfig, StridePrefetcher, Vldp, VldpConfig,
    DEFAULT_OFFSETS,
};
use bingo_sim::{AccessInfo, BlockAddr, CoreId, Pc, Prefetcher, RegionGeometry};

fn info(pc: u64, block: u64, is_write: bool) -> AccessInfo {
    let g = RegionGeometry::default();
    let b = BlockAddr::new(block);
    AccessInfo {
        core: CoreId(0),
        pc: Pc::new(pc),
        addr: b.base_addr(),
        block: b,
        region: g.region_of(b),
        offset: g.offset_of(b),
        is_write,
        hit: false,
        cycle: 0,
    }
}

fn drive(p: &mut dyn Prefetcher, stream: &[(u64, u64, bool)]) {
    let mut out = Vec::new();
    for &(pc, block, w) in stream {
        out.clear();
        p.on_access(&info(0x400 + (pc % 64) * 4, block, w), &mut out);
        assert!(
            out.len() <= 64,
            "{} emitted {} candidates for one access",
            p.name(),
            out.len()
        );
        if block % 7 == 0 {
            p.on_eviction(BlockAddr::new(block));
        }
    }
    assert!(p.storage_bits() > 0, "{} must account storage", p.name());
}

#[test]
fn all_prefetchers_survive_arbitrary_streams() {
    let mut rng = SmallRng::seed_from_u64(0xBA5E_0001);
    for case in 0..64 {
        let len = rng.gen_range(1..500usize);
        let stream: Vec<(u64, u64, bool)> = (0..len)
            .map(|_| {
                (
                    rng.next_u64(),
                    rng.gen_range(0..(1u64 << 30)),
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        let mut prefetchers: Vec<Box<dyn Prefetcher>> = vec![
            Box::new(Bop::new(BopConfig::paper())),
            Box::new(Bop::new(BopConfig::aggressive())),
            Box::new(Spp::new(SppConfig::paper())),
            Box::new(Spp::new(SppConfig::aggressive())),
            Box::new(Vldp::new(VldpConfig::paper())),
            Box::new(Vldp::new(VldpConfig::aggressive())),
            Box::new(Ampm::new(AmpmConfig::paper())),
            Box::new(Sms::default()),
            Box::new(StridePrefetcher::default()),
        ];
        for p in &mut prefetchers {
            drive(p.as_mut(), &stream);
        }
        let _ = case;
    }
}

/// BOP's selected offset always comes from its candidate list.
#[test]
fn bop_offset_always_from_candidates() {
    let mut rng = SmallRng::seed_from_u64(0xBA5E_0002);
    for _ in 0..32 {
        let len = rng.gen_range(1..2000usize);
        let mut bop = Bop::new(BopConfig::paper());
        let mut out = Vec::new();
        for _ in 0..len {
            let block = rng.gen_range(0..(1u64 << 20));
            out.clear();
            bop.on_access(&info(0x400, block, false), &mut out);
        }
        assert!(
            DEFAULT_OFFSETS.contains(&bop.best_offset()),
            "offset {} not a candidate",
            bop.best_offset()
        );
    }
}

/// Prefetch candidates never equal the demanded block itself for the
/// footprint-based prefetchers (the demand fetch already covers it).
#[test]
fn sms_never_prefetches_the_trigger() {
    let mut rng = SmallRng::seed_from_u64(0xBA5E_0003);
    for _ in 0..64 {
        let len = rng.gen_range(1..400usize);
        let mut sms = Sms::default();
        let mut out = Vec::new();
        for _ in 0..len {
            let pc = rng.gen_range(0..8u64);
            let block = rng.gen_range(0..4096u64);
            out.clear();
            sms.on_access(&info(0x400 + pc * 4, block, false), &mut out);
            assert!(
                !out.contains(&BlockAddr::new(block)),
                "prefetched the demanded block"
            );
        }
    }
}
