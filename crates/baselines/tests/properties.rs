//! Property-based robustness tests: every baseline prefetcher must accept
//! arbitrary access streams without panicking, with bounded output, and
//! with its internal invariants intact.

use proptest::prelude::*;

use bingo_baselines::{
    Ampm, AmpmConfig, Bop, BopConfig, Sms, Spp, SppConfig, StridePrefetcher, Vldp, VldpConfig,
    DEFAULT_OFFSETS,
};
use bingo_sim::{AccessInfo, BlockAddr, CoreId, Pc, Prefetcher, RegionGeometry};

fn info(pc: u64, block: u64, is_write: bool) -> AccessInfo {
    let g = RegionGeometry::default();
    let b = BlockAddr::new(block);
    AccessInfo {
        core: CoreId(0),
        pc: Pc::new(pc),
        addr: b.base_addr(),
        block: b,
        region: g.region_of(b),
        offset: g.offset_of(b),
        is_write,
        hit: false,
        cycle: 0,
    }
}

fn drive(
    p: &mut dyn Prefetcher,
    stream: &[(u64, u64, bool)],
) -> proptest::test_runner::TestCaseResult {
    let mut out = Vec::new();
    for &(pc, block, w) in stream {
        out.clear();
        p.on_access(&info(0x400 + (pc % 64) * 4, block, w), &mut out);
        prop_assert!(
            out.len() <= 64,
            "{} emitted {} candidates for one access",
            p.name(),
            out.len()
        );
        if block % 7 == 0 {
            p.on_eviction(BlockAddr::new(block));
        }
    }
    prop_assert!(p.storage_bits() > 0, "{} must account storage", p.name());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_prefetchers_survive_arbitrary_streams(
        stream in proptest::collection::vec((any::<u64>(), 0u64..(1 << 30), any::<bool>()), 1..500),
    ) {
        let mut prefetchers: Vec<Box<dyn Prefetcher>> = vec![
            Box::new(Bop::new(BopConfig::paper())),
            Box::new(Bop::new(BopConfig::aggressive())),
            Box::new(Spp::new(SppConfig::paper())),
            Box::new(Spp::new(SppConfig::aggressive())),
            Box::new(Vldp::new(VldpConfig::paper())),
            Box::new(Vldp::new(VldpConfig::aggressive())),
            Box::new(Ampm::new(AmpmConfig::paper())),
            Box::new(Sms::default()),
            Box::new(StridePrefetcher::default()),
        ];
        for p in &mut prefetchers {
            drive(p.as_mut(), &stream)?;
        }
    }

    /// BOP's selected offset always comes from its candidate list.
    #[test]
    fn bop_offset_always_from_candidates(
        stream in proptest::collection::vec(0u64..(1 << 20), 1..2000),
    ) {
        let mut bop = Bop::new(BopConfig::paper());
        let mut out = Vec::new();
        for &block in &stream {
            out.clear();
            bop.on_access(&info(0x400, block, false), &mut out);
        }
        prop_assert!(
            DEFAULT_OFFSETS.contains(&bop.best_offset()),
            "offset {} not a candidate",
            bop.best_offset()
        );
    }

    /// Prefetch candidates never equal the demanded block itself for the
    /// footprint-based prefetchers (the demand fetch already covers it).
    #[test]
    fn sms_never_prefetches_the_trigger(
        stream in proptest::collection::vec((0u64..8, 0u64..4096), 1..400),
    ) {
        let mut sms = Sms::default();
        let mut out = Vec::new();
        for &(pc, block) in &stream {
            out.clear();
            sms.on_access(&info(0x400 + pc * 4, block, false), &mut out);
            prop_assert!(
                !out.contains(&BlockAddr::new(block)),
                "prefetched the demanded block"
            );
        }
    }
}
