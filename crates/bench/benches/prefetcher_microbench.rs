//! Microbenchmarks of the prefetcher data structures: per-access costs of
//! Bingo's tables versus the baselines, and the unified history table's
//! three operations (the storage-consolidation contribution).
//!
//! The hermetic build has no criterion, so this is a plain `harness = false`
//! binary: each case times a fixed-iteration loop several times and prints
//! the median nanoseconds per operation with the observed spread. Set
//! `BINGO_BENCH_JSON=<file>` to also emit machine-readable records (see
//! `bingo_bench::perf_record`) for the CI regression gate.

use std::hint::black_box;

use bingo_bench::{time_median, BenchRecord, BenchWriter};

use bingo::multi_event::{MultiEventConfig, MultiEventPrefetcher};
use bingo::{Bingo, BingoConfig, Footprint, UnifiedHistoryTable};
use bingo_baselines::{Ampm, AmpmConfig, Bop, BopConfig, Sms, Spp, SppConfig, Vldp, VldpConfig};
use bingo_sim::{AccessInfo, BlockAddr, CoreId, Pc, Prefetcher, RegionGeometry};

fn info(pc: u64, block: u64) -> AccessInfo {
    let g = RegionGeometry::default();
    let b = BlockAddr::new(block);
    AccessInfo {
        core: CoreId(0),
        pc: Pc::new(pc),
        addr: b.base_addr(),
        block: b,
        region: g.region_of(b),
        offset: g.offset_of(b),
        is_write: false,
        hit: false,
        cycle: 0,
    }
}

/// Drives a prefetcher with a deterministic mixed access stream.
fn drive(p: &mut dyn Prefetcher, accesses: u64) -> usize {
    let mut out = Vec::with_capacity(64);
    let mut issued = 0;
    let mut x = 0x1234_5678_9abc_def0u64;
    for i in 0..accesses {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let block = if i % 4 == 0 {
            x % (1 << 22)
        } else {
            i * 3 % (1 << 22)
        };
        out.clear();
        p.on_access(&info(0x400 + (i % 16) * 4, block), &mut out);
        issued += out.len();
        if i % 64 == 0 {
            p.on_eviction(BlockAddr::new(block));
        }
    }
    issued
}

/// Times `samples` passes of `iters` runs of `f` and reports the median
/// ns per inner operation with the observed spread.
fn report(
    writer: &mut Option<BenchWriter>,
    group: &str,
    name: &str,
    samples: u32,
    iters: u64,
    ops_per_iter: u64,
    mut f: impl FnMut(),
) {
    let ops = (iters * ops_per_iter) as f64;
    let s = time_median(samples, || {
        for _ in 0..iters {
            f();
        }
    });
    // A pass is `iters` loops; convert the ms-per-pass spread to ns/op.
    let to_ns = |ms: f64| ms * 1e6 / ops;
    let record = BenchRecord {
        key: format!("{group}/{name}"),
        unit: "ns/op".to_string(),
        median: to_ns(s.median),
        lo: to_ns(s.lo),
        hi: to_ns(s.hi),
        samples,
    };
    println!(
        "{group}/{name}: {:.1} ns/op (lo {:.1}, hi {:.1}, n={samples})",
        record.median, record.lo, record.hi
    );
    if let Some(w) = writer {
        w.record_or_die(record);
    }
}

fn bench_prefetcher_access(writer: &mut Option<BenchWriter>) {
    const ACCESSES: u64 = 2_000;
    const ITERS: u64 = 10;
    const SAMPLES: u32 = 5;
    let cases: Vec<(&str, Box<dyn Prefetcher>)> = vec![
        ("bingo", Box::new(Bingo::new(BingoConfig::paper()))),
        (
            "bingo_naive_two_table",
            Box::new(MultiEventPrefetcher::new(MultiEventConfig::first_n(2))),
        ),
        ("sms", Box::<Sms>::default()),
        ("ampm", Box::new(Ampm::new(AmpmConfig::paper()))),
        ("vldp", Box::new(Vldp::new(VldpConfig::paper()))),
        ("spp", Box::new(Spp::new(SppConfig::paper()))),
        ("bop", Box::new(Bop::new(BopConfig::paper()))),
    ];
    for (name, mut p) in cases {
        report(
            writer,
            "prefetcher_access",
            name,
            SAMPLES,
            ITERS,
            ACCESSES,
            || {
                black_box(drive(p.as_mut(), ACCESSES));
            },
        );
    }
}

fn bench_history_table(writer: &mut Option<BenchWriter>) {
    const OPS: u64 = 100_000;

    let mut t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
    let mut i = 0u64;
    report(writer, "unified_history_table", "insert", 5, 2, OPS, || {
        for _ in 0..OPS {
            i += 1;
            t.insert(
                black_box(i),
                black_box(i % 512),
                Footprint::from_bits(i & 0xffff_ffff, 32),
            );
        }
    });

    let mut t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
    for i in 0..16_384u64 {
        t.insert(i, i % 1024, Footprint::from_bits(i & 0xffff_ffff, 32));
    }
    let mut i = 0u64;
    report(
        writer,
        "unified_history_table",
        "lookup_long",
        5,
        2,
        OPS,
        || {
            for _ in 0..OPS {
                i += 1;
                black_box(t.lookup_long(black_box(i % 16_384), black_box(i % 1024)));
            }
        },
    );

    let mut t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
    for i in 0..16_384u64 {
        t.insert(i, i % 64, Footprint::from_bits(i & 0xffff_ffff, 32));
    }
    let mut matches = Vec::with_capacity(16);
    let mut i = 0u64;
    report(
        writer,
        "unified_history_table",
        "lookup_short_vote",
        5,
        2,
        OPS,
        || {
            for _ in 0..OPS {
                i += 1;
                t.lookup_short(black_box(i % 64), &mut matches);
                black_box(Footprint::vote(&matches, 0.2));
            }
        },
    );
}

fn main() {
    let mut writer = BenchWriter::from_env();
    if let Some(w) = &mut writer {
        // Host-speed reference for bench_compare's normalization. Both
        // bench binaries record it; the merged file keeps the freshest.
        w.record_or_die(bingo_bench::calibration_record());
    }
    bench_prefetcher_access(&mut writer);
    bench_history_table(&mut writer);
    if let Some(w) = &writer {
        println!("bench records written to {}", w.path().display());
    }
}
