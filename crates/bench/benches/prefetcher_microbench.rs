//! Microbenchmarks of the prefetcher data structures: per-access costs of
//! Bingo's tables versus the baselines, and the unified history table's
//! three operations (the storage-consolidation contribution).
//!
//! The hermetic build has no criterion, so this is a plain `harness = false`
//! binary: each case runs a fixed-iteration timed loop and prints
//! nanoseconds per operation. Numbers are indicative, not statistically
//! filtered — good enough to spot order-of-magnitude regressions.

use std::hint::black_box;
use std::time::Instant;

use bingo::multi_event::{MultiEventConfig, MultiEventPrefetcher};
use bingo::{Bingo, BingoConfig, Footprint, UnifiedHistoryTable};
use bingo_baselines::{Ampm, AmpmConfig, Bop, BopConfig, Sms, Spp, SppConfig, Vldp, VldpConfig};
use bingo_sim::{AccessInfo, BlockAddr, CoreId, Pc, Prefetcher, RegionGeometry};

fn info(pc: u64, block: u64) -> AccessInfo {
    let g = RegionGeometry::default();
    let b = BlockAddr::new(block);
    AccessInfo {
        core: CoreId(0),
        pc: Pc::new(pc),
        addr: b.base_addr(),
        block: b,
        region: g.region_of(b),
        offset: g.offset_of(b),
        is_write: false,
        hit: false,
        cycle: 0,
    }
}

/// Drives a prefetcher with a deterministic mixed access stream.
fn drive(p: &mut dyn Prefetcher, accesses: u64) -> usize {
    let mut out = Vec::with_capacity(64);
    let mut issued = 0;
    let mut x = 0x1234_5678_9abc_def0u64;
    for i in 0..accesses {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let block = if i % 4 == 0 {
            x % (1 << 22)
        } else {
            i * 3 % (1 << 22)
        };
        out.clear();
        p.on_access(&info(0x400 + (i % 16) * 4, block), &mut out);
        issued += out.len();
        if i % 64 == 0 {
            p.on_eviction(BlockAddr::new(block));
        }
    }
    issued
}

/// Times `iters` runs of `f` and prints ns per inner operation.
fn report(group: &str, name: &str, iters: u64, ops_per_iter: u64, mut f: impl FnMut()) {
    // One warmup pass, then the timed passes.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let ns_per_op = elapsed.as_nanos() as f64 / (iters * ops_per_iter) as f64;
    println!("{group}/{name}: {ns_per_op:.1} ns/op ({iters} iters)");
}

fn bench_prefetcher_access() {
    const ACCESSES: u64 = 2_000;
    const ITERS: u64 = 50;
    let cases: Vec<(&str, Box<dyn Prefetcher>)> = vec![
        ("bingo", Box::new(Bingo::new(BingoConfig::paper()))),
        (
            "bingo_naive_two_table",
            Box::new(MultiEventPrefetcher::new(MultiEventConfig::first_n(2))),
        ),
        ("sms", Box::<Sms>::default()),
        ("ampm", Box::new(Ampm::new(AmpmConfig::paper()))),
        ("vldp", Box::new(Vldp::new(VldpConfig::paper()))),
        ("spp", Box::new(Spp::new(SppConfig::paper()))),
        ("bop", Box::new(Bop::new(BopConfig::paper()))),
    ];
    for (name, mut p) in cases {
        report("prefetcher_access", name, ITERS, ACCESSES, || {
            black_box(drive(p.as_mut(), ACCESSES));
        });
    }
}

fn bench_history_table() {
    const OPS: u64 = 100_000;

    let mut t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
    let mut i = 0u64;
    report("unified_history_table", "insert", 10, OPS, || {
        for _ in 0..OPS {
            i += 1;
            t.insert(
                black_box(i),
                black_box(i % 512),
                Footprint::from_bits(i & 0xffff_ffff, 32),
            );
        }
    });

    let mut t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
    for i in 0..16_384u64 {
        t.insert(i, i % 1024, Footprint::from_bits(i & 0xffff_ffff, 32));
    }
    let mut i = 0u64;
    report("unified_history_table", "lookup_long", 10, OPS, || {
        for _ in 0..OPS {
            i += 1;
            black_box(t.lookup_long(black_box(i % 16_384), black_box(i % 1024)));
        }
    });

    let mut t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
    for i in 0..16_384u64 {
        t.insert(i, i % 64, Footprint::from_bits(i & 0xffff_ffff, 32));
    }
    let mut matches = Vec::with_capacity(16);
    let mut i = 0u64;
    report(
        "unified_history_table",
        "lookup_short_vote",
        10,
        OPS,
        || {
            for _ in 0..OPS {
                i += 1;
                t.lookup_short(black_box(i % 64), &mut matches);
                black_box(Footprint::vote(&matches, 0.2));
            }
        },
    );
}

fn main() {
    bench_prefetcher_access();
    bench_history_table();
}
