//! Criterion microbenchmarks of the prefetcher data structures: per-access
//! costs of Bingo's tables versus the baselines, and the unified history
//! table's three operations (the storage-consolidation contribution).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bingo::multi_event::{MultiEventConfig, MultiEventPrefetcher};
use bingo::{Bingo, BingoConfig, Footprint, UnifiedHistoryTable};
use bingo_baselines::{Ampm, AmpmConfig, Bop, BopConfig, Sms, Spp, SppConfig, Vldp, VldpConfig};
use bingo_sim::{AccessInfo, BlockAddr, CoreId, Pc, Prefetcher, RegionGeometry};

fn info(pc: u64, block: u64) -> AccessInfo {
    let g = RegionGeometry::default();
    let b = BlockAddr::new(block);
    AccessInfo {
        core: CoreId(0),
        pc: Pc::new(pc),
        addr: b.base_addr(),
        block: b,
        region: g.region_of(b),
        offset: g.offset_of(b),
        is_write: false,
        hit: false,
        cycle: 0,
    }
}

/// Drives a prefetcher with a deterministic mixed access stream.
fn drive(p: &mut dyn Prefetcher, accesses: u64) -> usize {
    let mut out = Vec::with_capacity(64);
    let mut issued = 0;
    let mut x = 0x1234_5678_9abc_def0u64;
    for i in 0..accesses {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let block = if i % 4 == 0 {
            x % (1 << 22)
        } else {
            i * 3 % (1 << 22)
        };
        out.clear();
        p.on_access(&info(0x400 + (i % 16) * 4, block), &mut out);
        issued += out.len();
        if i % 64 == 0 {
            p.on_eviction(BlockAddr::new(block));
        }
    }
    issued
}

fn bench_prefetcher_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetcher_access");
    group.bench_function("bingo", |b| {
        let mut p = Bingo::new(BingoConfig::paper());
        b.iter(|| drive(black_box(&mut p), 2_000))
    });
    group.bench_function("bingo_naive_two_table", |b| {
        let mut p = MultiEventPrefetcher::new(MultiEventConfig::first_n(2));
        b.iter(|| drive(black_box(&mut p), 2_000))
    });
    group.bench_function("sms", |b| {
        let mut p = Sms::default();
        b.iter(|| drive(black_box(&mut p), 2_000))
    });
    group.bench_function("ampm", |b| {
        let mut p = Ampm::new(AmpmConfig::paper());
        b.iter(|| drive(black_box(&mut p), 2_000))
    });
    group.bench_function("vldp", |b| {
        let mut p = Vldp::new(VldpConfig::paper());
        b.iter(|| drive(black_box(&mut p), 2_000))
    });
    group.bench_function("spp", |b| {
        let mut p = Spp::new(SppConfig::paper());
        b.iter(|| drive(black_box(&mut p), 2_000))
    });
    group.bench_function("bop", |b| {
        let mut p = Bop::new(BopConfig::paper());
        b.iter(|| drive(black_box(&mut p), 2_000))
    });
    group.finish();
}

fn bench_history_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("unified_history_table");
    group.bench_function("insert", |b| {
        let mut t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            t.insert(
                black_box(i),
                black_box(i % 512),
                Footprint::from_bits(i & 0xffff_ffff, 32),
            );
        })
    });
    group.bench_function("lookup_long", |b| {
        let mut t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
        for i in 0..16_384u64 {
            t.insert(i, i % 1024, Footprint::from_bits(i & 0xffff_ffff, 32));
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(t.lookup_long(black_box(i % 16_384), black_box(i % 1024)))
        })
    });
    group.bench_function("lookup_short_vote", |b| {
        let mut t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
        for i in 0..16_384u64 {
            t.insert(i, i % 64, Footprint::from_bits(i & 0xffff_ffff, 32));
        }
        let mut matches = Vec::with_capacity(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            t.lookup_short(black_box(i % 64), &mut matches);
            black_box(Footprint::vote(&matches, 0.2))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prefetcher_access, bench_history_table);
criterion_main!(benches);
