//! End-to-end benches: one small-scale simulation per paper figure family,
//! so `cargo bench` exercises every experiment path and tracks
//! simulator-throughput regressions.
//!
//! The hermetic build has no criterion, so this is a plain `harness = false`
//! binary printing wall-clock seconds per simulation case.

use std::hint::black_box;
use std::time::Instant;

use bingo::EventKind;
use bingo_bench::{run_one, PrefetcherKind, RunScale};
use bingo_workloads::Workload;

fn tiny_scale() -> RunScale {
    RunScale {
        instructions_per_core: 30_000,
        warmup_per_core: 20_000,
        seed: 42,
    }
}

fn report(group: &str, name: &str, samples: u32, f: impl Fn()) {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    let per_run = start.elapsed().as_secs_f64() / f64::from(samples);
    println!(
        "{group}/{name}: {:.1} ms/run ({samples} samples)",
        per_run * 1e3
    );
}

fn bench_simulation_throughput() {
    report("simulation", "baseline_em3d", 3, || {
        black_box(run_one(Workload::Em3d, PrefetcherKind::None, tiny_scale()));
    });
    report("simulation", "bingo_em3d", 3, || {
        black_box(run_one(Workload::Em3d, PrefetcherKind::Bingo, tiny_scale()));
    });
    report("simulation", "bingo_data_serving", 3, || {
        black_box(run_one(
            Workload::DataServing,
            PrefetcherKind::Bingo,
            tiny_scale(),
        ));
    });
}

fn bench_figure_paths() {
    // One representative (workload, prefetcher) per figure family, small
    // enough to repeat a few times per case.
    let cases: [(&str, Workload, PrefetcherKind); 6] = [
        (
            "fig2_single_event",
            Workload::DataServing,
            PrefetcherKind::SingleEvent(EventKind::PcOffset),
        ),
        (
            "fig3_multi_event",
            Workload::DataServing,
            PrefetcherKind::MultiEvent(5),
        ),
        (
            "fig6_small_table",
            Workload::Streaming,
            PrefetcherKind::BingoEntries(1024),
        ),
        ("fig7_sms", Workload::Streaming, PrefetcherKind::Sms),
        ("fig8_vldp", Workload::Mix1, PrefetcherKind::Vldp),
        (
            "fig10_spp_aggressive",
            Workload::Mix1,
            PrefetcherKind::SppAggressive,
        ),
    ];
    for (name, w, k) in cases {
        report("figures", name, 3, move || {
            black_box(run_one(w, k, tiny_scale()));
        });
    }
}

fn main() {
    bench_simulation_throughput();
    bench_figure_paths();
}
