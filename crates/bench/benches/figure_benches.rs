//! Criterion end-to-end benches: one small-scale simulation per paper
//! figure family, so `cargo bench` exercises every experiment path and
//! tracks simulator-throughput regressions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bingo::EventKind;
use bingo_bench::{run_one, PrefetcherKind, RunScale};
use bingo_workloads::Workload;

fn tiny_scale() -> RunScale {
    RunScale {
        instructions_per_core: 30_000,
        warmup_per_core: 20_000,
        seed: 42,
    }
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("baseline_em3d", |b| {
        b.iter(|| black_box(run_one(Workload::Em3d, PrefetcherKind::None, tiny_scale())))
    });
    group.bench_function("bingo_em3d", |b| {
        b.iter(|| black_box(run_one(Workload::Em3d, PrefetcherKind::Bingo, tiny_scale())))
    });
    group.bench_function("bingo_data_serving", |b| {
        b.iter(|| {
            black_box(run_one(
                Workload::DataServing,
                PrefetcherKind::Bingo,
                tiny_scale(),
            ))
        })
    });
    group.finish();
}

fn bench_figure_paths(c: &mut Criterion) {
    // One representative (workload, prefetcher) per figure family, at a
    // scale small enough for Criterion's repeated sampling.
    let cases: [(&str, Workload, PrefetcherKind); 6] = [
        (
            "fig2_single_event",
            Workload::DataServing,
            PrefetcherKind::SingleEvent(EventKind::PcOffset),
        ),
        (
            "fig3_multi_event",
            Workload::DataServing,
            PrefetcherKind::MultiEvent(5),
        ),
        (
            "fig6_small_table",
            Workload::Streaming,
            PrefetcherKind::BingoEntries(1024),
        ),
        ("fig7_sms", Workload::Streaming, PrefetcherKind::Sms),
        ("fig8_vldp", Workload::Mix1, PrefetcherKind::Vldp),
        (
            "fig10_spp_aggressive",
            Workload::Mix1,
            PrefetcherKind::SppAggressive,
        ),
    ];
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for (name, w, k) in cases {
        group.bench_function(name, move |b| {
            b.iter(|| black_box(run_one(w, k, tiny_scale())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation_throughput, bench_figure_paths);
criterion_main!(benches);
