//! End-to-end benches: one small-scale simulation per paper figure family
//! plus the full fig8 workload × prefetcher grid, so `cargo bench`
//! exercises every experiment path and tracks simulator-throughput
//! regressions.
//!
//! The hermetic build has no criterion, so this is a plain `harness = false`
//! binary printing median-of-N wall-clock per case with the observed
//! spread. Set `BINGO_BENCH_JSON=<file>` to also emit machine-readable
//! records (see `bingo_bench::perf_record`) for the CI regression gate.

use std::hint::black_box;

use bingo::EventKind;
use bingo_bench::{
    run_mix_configured, run_one, time_median, BenchWriter, MixAssignment, MixConfig,
    PrefetcherKind, Pressure, RunScale,
};
use bingo_sim::{SystemConfig, TelemetryLevel, ThrottleMode};
use bingo_workloads::Workload;

fn tiny_scale() -> RunScale {
    RunScale {
        instructions_per_core: 30_000,
        warmup_per_core: 20_000,
        seed: 42,
    }
}

/// Simulated instructions one `run_one` pass executes (warmup included).
fn instrs_per_pass(scale: RunScale) -> f64 {
    let cores = SystemConfig::paper().cores as u64;
    (cores * (scale.instructions_per_core + scale.warmup_per_core)) as f64
}

/// Times `f` (median of `samples` passes) and reports wall-clock cost.
fn report(writer: &mut Option<BenchWriter>, group: &str, name: &str, samples: u32, f: impl Fn()) {
    let s = time_median(samples, f);
    println!(
        "{group}/{name}: {:.1} ms/run (lo {:.1}, hi {:.1}, n={samples})",
        s.median, s.lo, s.hi
    );
    if let Some(w) = writer {
        w.record_or_die(s.cost_record(&format!("{group}/{name}")));
    }
}

fn bench_simulation_throughput(writer: &mut Option<BenchWriter>) {
    report(writer, "simulation", "baseline_em3d", 5, || {
        black_box(run_one(Workload::Em3d, PrefetcherKind::None, tiny_scale()));
    });
    report(writer, "simulation", "bingo_em3d", 5, || {
        black_box(run_one(Workload::Em3d, PrefetcherKind::Bingo, tiny_scale()));
    });
    report(writer, "simulation", "bingo_data_serving", 5, || {
        black_box(run_one(
            Workload::DataServing,
            PrefetcherKind::Bingo,
            tiny_scale(),
        ));
    });
}

fn bench_figure_paths(writer: &mut Option<BenchWriter>) {
    // One representative (workload, prefetcher) per figure family, small
    // enough to repeat a few times per case.
    let cases: [(&str, Workload, PrefetcherKind); 6] = [
        (
            "fig2_single_event",
            Workload::DataServing,
            PrefetcherKind::SingleEvent(EventKind::PcOffset),
        ),
        (
            "fig3_multi_event",
            Workload::DataServing,
            PrefetcherKind::MultiEvent(5),
        ),
        (
            "fig6_small_table",
            Workload::Streaming,
            PrefetcherKind::BingoEntries(1024),
        ),
        ("fig7_sms", Workload::Streaming, PrefetcherKind::Sms),
        ("fig8_vldp", Workload::Mix1, PrefetcherKind::Vldp),
        (
            "fig10_spp_aggressive",
            Workload::Mix1,
            PrefetcherKind::SppAggressive,
        ),
    ];
    for (name, w, k) in cases {
        report(writer, "figures", name, 5, move || {
            black_box(run_one(w, k, tiny_scale()));
        });
    }
}

/// The raw-speed trajectory: simulator throughput (million simulated
/// instructions per wall-clock second) for every cell of the fig8 grid —
/// all ten workloads against the no-prefetch baseline and the six headline
/// prefetchers.
fn bench_fig8_grid(writer: &mut Option<BenchWriter>) {
    let scale = tiny_scale();
    let instrs = instrs_per_pass(scale);
    let mut kinds = vec![PrefetcherKind::None];
    kinds.extend(PrefetcherKind::HEADLINE);
    for w in Workload::ALL {
        for &k in &kinds {
            let s = time_median(3, || {
                black_box(run_one(w, k, scale));
            });
            let key = format!("fig8_grid/{}/{}", w.name(), k.name());
            let r = s.throughput_record(&key, instrs);
            println!(
                "{key}: {:.1} Minstr/s (lo {:.1}, hi {:.1}, n={})",
                r.median, r.lo, r.hi, r.samples
            );
            if let Some(wr) = writer {
                wr.record_or_die(r);
            }
        }
    }
}

/// The multi-core trajectory: 2-core homogeneous mixes through the mix
/// path (per-core front-ends, shared LLC/MSHR/DRAM) for every fig8
/// workload against the baseline and Bingo, so contention-grid speed is
/// gated alongside the single-core grid.
fn bench_fig8_2core(writer: &mut Option<BenchWriter>) {
    let scale = tiny_scale();
    let cores = 2usize;
    let instrs = (cores as u64 * (scale.instructions_per_core + scale.warmup_per_core)) as f64;
    for w in Workload::ALL {
        for k in [PrefetcherKind::None, PrefetcherKind::Bingo] {
            let mix = MixConfig {
                name: "bench".to_string(),
                cores: vec![
                    MixAssignment {
                        workload: w,
                        prefetcher: k,
                        scale_percent: 100,
                    };
                    cores
                ],
                ramp: None,
            };
            let s = time_median(3, || {
                black_box(
                    run_mix_configured(
                        &mix,
                        cores,
                        &Pressure::NONE,
                        scale,
                        None,
                        TelemetryLevel::Off,
                        ThrottleMode::Off,
                    )
                    .expect("bench mix cell completes"),
                );
            });
            let key = format!("fig8_2core/{}/{}", w.name(), k.name());
            let r = s.throughput_record(&key, instrs);
            println!(
                "{key}: {:.1} Minstr/s (lo {:.1}, hi {:.1}, n={})",
                r.median, r.lo, r.hi, r.samples
            );
            if let Some(wr) = writer {
                wr.record_or_die(r);
            }
        }
    }
}

fn main() {
    let mut writer = BenchWriter::from_env();
    if let Some(w) = &mut writer {
        // Host-speed reference for bench_compare's normalization.
        w.record_or_die(bingo_bench::calibration_record());
    }
    bench_simulation_throughput(&mut writer);
    bench_figure_paths(&mut writer);
    bench_fig8_grid(&mut writer);
    bench_fig8_2core(&mut writer);
    if let Some(w) = &writer {
        println!("bench records written to {}", w.path().display());
    }
}
