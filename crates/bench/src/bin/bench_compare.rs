//! Compares a candidate bench-record file against the committed snapshot
//! and fails (exit 1) on regressions beyond a noise threshold.
//!
//! ```text
//! bench_compare --snapshot BENCH_simulator.json --candidate /tmp/candidate.json [--threshold 0.15]
//! ```
//!
//! The regression direction comes from each record's unit: `…/s` units
//! (throughputs) regress downward, cost units (`ms/run`, `ns/op`) regress
//! upward. Two layers make the absolute-time gate noise-tolerant:
//!
//! * **Host-speed normalization.** When both files carry the
//!   `calibration/spin` record (a fixed CPU-bound loop, see
//!   `perf_record`), the ratio of its times estimates how much
//!   slower/faster the candidate host is than the snapshot host, and
//!   every candidate value is scaled by that factor first. A different
//!   runner class — or the same shared box under different co-tenant
//!   load — shifts all cases by a common factor; the calibration divides
//!   it out so the threshold only sees per-case changes.
//! * **Best-pass condition.** A case fails only when *both* the
//!   candidate's median and its best observed sample are beyond the
//!   threshold: a real slowdown degrades every pass, while scheduler
//!   jitter usually spares at least one.
//!
//! `BINGO_BENCH_THRESHOLD` overrides the default threshold; the
//! `--threshold` flag overrides both. A snapshot key missing from the
//! candidate is a failure (silent coverage loss must not pass the gate);
//! candidate-only keys are listed as new and do not fail.

use std::path::PathBuf;
use std::process::ExitCode;

use bingo_bench::perf_record::{BENCH_THRESHOLD_ENV, CALIBRATION_KEY};
use bingo_bench::{load_records, BenchRecord};

struct Args {
    snapshot: PathBuf,
    candidate: PathBuf,
    threshold: f64,
}

fn usage() -> ! {
    eprintln!("usage: bench_compare --snapshot <file> --candidate <file> [--threshold <fraction>]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut snapshot = None;
    let mut candidate = None;
    let mut threshold = std::env::var(BENCH_THRESHOLD_ENV)
        .ok()
        .map(|raw| {
            raw.parse::<f64>()
                .unwrap_or_else(|e| panic!("{BENCH_THRESHOLD_ENV}={raw:?}: {e}"))
        })
        .unwrap_or(0.15);
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--snapshot" => snapshot = Some(PathBuf::from(value())),
            "--candidate" => candidate = Some(PathBuf::from(value())),
            "--threshold" => {
                let raw = value();
                threshold = raw
                    .parse()
                    .unwrap_or_else(|e| panic!("--threshold {raw:?}: {e}"));
            }
            _ => usage(),
        }
    }
    let (Some(snapshot), Some(candidate)) = (snapshot, candidate) else {
        usage()
    };
    assert!(
        (0.0..1.0).contains(&threshold),
        "threshold must be a fraction in [0, 1), got {threshold}"
    );
    Args {
        snapshot,
        candidate,
        threshold,
    }
}

/// Relative change of a candidate value vs the snapshot median, oriented
/// so that positive is always a regression.
fn regression(base: &BenchRecord, value: f64) -> f64 {
    if base.median == 0.0 {
        return 0.0;
    }
    let delta = (value - base.median) / base.median;
    if base.higher_is_better() {
        -delta
    } else {
        delta
    }
}

/// The candidate's best observed sample in the regression direction:
/// the fastest pass for costs, the highest throughput for rates.
fn best_sample(cand: &BenchRecord) -> f64 {
    if cand.higher_is_better() {
        cand.hi
    } else {
        cand.lo
    }
}

/// How much slower the candidate host is than the snapshot host (> 1 =
/// slower), from the calibration records; 1.0 when either file lacks one.
///
/// Uses each spin's *fastest* pass: co-tenant load only ever adds time,
/// so the minimum tracks intrinsic host speed while the median of a
/// contended window does not.
fn host_factor(snapshot: &[BenchRecord], candidate: &[BenchRecord]) -> f64 {
    let cal = |records: &[BenchRecord]| {
        records
            .iter()
            .find(|r| r.key == CALIBRATION_KEY)
            .map(|r| r.lo)
    };
    match (cal(snapshot), cal(candidate)) {
        (Some(base), Some(cand)) if base > 0.0 => cand / base,
        _ => {
            println!("no calibration record in both files; comparing raw times");
            1.0
        }
    }
}

/// Rescales a candidate value to the snapshot host's speed.
fn normalize(cand: &BenchRecord, value: f64, factor: f64) -> f64 {
    if cand.higher_is_better() {
        value * factor
    } else {
        value / factor
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let load = |what: &str, path: &PathBuf| {
        load_records(path).unwrap_or_else(|e| panic!("cannot load {what} {path:?}: {e}"))
    };
    let snapshot = load("snapshot", &args.snapshot);
    let candidate = load("candidate", &args.candidate);

    let factor = host_factor(&snapshot, &candidate);
    if factor != 1.0 {
        println!(
            "calibration: candidate host is {factor:.2}x the snapshot host's spin time; \
             normalizing all cases"
        );
    }

    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    let mut improved = 0usize;
    for base in &snapshot {
        if base.key == CALIBRATION_KEY {
            continue; // the normalizer itself is not a gated case
        }
        let Some(cand) = candidate.iter().find(|c| c.key == base.key) else {
            missing.push(base.key.clone());
            continue;
        };
        if cand.unit != base.unit {
            regressions.push(format!(
                "{}: unit changed {} -> {} (re-baseline the snapshot)",
                base.key, base.unit, cand.unit
            ));
            continue;
        }
        let reg = regression(base, normalize(cand, cand.median, factor));
        let reg_best = regression(base, normalize(cand, best_sample(cand), factor));
        let arrow = if base.higher_is_better() { "-" } else { "+" };
        let line = format!(
            "{}: {:.3} -> {:.3} {} (normalized {arrow}{:.1}% worse, best pass {arrow}{:.1}%, \
             threshold {:.1}%)",
            base.key,
            base.median,
            cand.median,
            base.unit,
            reg.abs() * 100.0,
            reg_best.abs() * 100.0,
            args.threshold * 100.0
        );
        if reg > args.threshold && reg_best > args.threshold {
            regressions.push(line);
        } else {
            if reg < 0.0 {
                improved += 1;
            }
            println!(
                "ok   {}: {:.3} -> {:.3} {} (normalized {:+.1}% worse)",
                base.key,
                base.median,
                cand.median,
                base.unit,
                reg * 100.0
            );
        }
    }
    let new: Vec<&BenchRecord> = candidate
        .iter()
        .filter(|c| c.key != CALIBRATION_KEY && snapshot.iter().all(|b| b.key != c.key))
        .collect();
    for n in &new {
        println!("new  {n}");
    }

    let gated = snapshot.iter().filter(|r| r.key != CALIBRATION_KEY).count();
    println!(
        "\ncompared {gated} cases: {} within threshold ({improved} improved), {} new, {} missing, {} regressed",
        gated - regressions.len() - missing.len(),
        new.len(),
        missing.len(),
        regressions.len()
    );
    let mut failed = false;
    for m in &missing {
        eprintln!("MISSING {m}: present in snapshot, absent from candidate");
        failed = true;
    }
    for r in &regressions {
        eprintln!("REGRESSION {r}");
        failed = true;
    }
    if failed {
        eprintln!(
            "\nbench gate failed (threshold {:.0}%). If the change is intentional, \
             regenerate the snapshot from the workspace root: \
             BINGO_BENCH_JSON=$PWD/BENCH_simulator.json cargo bench -p bingo-bench",
            args.threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench gate passed (threshold {:.0}%)",
            args.threshold * 100.0
        );
        ExitCode::SUCCESS
    }
}
