//! Figure 9 — performance-density improvement (throughput per unit chip
//! area) of every prefetcher over the no-prefetcher baseline.
//!
//! The paper reports Bingo at +59%: the area of its metadata tables costs
//! less than 1% of the performance gain.

use bingo_bench::{
    geometric_mean, pct, AreaModel, ParallelHarness, PrefetcherKind, RunScale, Table,
};
use bingo_sim::SystemConfig;
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let area = AreaModel::default_14nm();
    let cfg = SystemConfig::paper();
    let llc_mb = cfg.llc.size_bytes as f64 / 1024.0 / 1024.0;

    // Kind-major grid: all workloads of one prefetcher are contiguous.
    let cells: Vec<_> = PrefetcherKind::HEADLINE
        .iter()
        .flat_map(|&k| Workload::ALL.into_iter().map(move |w| (w, k)))
        .collect();
    let evals = harness.evaluate_grid(&cells);

    let mut t = Table::new(vec![
        "Prefetcher",
        "Storage/core (KB)",
        "Perf gmean",
        "Perf density",
    ]);
    let n_workloads = Workload::ALL.len();
    for (i, &kind) in PrefetcherKind::HEADLINE.iter().enumerate() {
        let kb = kind.storage_kb();
        let speedups: Vec<f64> = evals[i * n_workloads..(i + 1) * n_workloads]
            .iter()
            .map(|e| e.speedup)
            .collect();
        let gmean = geometric_mean(&speedups);
        let density = area.density_improvement(cfg.cores, llc_mb, kb, gmean);
        t.row(vec![
            kind.name(),
            format!("{kb:.1}"),
            pct(gmean - 1.0),
            pct(density),
        ]);
    }
    t.write_csv_if_requested("fig9_density");
    println!(
        "Figure 9. Performance-density improvement over the baseline\n\
         (paper: Bingo +59%, within 1% of its raw performance gain).\n\n{t}"
    );
}
