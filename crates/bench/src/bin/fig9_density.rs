//! Figure 9 — performance-density improvement (throughput per unit chip
//! area) of every prefetcher over the no-prefetcher baseline.
//!
//! The paper reports Bingo at +59%: the area of its metadata tables costs
//! less than 1% of the performance gain.

use bingo_bench::{geometric_mean, pct, AreaModel, Harness, PrefetcherKind, RunScale, Table};
use bingo_sim::SystemConfig;
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = Harness::new(scale);
    let area = AreaModel::default_14nm();
    let cfg = SystemConfig::paper();
    let llc_mb = cfg.llc.size_bytes as f64 / 1024.0 / 1024.0;

    let mut t = Table::new(vec![
        "Prefetcher",
        "Storage/core (KB)",
        "Perf gmean",
        "Perf density",
    ]);
    for &kind in &PrefetcherKind::HEADLINE {
        let kb = kind.storage_kb();
        let mut speedups = Vec::new();
        for w in Workload::ALL {
            speedups.push(harness.evaluate(w, kind).speedup);
            eprintln!("done {w} / {}", kind.name());
        }
        let gmean = geometric_mean(&speedups);
        let density = area.density_improvement(cfg.cores, llc_mb, kb, gmean);
        t.row(vec![
            kind.name(),
            format!("{kb:.1}"),
            pct(gmean - 1.0),
            pct(density),
        ]);
    }
    t.write_csv_if_requested("fig9_density");
    println!(
        "Figure 9. Performance-density improvement over the baseline\n\
         (paper: Bingo +59%, within 1% of its raw performance gain).\n\n{t}"
    );
}
