//! Figure 7 — miss coverage and overprediction of all six prefetchers on
//! every workload (overprediction normalized to baseline misses).
//!
//! The paper reports Bingo covering >63% of misses on average, 8% above
//! the second-best prefetcher, with overprediction on par with the rest.

use bingo_bench::{mean, pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let evals = harness.evaluate_all(&Workload::ALL, &PrefetcherKind::HEADLINE);
    let mut t = Table::new(vec![
        "Workload",
        "Prefetcher",
        "Coverage",
        "Overprediction",
        "Accuracy",
        "Timeliness",
    ]);
    let mut avg: Vec<(String, Vec<f64>, Vec<f64>)> = PrefetcherKind::HEADLINE
        .iter()
        .map(|k| (k.name(), Vec::new(), Vec::new()))
        .collect();
    for (idx, e) in evals.iter().enumerate() {
        let i = idx % PrefetcherKind::HEADLINE.len();
        t.row(vec![
            e.workload.name().to_string(),
            e.kind.name(),
            pct(e.coverage.coverage),
            pct(e.coverage.overprediction),
            pct(e.coverage.accuracy),
            pct(e.coverage.timeliness),
        ]);
        avg[i].1.push(e.coverage.coverage);
        avg[i].2.push(e.coverage.overprediction);
    }
    for (name, covs, ovs) in &avg {
        t.row(vec![
            "Average".to_string(),
            name.clone(),
            pct(mean(covs)),
            pct(mean(ovs)),
            String::new(),
            String::new(),
        ]);
    }
    t.write_csv_if_requested("fig7_coverage");
    println!(
        "Figure 7. Coverage and overprediction of all prefetchers\n\
         (paper: Bingo highest coverage on every workload, >63% average).\n\n{t}"
    );
}
