//! Figure 7 — miss coverage and overprediction of all six prefetchers on
//! every workload (overprediction normalized to baseline misses).
//!
//! The paper reports Bingo covering >63% of misses on average, 8% above
//! the second-best prefetcher, with overprediction on par with the rest.

use bingo_bench::{mean, pct, Harness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = Harness::new(scale);
    let mut t = Table::new(vec!["Workload", "Prefetcher", "Coverage", "Overprediction", "Accuracy"]);
    let mut avg: Vec<(String, Vec<f64>, Vec<f64>)> = PrefetcherKind::HEADLINE
        .iter()
        .map(|k| (k.name(), Vec::new(), Vec::new()))
        .collect();
    for w in Workload::ALL {
        for (i, &kind) in PrefetcherKind::HEADLINE.iter().enumerate() {
            let e = harness.evaluate(w, kind);
            t.row(vec![
                w.name().to_string(),
                kind.name(),
                pct(e.coverage.coverage),
                pct(e.coverage.overprediction),
                pct(e.coverage.accuracy),
            ]);
            avg[i].1.push(e.coverage.coverage);
            avg[i].2.push(e.coverage.overprediction);
            eprintln!("done {w} / {}", kind.name());
        }
    }
    for (name, covs, ovs) in &avg {
        t.row(vec![
            "Average".to_string(),
            name.clone(),
            pct(mean(covs)),
            pct(mean(ovs)),
            String::new(),
        ]);
    }
    t.write_csv_if_requested("fig7_coverage");
    println!(
        "Figure 7. Coverage and overprediction of all prefetchers\n\
         (paper: Bingo highest coverage on every workload, >63% average).\n\n{t}"
    );
}
