//! Calibration diagnostic: baseline MPKI vs Table II, plus quick
//! coverage/speedup sanity for a few prefetchers. Not one of the paper's
//! figures — a development tool for tuning the workload generators.

use bingo_bench::{pct, Harness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = Harness::new(scale);
    let mut table = Table::new(vec![
        "Workload", "MPKI", "Paper", "IPC", "Bingo cov", "Bingo ov", "Bingo spd", "SMS cov",
        "SMS spd", "BOP cov", "BOP spd",
    ]);
    for w in Workload::ALL {
        let base = harness.baseline(w).clone();
        let bingo = harness.evaluate(w, PrefetcherKind::Bingo);
        let sms = harness.evaluate(w, PrefetcherKind::Sms);
        let bop = harness.evaluate(w, PrefetcherKind::Bop);
        table.row(vec![
            w.name().to_string(),
            format!("{:.1}", base.llc_mpki()),
            format!("{:.1}", w.paper_mpki()),
            format!("{:.2}", base.aggregate_ipc()),
            pct(bingo.coverage.coverage),
            pct(bingo.coverage.overprediction),
            pct(bingo.improvement()),
            pct(sms.coverage.coverage),
            pct(sms.improvement()),
            pct(bop.coverage.coverage),
            pct(bop.improvement()),
        ]);
        eprintln!("done {w}");
    }
    println!("{table}");
}
