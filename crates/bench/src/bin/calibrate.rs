//! Calibration diagnostic: baseline MPKI vs Table II, plus quick
//! coverage/speedup sanity for a few prefetchers. Not one of the paper's
//! figures — a development tool for tuning the workload generators.

use bingo_bench::{pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let kinds = [
        PrefetcherKind::Bingo,
        PrefetcherKind::Sms,
        PrefetcherKind::Bop,
    ];
    let evals = harness.evaluate_all(&Workload::ALL, &kinds);
    let mut table = Table::new(vec![
        "Workload",
        "MPKI",
        "Paper",
        "IPC",
        "Bingo cov",
        "Bingo ov",
        "Bingo spd",
        "SMS cov",
        "SMS spd",
        "BOP cov",
        "BOP spd",
    ]);
    for (wi, w) in Workload::ALL.into_iter().enumerate() {
        let row = &evals[wi * kinds.len()..(wi + 1) * kinds.len()];
        let (bingo, sms, bop) = (&row[0], &row[1], &row[2]);
        let base = &bingo.baseline;
        table.row(vec![
            w.name().to_string(),
            format!("{:.1}", base.llc_mpki()),
            format!("{:.1}", w.paper_mpki()),
            format!("{:.2}", base.aggregate_ipc()),
            pct(bingo.coverage.coverage),
            pct(bingo.coverage.overprediction),
            pct(bingo.improvement()),
            pct(sms.coverage.coverage),
            pct(sms.improvement()),
            pct(bop.coverage.coverage),
            pct(bop.improvement()),
        ]);
    }
    println!("{table}");
}
