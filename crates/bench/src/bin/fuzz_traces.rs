//! Adversarial trace-decoder fuzzer: seeded corruption against the
//! hardened loader.
//!
//! ```text
//! fuzz_traces [--seeds N] [--out DIR]    default 500 seeds, artifacts to
//!                                        target/traces-fuzz/
//! ```
//!
//! For every seed, a pristine capture image is corrupted by a deterministic
//! plan ([`bingo_trace::plan_for_seed`]: truncation, bit flips, chunk
//! reordering, garbage headers, mid-record EOF) and pushed through both
//! ingestion policies. The loader's contract, checked per seed:
//!
//! * **no panics** — either policy, any input;
//! * **strict** either decodes everything or returns a typed
//!   [`bingo_trace::ReadError`] whose message carries the byte offset;
//! * **strict-clean implies lenient-clean** — when strict accepts the
//!   bytes, lenient must deliver the identical record stream with nothing
//!   quarantined;
//! * **lenient always terminates** with an ingest report, never an error
//!   (I/O aside), no matter how mangled the bytes are.
//!
//! A subsample of corrupted images additionally runs a tiny lenient
//! simulation end to end, asserting the sweep completes (or fails as a
//! contained cell) and that the quarantine tally survives into the
//! JSONL stats export.
//!
//! On any violation the corruption plan is shrunk with
//! [`bingo_oracle::shrink_items`] to a minimal reproducing op list, the
//! corrupted image and plan are written to `--out`, and the process exits
//! nonzero — CI uploads the directory as an artifact.

use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bingo_bench::{
    run_trace_cell, trace_cell_key, CellOutcome, PrefetcherKind, RunScale, StatsExport,
};
use bingo_oracle::shrink_items;
use bingo_sim::{Instr, TelemetryLevel, ThrottleMode};
use bingo_trace::{apply, capture_source, plan_for_seed, CorruptionOp, Policy, TraceReader};
use bingo_workloads::{TraceWorkload, Workload};

struct Args {
    seeds: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 500,
        out: PathBuf::from("target/traces-fuzz"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                args.seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds needs a number");
            }
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Base images the corruptions are applied to: single-core captures of
/// three workloads with deliberately different access mixes, small chunks
/// so most seeds hit several chunk boundaries.
fn base_images() -> Vec<(Workload, Vec<u8>)> {
    let picks = [Workload::Streaming, Workload::Em3d, Workload::STRESS[0]];
    picks
        .iter()
        .map(|&w| {
            let mut sources = w.sources(1, 0xF0_5EED);
            let mut sink = Cursor::new(Vec::new());
            capture_source(sources[0].as_mut(), 3_000, 128, &mut sink)
                .expect("in-memory capture cannot fail on I/O");
            (w, sink.into_inner())
        })
        .collect()
}

/// Drains a reader to completion. `Ok` carries the decoded stream; `Err`
/// the first (typed) decode error.
fn drain(bytes: &[u8], policy: Policy) -> Result<Vec<Instr>, bingo_trace::ReadError> {
    let mut reader = TraceReader::new(Cursor::new(bytes), policy)?;
    let mut out = Vec::new();
    while let Some(instr) = reader.next_instr()? {
        out.push(instr);
    }
    Ok(out)
}

/// How one corrupted image fared against the loader contract. `None`
/// means every clause held.
fn violation(image: &[u8], ops: &[CorruptionOp]) -> Option<String> {
    let corrupted = apply(image, ops);
    let strict = match catch_unwind(AssertUnwindSafe(|| drain(&corrupted, Policy::Strict))) {
        Ok(r) => r,
        Err(_) => return Some("strict decoder PANICKED".to_string()),
    };
    let lenient = match catch_unwind(AssertUnwindSafe(|| drain(&corrupted, Policy::Lenient))) {
        Ok(r) => r,
        Err(_) => return Some("lenient decoder PANICKED".to_string()),
    };
    match (&strict, &lenient) {
        (Ok(s), Ok(l)) => {
            if s != l {
                return Some(format!(
                    "strict accepted {} records but lenient delivered {}",
                    s.len(),
                    l.len()
                ));
            }
        }
        (Err(e), _) => {
            if !e.to_string().contains("byte") {
                return Some(format!("strict error lost its byte offset: {e}"));
            }
        }
        (_, Err(e)) => {
            return Some(format!(
                "lenient policy must never error on corruption: {e}"
            ));
        }
    }
    None
}

/// Writes a file, failing loudly with the path and the cause — a fuzz
/// artifact that silently fails to land would hide the repro.
fn write_artifact(path: &Path, bytes: &[u8]) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .unwrap_or_else(|e| panic!("creating artifact dir {}: {e}", parent.display()));
    }
    std::fs::write(path, bytes)
        .unwrap_or_else(|e| panic!("writing artifact {}: {e}", path.display()));
}

fn report_violation(
    out: &Path,
    seed: u64,
    workload: Workload,
    image: &[u8],
    ops: &[CorruptionOp],
    why: &str,
) -> ExitCode {
    // Shrink the op list to a minimal plan that still violates the
    // contract (the predicate re-applies the surviving subset to the
    // pristine image each probe). Sim-level failures are not reproducible
    // by the pure decode predicate, so those plans ship unshrunk.
    let (shrunk, final_why) = if violation(image, ops).is_some() {
        let shrunk = shrink_items(ops, &mut |subset| violation(image, subset).is_some());
        let final_why = violation(image, &shrunk).expect("shrunk plan still violates");
        (shrunk, final_why)
    } else {
        (ops.to_vec(), why.to_string())
    };
    let corrupted = apply(image, &shrunk);
    let trace_path = out.join(format!("violation_seed{seed}.btrc"));
    write_artifact(&trace_path, &corrupted);
    let plan = format!(
        "trace-decoder contract violation\nseed {seed}\nbase image: {} ({} bytes)\n\
         violation: {final_why}\nshrunk plan ({} of {} ops):\n{}",
        workload.name(),
        image.len(),
        shrunk.len(),
        ops.len(),
        shrunk
            .iter()
            .map(|op| format!("  {op:?}\n"))
            .collect::<String>()
    );
    write_artifact(
        &out.join(format!("violation_seed{seed}.txt")),
        plan.as_bytes(),
    );
    eprintln!(
        "FAIL seed {seed} ({}): {final_why}\nshrunk {} -> {} ops; artifact: {}",
        workload.name(),
        ops.len(),
        shrunk.len(),
        trace_path.display()
    );
    ExitCode::FAILURE
}

/// End-to-end lenient replay of a corrupted image through the cell
/// harness: must either complete with an ingest report (quarantine
/// visible in the JSONL stats export) or fail as a contained cell with a
/// loud message — never hang, never take down the process.
fn check_lenient_sim(out: &Path, seed: u64, corrupted: &[u8]) -> Result<(), String> {
    let dir = out.join("sim-scratch").join(format!("seed{seed}"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join("core0.btrc");
    std::fs::write(&path, corrupted).map_err(|e| format!("writing {}: {e}", path.display()))?;
    let trace = TraceWorkload::with_policy(&dir, Policy::Lenient)
        .map_err(|e| format!("opening {}: {e}", dir.display()))?;
    let scale = RunScale {
        instructions_per_core: 1_500,
        warmup_per_core: 500,
        seed,
    };
    let outcome = run_trace_cell(
        &trace,
        PrefetcherKind::NextLine(1),
        scale,
        None,
        TelemetryLevel::Off,
        ThrottleMode::Off,
    );
    let result = match outcome {
        CellOutcome::Ok(result) => result,
        // A capture with zero decodable records has nothing to replay;
        // the designed failure is a loud, contained cell panic.
        CellOutcome::Panicked { message } if message.contains("no decodable records") => {
            std::fs::remove_dir_all(&dir).ok();
            return Ok(());
        }
        CellOutcome::Panicked { message } => {
            return Err(format!("lenient sim cell panicked: {message}"));
        }
        CellOutcome::TimedOut { limit } => {
            return Err(format!("lenient sim timed out after {limit:?}"));
        }
    };
    let ingest = result
        .ingest
        .as_ref()
        .ok_or("lenient sim completed without an ingest report")?;
    // The quarantine tally must survive into the machine-readable export.
    let stats_path = dir.join("stats.jsonl");
    let stats = StatsExport::create(&stats_path)
        .map_err(|e| format!("creating {}: {e}", stats_path.display()))?;
    let key = trace_cell_key(
        scale,
        &trace.key(),
        PrefetcherKind::NextLine(1),
        TelemetryLevel::Off,
        ThrottleMode::Off,
    );
    stats
        .record(&key, &result)
        .map_err(|e| format!("writing {}: {e}", stats_path.display()))?;
    let line = std::fs::read_to_string(&stats_path)
        .map_err(|e| format!("reading back {}: {e}", stats_path.display()))?;
    if !line.contains("\"ingest\"") {
        return Err(format!(
            "stats export dropped the ingest report (quarantined {} records): {line}",
            ingest.quarantined_records
        ));
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let images = base_images();
    let mut strict_clean = 0u64;
    let mut strict_rejected = 0u64;
    let mut sims = 0u64;

    for seed in 0..args.seeds {
        let (workload, image) = &images[(seed % images.len() as u64) as usize];
        let ops = plan_for_seed(seed, image.len() as u64);
        if let Some(why) = violation(image, &ops) {
            return report_violation(&args.out, seed, *workload, image, &ops, &why);
        }
        let corrupted = apply(image, &ops);
        match drain(&corrupted, Policy::Strict) {
            Ok(_) => strict_clean += 1,
            Err(_) => strict_rejected += 1,
        }
        // Every 25th seed: full lenient simulation over the mangled bytes.
        if seed % 25 == 0 {
            sims += 1;
            if let Err(why) = check_lenient_sim(&args.out, seed, &corrupted) {
                return report_violation(&args.out, seed, *workload, image, &ops, &why);
            }
        }
    }

    println!(
        "trace-decoder fuzz clean: {} corrupted images ({} strict-accepted, {} typed \
         rejections), {} end-to-end lenient sims, zero panics",
        args.seeds, strict_clean, strict_rejected, sims
    );
    ExitCode::SUCCESS
}
