//! Deep diagnostic for one workload+prefetcher pair (development tool).

use bingo_bench::{ParallelHarness, PrefetcherKind, RunScale};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let cells = [
        (Workload::Em3d, PrefetcherKind::Ampm),
        (Workload::DataServing, PrefetcherKind::Ampm),
    ];
    for e in harness.evaluate_grid(&cells) {
        let s = &e.result.llc;
        println!("=== {} + {} ===", e.workload, e.kind.name());
        println!(
            "base: misses={} mpki={:.1} ipc={:.2} cycles={}",
            e.baseline.llc.demand_misses,
            e.baseline.llc_mpki(),
            e.baseline.aggregate_ipc(),
            e.baseline.total_cycles
        );
        println!(
            "pf:   misses={} ipc={:.2} cycles={}",
            s.demand_misses,
            e.result.aggregate_ipc(),
            e.result.total_cycles
        );
        println!(
            "      requested={} issued={} dup={} mshr_drop={}",
            s.pf_requested, s.pf_issued, s.pf_dropped_duplicate, s.pf_dropped_mshr
        );
        println!(
            "      useful={} late={} useless={} acc={:.2}",
            s.pf_useful,
            s.pf_late,
            s.pf_useless,
            s.accuracy()
        );
        println!(
            "      cov={:.3} ov={:.3} speedup={:.3}",
            e.coverage.coverage, e.coverage.overprediction, e.speedup
        );
        println!(
            "      hits={} pending_hits={} mshr_stalls={} dram_transfers(base/pf)={}/{}",
            s.demand_hits,
            s.demand_hits_pending,
            s.demand_mshr_stalls,
            e.baseline.dram_transfers,
            e.result.dram_transfers
        );
        println!(
            "      core0: instr={} cycles={} ipc={:.3} disp_stall={} dep_stall={} (base ipc={:.3})",
            e.result.cores[0].instructions,
            e.result.cores[0].cycles,
            e.result.cores[0].ipc(),
            e.result.cores[0].dispatch_stall_cycles,
            e.result.cores[0].dependency_stall_cycles,
            e.baseline.cores[0].ipc()
        );
        if !e.result.prefetcher_debug[0].is_empty() {
            println!("      pf[0]: {}", e.result.prefetcher_debug[0]);
        }
        for (i, (a, b)) in e.result.cores.iter().zip(&e.baseline.cores).enumerate() {
            println!(
                "      core{i}: ipc {:.3} -> {:.3} ({:+.1}%)",
                b.ipc(),
                a.ipc(),
                (a.ipc() / b.ipc() - 1.0) * 100.0
            );
        }
    }
}
