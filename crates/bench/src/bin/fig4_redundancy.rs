//! Figure 4 — redundancy in the metadata of a naive two-table TAGE-like
//! spatial prefetcher: the fraction of lookups for which the long
//! (`PC+Address`) and short (`PC+Offset`) tables offer an *identical*
//! prediction. High redundancy is what justifies Bingo's unified table.
//!
//! The paper reports redundancy from 26% (SAT Solver) to 93% (Mix 2).

use bingo_bench::{mean, pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let cells: Vec<(Workload, PrefetcherKind)> = Workload::ALL
        .iter()
        .map(|&w| (w, PrefetcherKind::MultiEvent(2)))
        .collect();
    let mut report = harness.try_evaluate_grid(&cells);
    // A renamed counter must fail the figure by name, not plot as zero.
    report.require_metrics(&["lookups", "dual_identical", "dual_both_matched"]);
    let evals = report.into_complete();
    let mut t = Table::new(vec!["Workload", "Redundancy", "Both-matched"]);
    let mut all = Vec::new();
    for e in &evals {
        let lookups = e.result.metric_sum("lookups").expect("required above");
        let identical = e
            .result
            .metric_sum("dual_identical")
            .expect("required above");
        let both = e
            .result
            .metric_sum("dual_both_matched")
            .expect("required above");
        let redundancy = if lookups > 0.0 {
            identical / lookups
        } else {
            0.0
        };
        let both_frac = if lookups > 0.0 { both / lookups } else { 0.0 };
        all.push(redundancy);
        t.row(vec![
            e.workload.name().to_string(),
            pct(redundancy),
            pct(both_frac),
        ]);
    }
    t.row(vec!["Average".to_string(), pct(mean(&all)), String::new()]);
    t.write_csv_if_requested("fig4_redundancy");
    println!(
        "Figure 4. Redundancy of naive two-table TAGE metadata: fraction of\n\
         lookups where long and short events predict identically\n\
         (paper: 26%–93%).\n\n{t}"
    );
}
