//! Workload spatial-structure profile (validation tool, not a paper
//! figure): measures, per workload, the footprint density and the
//! match-probability / footprint-similarity of each event heuristic —
//! the raw material behind Figs. 2–4 — directly from the access stream,
//! with no prefetcher or timing model involved.

use bingo::{EventKind, SpatialProfiler};
use bingo_bench::{default_jobs, parallel_map, pct, RunScale, Table};
use bingo_sim::Instr;
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let accesses_per_workload = (scale.instructions_per_core / 20).max(10_000);

    // Each workload profiles independently; fan them out.
    let rows = parallel_map(default_jobs(), Workload::ALL.len(), |wi| {
        let w = Workload::ALL[wi];
        let mut profiler = SpatialProfiler::new(32, 64);
        let mut sources = w.sources(1, scale.seed);
        let src = sources[0].as_mut();
        let mut seen = 0;
        while seen < accesses_per_workload {
            match src.next_instr() {
                Instr::Load { pc, addr, .. } | Instr::Store { pc, addr } => {
                    profiler.observe_parts(pc.raw(), addr.block().index());
                    seen += 1;
                }
                Instr::Op => {}
            }
        }
        let r = profiler.finish();
        let row = |k: EventKind| -> (String, String) {
            let e = r.event(k);
            (pct(e.match_probability()), pct(e.mean_similarity()))
        };
        let (pa_m, pa_s) = row(EventKind::PcAddress);
        let (po_m, po_s) = row(EventKind::PcOffset);
        let (of_m, of_s) = row(EventKind::Offset);
        eprintln!("done {w}");
        vec![
            w.name().to_string(),
            pct(r.mean_density()),
            pa_m,
            pa_s,
            po_m,
            po_s,
            of_m,
            of_s,
        ]
    });

    let mut t = Table::new(vec![
        "Workload",
        "Density",
        "P(match) PC+Addr",
        "Sim PC+Addr",
        "P(match) PC+Off",
        "Sim PC+Off",
        "P(match) Offset",
        "Sim Offset",
    ]);
    for row in rows {
        t.row(row);
    }
    println!(
        "Workload spatial-structure profile ({} accesses per workload).\n\
         'P(match)': trigger-event recurrence; 'Sim': mean footprint\n\
         similarity on recurrence (accuracy upper bound for that event).\n\n{t}",
        accesses_per_workload
    );
}
