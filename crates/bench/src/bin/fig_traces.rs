//! Corpus-driven replay figure: every headline prefetcher replayed on
//! *recorded* instruction streams instead of the live generators.
//!
//! ```text
//! fig_traces [--traces DIR] [--workload NAME]... [--quick]
//! ```
//!
//! Missing captures are recorded on the fly into `DIR` (default
//! `target/traces/`, the `trace_capture` tool's default) at the current
//! [`RunScale`], then the (trace × prefetcher) grid runs through
//! [`ParallelHarness::evaluate_trace_grid`] with per-trace no-prefetcher
//! baselines. Because capture and replay are bit-for-bit (see the
//! `trace_capture --verify` round trip), the numbers here match the
//! generator-driven Fig. 7/8 sweeps at the same scale — what the figure
//! *adds* is the ingestion evidence: every row reports how many records
//! the loader delivered and how many it quarantined, which must be zero
//! for a pristine corpus.

use std::path::PathBuf;

use bingo_bench::{
    geometric_mean, pct, trace_chunk_from_env, ParallelHarness, PrefetcherKind, RunScale, Table,
};
use bingo_sim::SystemConfig;
use bingo_trace::DEFAULT_CHUNK_RECORDS;
use bingo_workloads::{capture_workload, TraceWorkload, Workload};

/// Fetch-ahead slack appended to each capture (see `trace_capture`).
const CAPTURE_SLACK: u64 = 256;

fn parse_workloads(args: &[String]) -> Vec<Workload> {
    let mut picked = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--workload" {
            let name = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--workload requires a name"));
            let canon = |s: &str| s.replace([' ', '-'], "").to_ascii_lowercase();
            let w = *Workload::ALL
                .iter()
                .find(|w| canon(w.slug()) == canon(name) || canon(w.name()) == canon(name))
                .unwrap_or_else(|| {
                    let slugs: Vec<&str> = Workload::ALL.iter().map(|w| w.slug()).collect();
                    panic!("unknown workload {name:?}; valid slugs: {slugs:?}")
                });
            if !picked.contains(&w) {
                picked.push(w);
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    if picked.is_empty() {
        Workload::ALL.to_vec()
    } else {
        picked
    }
}

fn parse_traces_dir(args: &[String]) -> PathBuf {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--traces" {
            return PathBuf::from(
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("--traces requires a directory")),
            );
        }
        i += 1;
    }
    PathBuf::from("target/traces")
}

fn main() {
    let scale = RunScale::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads = parse_workloads(&args);
    let root = parse_traces_dir(&args);
    let cores = SystemConfig::paper().cores;
    let records = scale.warmup_per_core + scale.instructions_per_core + CAPTURE_SLACK;
    let chunk = trace_chunk_from_env().unwrap_or(DEFAULT_CHUNK_RECORDS);

    let traces: Vec<TraceWorkload> = workloads
        .iter()
        .map(|&w| {
            let dir = root.join(w.slug());
            if TraceWorkload::open(&dir).is_err() {
                eprintln!("[capture] recording {} -> {}", w.name(), dir.display());
                capture_workload(w, cores, scale.seed, records, chunk, &dir).unwrap_or_else(|e| {
                    panic!("capture of {} into {} failed: {e}", w.name(), dir.display())
                });
            }
            TraceWorkload::open(&dir)
                .unwrap_or_else(|e| panic!("opening capture {}: {e}", dir.display()))
        })
        .collect();

    let mut harness = ParallelHarness::new(scale);
    let evals = harness.evaluate_trace_grid(&traces, &PrefetcherKind::HEADLINE);

    let mut t = Table::new(vec![
        "Trace",
        "Prefetcher",
        "Coverage",
        "Overpred",
        "Speedup",
        "Delivered",
        "Quarantined",
    ]);
    let mut speedups_by_kind: Vec<(String, Vec<f64>)> = PrefetcherKind::HEADLINE
        .iter()
        .map(|k| (k.name(), Vec::new()))
        .collect();
    let mut quarantined_total = 0u64;
    for (idx, e) in evals.iter().enumerate() {
        let ingest = e
            .result
            .ingest
            .as_ref()
            .expect("trace replays attach an ingest report");
        quarantined_total += ingest.quarantined_records;
        t.row(vec![
            e.trace.clone(),
            e.kind.name(),
            pct(e.coverage.coverage),
            pct(e.coverage.overprediction),
            format!("{:.3}x", e.speedup),
            ingest.delivered_records.to_string(),
            ingest.quarantined_records.to_string(),
        ]);
        speedups_by_kind[idx % PrefetcherKind::HEADLINE.len()]
            .1
            .push(e.speedup);
    }
    for (name, vals) in &speedups_by_kind {
        t.row(vec![
            "Geomean".to_string(),
            name.clone(),
            String::new(),
            String::new(),
            format!("{:.3}x", geometric_mean(vals)),
            String::new(),
            String::new(),
        ]);
    }

    t.write_csv_if_requested("fig_traces");
    println!(
        "Recorded-trace replay: headline prefetchers on the captured\n\
         corpus under {} (streamed chunk-at-a-time; quarantined must be 0\n\
         for a pristine corpus).\n\n{t}",
        root.display()
    );
    assert_eq!(
        quarantined_total, 0,
        "pristine corpus reported quarantined records — the capture or the loader is corrupt"
    );
}
