//! Figure 6 — Bingo's miss coverage as a function of history-table entries
//! (1K to 64K), per workload. The paper picks 16K entries as the knee.

use bingo_bench::{pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

const SIZES: [usize; 7] = [1024, 2048, 4096, 8192, 16384, 32768, 65536];

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let kinds: Vec<PrefetcherKind> = SIZES
        .into_iter()
        .map(PrefetcherKind::BingoEntries)
        .collect();
    let evals = harness.evaluate_all(&Workload::ALL, &kinds);
    let mut header = vec!["Workload".to_string()];
    header.extend(SIZES.iter().map(|s| format!("{}K", s / 1024)));
    let mut t = Table::new(header);
    for (i, w) in Workload::ALL.into_iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        for j in 0..kinds.len() {
            row.push(pct(evals[i * kinds.len() + j].coverage.coverage));
        }
        t.row(row);
    }
    t.write_csv_if_requested("fig6_table_size");
    println!(
        "Figure 6. Bingo miss coverage vs. history-table entries\n\
         (paper: coverage plateaus beyond 16K entries).\n\n{t}"
    );
}
