//! Figure 6 — Bingo's miss coverage as a function of history-table entries
//! (1K to 64K), per workload. The paper picks 16K entries as the knee.

use bingo_bench::{pct, Harness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

const SIZES: [usize; 7] = [1024, 2048, 4096, 8192, 16384, 32768, 65536];

fn main() {
    let scale = RunScale::from_args();
    let mut harness = Harness::new(scale);
    let mut header = vec!["Workload".to_string()];
    header.extend(SIZES.iter().map(|s| format!("{}K", s / 1024)));
    let mut t = Table::new(header);
    for w in Workload::ALL {
        let mut row = vec![w.name().to_string()];
        for &entries in &SIZES {
            let e = harness.evaluate(w, PrefetcherKind::BingoEntries(entries));
            row.push(pct(e.coverage.coverage));
        }
        t.row(row);
        eprintln!("done {w}");
    }
    t.write_csv_if_requested("fig6_table_size");
    println!(
        "Figure 6. Bingo miss coverage vs. history-table entries\n\
         (paper: coverage plateaus beyond 16K entries).\n\n{t}"
    );
}
