//! Ablation — Bingo's end-of-residency training signal.
//!
//! The paper (following SMS) ends a region's residency — and trains the
//! history table — "whenever a block from the page is invalidated or
//! evicted from the cache". The alternative is to train only when the
//! accumulation table overflows (no cache feedback at all). This ablation
//! quantifies how much the eviction signal matters.
//!
//! The non-paper variant is not expressible as a [`PrefetcherKind`], so
//! the study fans its cells out with [`parallel_map`] directly.

use bingo::{Bingo, BingoConfig};
use bingo_bench::{default_jobs, geometric_mean, mean, parallel_map, pct, RunScale, Table};
use bingo_sim::{CoverageReport, NoPrefetcher, Prefetcher, System, SystemConfig};
use bingo_workloads::Workload;

fn run(w: Workload, pf: Option<BingoConfig>, scale: RunScale) -> bingo_sim::SimResult {
    let cfg = SystemConfig::paper();
    System::with_prefetchers(
        cfg,
        w.sources(cfg.cores, scale.seed),
        |_| match pf {
            Some(c) => Box::new(Bingo::new(c)) as Box<dyn Prefetcher>,
            None => Box::new(NoPrefetcher),
        },
        scale.instructions_per_core,
    )
    .with_warmup(scale.warmup_per_core)
    .run()
}

fn main() {
    let scale = RunScale::from_args();
    let variants = [
        ("eviction + overflow (paper)", BingoConfig::paper()),
        (
            "overflow only",
            BingoConfig {
                train_on_eviction: false,
                ..BingoConfig::paper()
            },
        ),
    ];
    // Cell list: first the per-workload baselines, then (variant, workload)
    // in variant-major order.
    let mut cells: Vec<(Option<BingoConfig>, Workload)> =
        Workload::ALL.iter().map(|&w| (None, w)).collect();
    for (_, cfg) in variants {
        cells.extend(Workload::ALL.iter().map(|&w| (Some(cfg), w)));
    }
    let results = parallel_map(default_jobs(), cells.len(), |i| {
        let (cfg, w) = cells[i];
        let r = run(w, cfg, scale);
        eprintln!(
            "done {w} ({})",
            if cfg.is_some() { "bingo" } else { "baseline" }
        );
        r
    });
    let n_workloads = Workload::ALL.len();
    let baselines = &results[..n_workloads];
    let mut t = Table::new(vec![
        "Training signal",
        "Perf gmean",
        "Coverage",
        "Overprediction",
    ]);
    for (vi, (name, _)) in variants.into_iter().enumerate() {
        let chunk = &results[(vi + 1) * n_workloads..(vi + 2) * n_workloads];
        let mut speedups = Vec::new();
        let mut covs = Vec::new();
        let mut ovs = Vec::new();
        for (r, base) in chunk.iter().zip(baselines) {
            let c = CoverageReport::from_runs(r, base);
            speedups.push(r.speedup_over(base));
            covs.push(c.coverage);
            ovs.push(c.overprediction);
        }
        t.row(vec![
            name.to_string(),
            pct(geometric_mean(&speedups) - 1.0),
            pct(mean(&covs)),
            pct(mean(&ovs)),
        ]);
    }
    println!("Ablation: Bingo end-of-residency training signal.\n\n{t}");
}
