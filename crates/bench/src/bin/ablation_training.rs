//! Ablation — Bingo's end-of-residency training signal.
//!
//! The paper (following SMS) ends a region's residency — and trains the
//! history table — "whenever a block from the page is invalidated or
//! evicted from the cache". The alternative is to train only when the
//! accumulation table overflows (no cache feedback at all). This ablation
//! quantifies how much the eviction signal matters.

use bingo::{Bingo, BingoConfig};
use bingo_bench::{geometric_mean, mean, pct, RunScale, Table};
use bingo_sim::{CoverageReport, NoPrefetcher, Prefetcher, System, SystemConfig};
use bingo_workloads::Workload;

fn run(w: Workload, pf: Option<BingoConfig>, scale: RunScale) -> bingo_sim::SimResult {
    let cfg = SystemConfig::paper();
    System::with_prefetchers(
        cfg,
        w.sources(cfg.cores, scale.seed),
        |_| match pf {
            Some(c) => Box::new(Bingo::new(c)) as Box<dyn Prefetcher>,
            None => Box::new(NoPrefetcher),
        },
        scale.instructions_per_core,
    )
    .with_warmup(scale.warmup_per_core)
    .run()
}

fn main() {
    let scale = RunScale::from_args();
    let variants = [
        ("eviction + overflow (paper)", BingoConfig::paper()),
        (
            "overflow only",
            BingoConfig {
                train_on_eviction: false,
                ..BingoConfig::paper()
            },
        ),
    ];
    let baselines: Vec<_> = Workload::ALL
        .iter()
        .map(|&w| {
            eprintln!("baseline {w}");
            run(w, None, scale)
        })
        .collect();
    let mut t = Table::new(vec!["Training signal", "Perf gmean", "Coverage", "Overprediction"]);
    for (name, cfg) in variants {
        let mut speedups = Vec::new();
        let mut covs = Vec::new();
        let mut ovs = Vec::new();
        for (i, &w) in Workload::ALL.iter().enumerate() {
            let r = run(w, Some(cfg), scale);
            let c = CoverageReport::from_runs(&r, &baselines[i]);
            speedups.push(r.speedup_over(&baselines[i]));
            covs.push(c.coverage);
            ovs.push(c.overprediction);
            eprintln!("done {w} / {name}");
        }
        t.row(vec![
            name.to_string(),
            pct(geometric_mean(&speedups) - 1.0),
            pct(mean(&covs)),
            pct(mean(&ovs)),
        ]);
    }
    println!("Ablation: Bingo end-of-residency training signal.\n\n{t}");
}
