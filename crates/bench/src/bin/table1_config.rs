//! Table I — evaluation parameters — plus the Bingo storage accounting of
//! Section VI-A (16 K entries → 119 KB, ~6 % of the LLC).

use bingo::BingoConfig;
use bingo_bench::Table;
use bingo_sim::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper();
    let mut t = Table::new(vec!["Parameter", "Value"]);
    t.row(vec![
        "Chip".to_string(),
        format!("{} GHz, {} cores", cfg.freq_ghz, cfg.cores),
    ]);
    t.row(vec![
        "Cores".to_string(),
        format!(
            "{}-wide OoO, {}-entry ROB, {}-entry LSQ",
            cfg.core.width, cfg.core.rob_entries, cfg.core.lsq_entries
        ),
    ]);
    t.row(vec![
        "L1-D".to_string(),
        format!(
            "{} KB, {}-way, {}-entry MSHR, {}-cycle",
            cfg.l1d.size_bytes / 1024,
            cfg.l1d.ways,
            cfg.l1d.mshrs,
            cfg.l1d.latency
        ),
    ]);
    t.row(vec![
        "LLC".to_string(),
        format!(
            "{} MB, {}-way, {} banks, {}-cycle hit latency",
            cfg.llc.size_bytes / 1024 / 1024,
            cfg.llc.ways,
            cfg.llc.banks,
            cfg.llc.latency
        ),
    ]);
    t.row(vec![
        "Main Memory".to_string(),
        format!(
            "{:.0} ns zero-load latency, {:.1} GB/s peak bandwidth",
            cfg.dram_zero_load_ns(),
            cfg.dram.peak_bandwidth_gbps(cfg.freq_ghz)
        ),
    ]);
    t.row(vec![
        "Spatial region".to_string(),
        format!(
            "{} B ({} blocks)",
            cfg.region.region_bytes(),
            cfg.region.blocks_per_region()
        ),
    ]);
    println!("Table I. Evaluation parameters.\n\n{t}");

    // Storage is a pure function of the configuration — no need to build
    // the prefetcher to account for it.
    let bingo = BingoConfig::paper();
    let kb = bingo.storage_bits() as f64 / 8.0 / 1024.0;
    let llc_pct = bingo.storage_bits() as f64 / 8.0 / cfg.llc.size_bytes as f64 * 100.0;
    println!(
        "Bingo storage (Section VI-A): {} history entries, {:.0} KB total ({:.1}% of LLC capacity; paper: 119 KB, 6%).",
        bingo.history_entries,
        kb,
        llc_pct
    );
}
