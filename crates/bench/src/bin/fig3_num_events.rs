//! Figure 3 — coverage and accuracy of a TAGE-like spatial prefetcher as
//! the number of events grows from 1 (`PC+Address` only) to 5 (all events
//! down to bare `Offset`), averaged across all applications.
//!
//! The paper's takeaway: the step from one to two events is large, and
//! returns diminish beyond two — which is why Bingo uses exactly two.

use bingo_bench::{mean, pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let kinds: Vec<PrefetcherKind> = (1..=5).map(PrefetcherKind::MultiEvent).collect();
    let evals = harness.evaluate_all(&Workload::ALL, &kinds);
    let mut t = Table::new(vec!["Events", "Coverage", "Accuracy"]);
    for (j, n) in (1..=5).enumerate() {
        let mut covs = Vec::new();
        let mut accs = Vec::new();
        for i in 0..Workload::ALL.len() {
            let e = &evals[i * kinds.len() + j];
            covs.push(e.coverage.coverage);
            accs.push(e.coverage.accuracy);
        }
        t.row(vec![n.to_string(), pct(mean(&covs)), pct(mean(&accs))]);
    }
    t.write_csv_if_requested("fig3_num_events");
    println!(
        "Figure 3. Coverage and accuracy vs. number of events in a\n\
         TAGE-like spatial prefetcher (paper: the 1→2 step dominates).\n\n{t}"
    );
}
