//! Figure 3 — coverage and accuracy of a TAGE-like spatial prefetcher as
//! the number of events grows from 1 (`PC+Address` only) to 5 (all events
//! down to bare `Offset`), averaged across all applications.
//!
//! The paper's takeaway: the step from one to two events is large, and
//! returns diminish beyond two — which is why Bingo uses exactly two.

use bingo_bench::{mean, pct, Harness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = Harness::new(scale);
    let mut t = Table::new(vec!["Events", "Coverage", "Accuracy"]);
    for n in 1..=5 {
        let mut covs = Vec::new();
        let mut accs = Vec::new();
        for w in Workload::ALL {
            let e = harness.evaluate(w, PrefetcherKind::MultiEvent(n));
            covs.push(e.coverage.coverage);
            accs.push(e.coverage.accuracy);
            eprintln!("done {w} / {n} events");
        }
        t.row(vec![n.to_string(), pct(mean(&covs)), pct(mean(&accs))]);
    }
    t.write_csv_if_requested("fig3_num_events");
    println!(
        "Figure 3. Coverage and accuracy vs. number of events in a\n\
         TAGE-like spatial prefetcher (paper: the 1→2 step dominates).\n\n{t}"
    );
}
