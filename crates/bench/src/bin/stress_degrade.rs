//! Graceful-degradation stress test: adversarial workloads under memory
//! resource pressure.
//!
//! Sweeps the [`Workload::STRESS`] family — traffic engineered so that an
//! aggressive prefetcher *hurts* — across pressure levels that tighten
//! DRAM bandwidth and bound the prefetch queue, comparing three
//! configurations per cell:
//!
//! * **off** — no prefetcher (the safety baseline),
//! * **unthrottled** — Bingo with `BINGO_THROTTLE=off`,
//! * **feedback** — Bingo with the closed-loop chip-wide throttle,
//! * **percore** — Bingo with per-core controllers and the starvation
//!   watchdog (`BINGO_THROTTLE=percore`).
//!
//! The acceptance criterion, asserted at the end of the sweep:
//!
//! 1. feedback-throttled *and* percore-throttled Bingo each stay within
//!    5% of the prefetcher-off IPC on *every* (pressure, workload) cell,
//!    and
//! 2. unthrottled Bingo loses more than 5% on at least one cell —
//!    otherwise the stress family is not adversarial enough to prove
//!    anything about graceful degradation.
//!
//! `BINGO_PF_QUEUE` overrides every pressure level's prefetch-queue depth;
//! `BINGO_STATS` exports each cell's full `SimResult` as JSON lines.

use bingo_bench::{
    default_jobs, f2, parallel_map, pf_queue_from_env, PrefetcherKind, Pressure, RunScale,
    StatsExport, Table,
};
use bingo_sim::{SimResult, System, SystemConfig, ThrottleMode};
use bingo_workloads::Workload;

/// Half the paper's bandwidth, then roughly a quarter (the shared
/// [`Pressure`] presets the multi-core capacity search also uses). The
/// queue bound tightens alongside so both drop paths (bandwidth
/// contention and queue-full) carry load.
const PRESSURES: [Pressure; 2] = [Pressure::CONSTRAINED, Pressure::SCARCE];

/// The four configurations compared in every cell.
const CONFIGS: [(&str, PrefetcherKind, ThrottleMode); 4] = [
    ("off", PrefetcherKind::None, ThrottleMode::Off),
    ("unthrottled", PrefetcherKind::Bingo, ThrottleMode::Off),
    ("feedback", PrefetcherKind::Bingo, ThrottleMode::Feedback),
    ("percore", PrefetcherKind::Bingo, ThrottleMode::Percore),
];

/// Tolerated IPC loss versus the prefetcher-off baseline.
const TOLERANCE: f64 = 0.05;

fn run_cell(
    pressure: &Pressure,
    workload: Workload,
    kind: PrefetcherKind,
    throttle: ThrottleMode,
    scale: RunScale,
) -> SimResult {
    let mut cfg = SystemConfig::paper();
    // Two cores keep the sweep fast; with a single channel at reduced
    // bandwidth they contend plenty.
    cfg.cores = 2;
    pressure.apply(&mut cfg);
    if let Some(depth) = pf_queue_from_env() {
        cfg.prefetch_queue_depth = Some(depth);
    }
    let sources = workload.sources(cfg.cores, scale.seed);
    System::with_prefetchers(cfg, sources, |_| kind.build(), scale.instructions_per_core)
        .with_warmup(scale.warmup_per_core)
        .with_throttle(throttle)
        .run()
}

fn main() {
    let scale = RunScale::from_args();
    let stats = StatsExport::from_env();
    let cells: Vec<(usize, Workload, usize)> = PRESSURES
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| {
            Workload::STRESS
                .into_iter()
                .flat_map(move |w| (0..CONFIGS.len()).map(move |ci| (pi, w, ci)))
        })
        .collect();
    let results = parallel_map(default_jobs(), cells.len(), |i| {
        let (pi, workload, ci) = cells[i];
        let (_, kind, throttle) = CONFIGS[ci];
        run_cell(&PRESSURES[pi], workload, kind, throttle, scale)
    });
    if let Some(export) = &stats {
        for (i, r) in results.iter().enumerate() {
            let (pi, workload, ci) = cells[i];
            let key = format!(
                "stress/{}/{}/{}",
                PRESSURES[pi].name,
                workload.name(),
                CONFIGS[ci].0
            );
            export
                .record(&key, r)
                .unwrap_or_else(|e| panic!("stats export failed: {e}"));
        }
    }

    let mut t = Table::new(vec![
        "Pressure",
        "Workload",
        "Off IPC",
        "Unthrottled",
        "Feedback",
        "Percore",
    ]);
    // Speedup of each Bingo configuration over the prefetcher-off run of
    // the same cell; < 1.0 means the prefetcher made things worse.
    let mut throttled_violations: Vec<String> = Vec::new();
    let mut worst_unthrottled = (f64::INFINITY, String::new());
    for (pi, p) in PRESSURES.iter().enumerate() {
        for (wi, w) in Workload::STRESS.into_iter().enumerate() {
            let base = (pi * Workload::STRESS.len() + wi) * CONFIGS.len();
            let off = &results[base];
            let unthrottled = results[base + 1].speedup_over(off);
            let feedback = results[base + 2].speedup_over(off);
            let percore = results[base + 3].speedup_over(off);
            let cell = format!("{}/{}", p.name, w.name());
            if unthrottled < worst_unthrottled.0 {
                worst_unthrottled = (unthrottled, cell.clone());
            }
            if feedback < 1.0 - TOLERANCE {
                throttled_violations.push(format!("{cell} (feedback): {feedback:.3}x"));
            }
            if percore < 1.0 - TOLERANCE {
                throttled_violations.push(format!("{cell} (percore): {percore:.3}x"));
            }
            t.row(vec![
                p.name.into(),
                w.name().into(),
                f2(off.aggregate_ipc()),
                format!("{}x", f2(unthrottled)),
                format!("{}x", f2(feedback)),
                format!("{}x", f2(percore)),
            ]);
        }
    }
    t.write_csv_if_requested("stress_degrade");
    println!(
        "Graceful degradation under resource pressure\n\
         (speedup over the no-prefetcher baseline; 1.00x = harmless).\n\n{t}"
    );
    println!(
        "Worst unthrottled cell: {} at {:.3}x",
        worst_unthrottled.1, worst_unthrottled.0
    );

    assert!(
        throttled_violations.is_empty(),
        "throttling failed to degrade gracefully — cells more than \
         {:.0}% below the prefetcher-off baseline: {}",
        TOLERANCE * 100.0,
        throttled_violations.join(", ")
    );
    assert!(
        worst_unthrottled.0 < 1.0 - TOLERANCE,
        "no adversarial cell hurt the unthrottled prefetcher by more than \
         {:.0}% (worst: {} at {:.3}x) — the stress family is not stressing",
        TOLERANCE * 100.0,
        worst_unthrottled.1,
        worst_unthrottled.0
    );
    println!(
        "\nPASS: feedback and percore throttling stayed within {:.0}% of \
         prefetcher-off everywhere; unthrottled lost {:.1}% on {}.",
        TOLERANCE * 100.0,
        (1.0 - worst_unthrottled.0) * 100.0,
        worst_unthrottled.1
    );
}
