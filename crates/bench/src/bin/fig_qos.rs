//! Per-core QoS throttling figure: the starvation experiment of
//! `fig_multicore`, re-run with the per-core controllers and the
//! starvation watchdog in the comparison, plus a chaos-hardening cell.
//!
//! ```text
//! fig_qos [--config FILE] [--report FILE] [--quick]
//! ```
//!
//! Three throttle arms run on the `polite-vs-storm` mix at 2 cores under
//! `constrained` memory pressure: `off` (no throttle), `feedback` (PR 8's
//! chip-wide controller, which clamps the polite core alongside the
//! storm), and `percore` (one controller per core plus the chip-level
//! starvation watchdog). The figure's claim: `percore` keeps the polite
//! core within 1 % of its unthrottled IPC while the aggregate IPC stays
//! at or above the chip-wide feedback arm's.
//!
//! The chaos cell replays the same mix under the standard perturbation
//! schedule ([`bingo_sim::ChaosPlan::standard`], seeded by
//! `BINGO_CHAOS_SEED`) with the per-core throttle on, against a
//! prefetcher-throttle-off run under the *same* chaos, reporting the
//! bounded-slowdown ratio the property suite asserts.
//!
//! Knobs: `BINGO_QOS_SLO` overrides the watchdog's starvation SLO;
//! `BINGO_CHAOS_SEED` reseeds the chaos schedule; `BINGO_CHAOS=off`
//! skips the chaos cell entirely. The structured report
//! (one JSON line per experiment) lands in `--report` (default
//! `target/fig_qos_report.json`; CI uploads it as an artifact).

use std::path::PathBuf;

use bingo_bench::{f2, run_mix_qos, MixConfig, Pressure, RunScale, Table};
use bingo_sim::{ChaosInjector, ChaosPlan, SimResult, ThrottleMode};

/// The mix every arm runs: one streaming core behind Bingo, one
/// stress-storm core whose prefetches are mostly waste.
const QOS_MIX: &str = "polite-vs-storm";

/// The value of the last `--flag value` occurrence, if any.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} requires a value"));
            value = Some(v.clone());
            i += 2;
        } else {
            i += 1;
        }
    }
    value
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::from_args();
    let config = flag_value(&args, "--config")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("configs/mixes/contention.mix"));
    let report_path = flag_value(&args, "--report")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/fig_qos_report.json"));

    let mixes =
        MixConfig::parse_file(&config).unwrap_or_else(|e| panic!("{}: {e}", config.display()));
    let mix = mixes
        .iter()
        .find(|m| m.name == QOS_MIX)
        .unwrap_or_else(|| panic!("{} does not declare mix {QOS_MIX:?}", config.display()));
    let pressure = Pressure::CONSTRAINED;
    let qos_slo = bingo_bench::qos_slo_from_env();
    let chaos_seed = bingo_bench::chaos_seed_from_env();

    let run = |throttle: ThrottleMode, chaos: Option<ChaosInjector>| -> SimResult {
        run_mix_qos(mix, 2, &pressure, scale, None, throttle, qos_slo, chaos)
            .unwrap_or_else(|e| panic!("qos cell aborted: {e}"))
    };

    // Calm arms: the starvation comparison.
    let off = run(ThrottleMode::Off, None);
    let feedback = run(ThrottleMode::Feedback, None);
    let percore = run(ThrottleMode::Percore, None);

    // "Aggregate" follows the mix-fairness convention (and PR 8's
    // published starvation verdict): the sum of per-core IPCs.
    let sum_ipc = |r: &SimResult| -> f64 { r.core_ipcs().iter().sum() };
    let polite = [
        off.core_ipcs()[0],
        feedback.core_ipcs()[0],
        percore.core_ipcs()[0],
    ];
    let storm = [
        off.core_ipcs()[1],
        feedback.core_ipcs()[1],
        percore.core_ipcs()[1],
    ];
    let aggregate = [sum_ipc(&off), sum_ipc(&feedback), sum_ipc(&percore)];
    let polite_ratio_feedback = polite[1] / polite[0];
    let polite_ratio_percore = polite[2] / polite[0];

    println!(
        "Per-core QoS throttling: {} @ 2 cores, {} pressure",
        mix.name, pressure.name
    );
    println!("(feedback = PR 8's chip-wide controller; percore = one controller");
    println!("per core plus the starvation watchdog)\n");
    let mut t = Table::new(vec![
        "Throttle",
        "Polite IPC",
        "Polite ratio",
        "Storm IPC",
        "Agg IPC",
    ]);
    for (i, name) in ["off", "feedback", "percore"].iter().enumerate() {
        t.row(vec![
            (*name).to_string(),
            f2(polite[i]),
            f2(polite[i] / polite[0]),
            f2(storm[i]),
            f2(aggregate[i]),
        ]);
    }
    println!("{}", t.render());

    let verdict = if polite_ratio_percore >= 0.99 && aggregate[2] >= aggregate[1] {
        "percore recovers the polite core (>=99% of unthrottled) without losing aggregate IPC"
    } else if polite_ratio_percore > polite_ratio_feedback {
        "percore improves on the chip-wide throttle but misses the 1% target at this scale"
    } else {
        "percore does not improve on the chip-wide throttle at this scale"
    };
    println!("=> {verdict}\n");

    let qos = percore
        .qos
        .as_ref()
        .expect("percore runs attach a QoS report");
    println!(
        "watchdog: {} epochs, {} starved, {} clamps, {} exemptions",
        qos.watchdog_epochs,
        qos.watchdog_starved_epochs,
        qos.watchdog_clamps,
        qos.watchdog_exempted
    );

    // Chaos cell: same mix, standard perturbation schedule, percore
    // throttle versus throttle-off under identical chaos. Part of the
    // committed figure, so it runs unless `BINGO_CHAOS=off` skips it.
    let chaos_cell = if bingo_bench::chaos_from_env() {
        let chaos_off = run(
            ThrottleMode::Off,
            Some(ChaosInjector::new(ChaosPlan::standard(chaos_seed))),
        );
        let chaos_percore = run(
            ThrottleMode::Percore,
            Some(ChaosInjector::new(ChaosPlan::standard(chaos_seed))),
        );
        let chaos_polite_ratio = chaos_percore.core_ipcs()[0] / chaos_off.core_ipcs()[0];
        println!("\nChaos cell (standard schedule, seed {chaos_seed:#x}):");
        let mut t = Table::new(vec!["Throttle", "Polite IPC", "Storm IPC", "Agg IPC"]);
        t.row(vec![
            "off".to_string(),
            f2(chaos_off.core_ipcs()[0]),
            f2(chaos_off.core_ipcs()[1]),
            f2(sum_ipc(&chaos_off)),
        ]);
        t.row(vec![
            "percore".to_string(),
            f2(chaos_percore.core_ipcs()[0]),
            f2(chaos_percore.core_ipcs()[1]),
            f2(sum_ipc(&chaos_percore)),
        ]);
        println!("{}", t.render());
        Some((chaos_off, chaos_percore, chaos_polite_ratio))
    } else {
        println!("\nChaos cell skipped (BINGO_CHAOS=off)");
        None
    };

    let mut report_lines = vec![format!(
        "{{\"qos\":{{\"mix\":\"{}\",\"pressure\":\"{}\",\"cores\":2,\
             \"polite_ipc\":[{:.6},{:.6},{:.6}],\"storm_ipc\":[{:.6},{:.6},{:.6}],\
             \"aggregate_ipc\":[{:.6},{:.6},{:.6}],\
             \"polite_ratio_feedback\":{:.6},\"polite_ratio_percore\":{:.6},\
             \"watchdog\":[{},{},{},{}]}}}}",
        mix.name,
        pressure.name,
        polite[0],
        polite[1],
        polite[2],
        storm[0],
        storm[1],
        storm[2],
        aggregate[0],
        aggregate[1],
        aggregate[2],
        polite_ratio_feedback,
        polite_ratio_percore,
        qos.watchdog_epochs,
        qos.watchdog_starved_epochs,
        qos.watchdog_clamps,
        qos.watchdog_exempted,
    )];
    if let Some((chaos_off, chaos_percore, chaos_polite_ratio)) = &chaos_cell {
        report_lines.push(format!(
            "{{\"qos_chaos\":{{\"mix\":\"{}\",\"seed\":{},\
             \"off_ipc\":[{:.6},{:.6}],\"percore_ipc\":[{:.6},{:.6}],\
             \"polite_ratio\":{:.6}}}}}",
            mix.name,
            chaos_seed,
            chaos_off.core_ipcs()[0],
            chaos_off.core_ipcs()[1],
            chaos_percore.core_ipcs()[0],
            chaos_percore.core_ipcs()[1],
            chaos_polite_ratio,
        ));
    }
    if let Some(parent) = report_path.parent() {
        std::fs::create_dir_all(parent)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
    }
    std::fs::write(&report_path, report_lines.join("\n") + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", report_path.display()));
    eprintln!(
        "[fig_qos] report: {} line(s) -> {}",
        report_lines.len(),
        report_path.display()
    );
}
