//! Figure 2 — accuracy and match probability of the five event heuristics,
//! averaged across all applications.
//!
//! Each event is evaluated as a single-event spatial prefetcher; accuracy
//! is the fraction of completed prefetches used before eviction, and match
//! probability is the fraction of history lookups that found an entry.

use bingo::EventKind;
use bingo_bench::{mean, pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let kinds: Vec<PrefetcherKind> = EventKind::LONGEST_FIRST
        .into_iter()
        .map(PrefetcherKind::SingleEvent)
        .collect();
    let cells: Vec<(Workload, PrefetcherKind)> = Workload::ALL
        .iter()
        .flat_map(|&w| kinds.iter().map(move |&k| (w, k)))
        .collect();
    let mut report = harness.try_evaluate_grid(&cells);
    // A renamed counter must fail the figure by name, not plot as zero.
    report.require_metrics(&["lookups", "matches"]);
    let evals = report.into_complete();
    let mut t = Table::new(vec!["Event", "Accuracy", "Match Probability"]);
    for (j, kind) in EventKind::LONGEST_FIRST.into_iter().enumerate() {
        let mut accs = Vec::new();
        let mut probs = Vec::new();
        for i in 0..Workload::ALL.len() {
            let e = &evals[i * kinds.len() + j];
            accs.push(e.coverage.accuracy);
            let lookups = e.result.metric_sum("lookups").expect("required above");
            let matches = e.result.metric_sum("matches").expect("required above");
            probs.push(if lookups > 0.0 {
                matches / lookups
            } else {
                0.0
            });
        }
        t.row(vec![
            kind.label().to_string(),
            pct(mean(&accs)),
            pct(mean(&probs)),
        ]);
    }
    t.write_csv_if_requested("fig2_events");
    println!(
        "Figure 2. Accuracy and match probability of event heuristics\n\
         (longest event first; paper: accuracy decreases and match\n\
         probability increases as the event shortens).\n\n{t}"
    );
}
