//! Multi-core contention figure: ramped capacity search over declared
//! workload mixes, per-core fairness, and the throttle-starvation
//! experiment.
//!
//! ```text
//! fig_multicore [--config FILE] [--mix NAME]... [--pressure NAME]...
//!               [--report FILE] [--quick]
//! ```
//!
//! Mixes come from a committed config file (default
//! `configs/mixes/contention.mix`; grammar in `bingo_bench::mix`). Each
//! selected mix runs at every core count of its `ramp` directive (or its
//! declared core count when unramped) under every selected memory
//! [`Pressure`] level, through
//! [`ParallelHarness::try_evaluate_mix_grid`] — so mix cells and their
//! per-slot solo runs parallelize, checkpoint (`BINGO_CHECKPOINT`), and
//! export stats (`BINGO_STATS`) like every other sweep. Per (mix,
//! pressure) the ramp becomes a [`CapacitySearch`]: aggregate IPC,
//! min/max IPC fairness, worst per-core slowdown versus solo at each
//! step, plus the capacity knee (the last core count whose added cores
//! still earn ≥ 50 % of the un-contended per-core IPC).
//!
//! The structured report — one JSON line per capacity search plus one
//! for the starvation experiment — lands in `--report` (default
//! `target/fig_multicore_report.json`; CI uploads it as an artifact).
//!
//! The starvation experiment answers PR 5's open question: the feedback
//! throttle is *chip-wide*, so when the storm core's wasted prefetches
//! trip it, the polite core's Bingo instance is clamped too. We run the
//! `polite-vs-storm` mix at 2 cores under the `constrained` pressure
//! level with the throttle off and with feedback, and report the polite
//! core's IPC ratio between the two.

use std::path::PathBuf;

use bingo_bench::{
    f2, CapacityCell, CapacitySearch, MixCell, MixConfig, ParallelHarness, Pressure, RunScale,
    Table,
};
use bingo_sim::{SimResult, TelemetryLevel, ThrottleMode};

/// The mix the starvation experiment runs, when selected.
const STARVATION_MIX: &str = "polite-vs-storm";

/// Values of every `--flag value` occurrence of `flag`.
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut values = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} requires a value"));
            values.push(v.clone());
            i += 2;
        } else {
            i += 1;
        }
    }
    values
}

/// The value of the last `--flag value` occurrence, if any.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    flag_values(args, flag).pop()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = RunScale::from_args();
    let config = flag_value(&args, "--config")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("configs/mixes/contention.mix"));
    let report_path = flag_value(&args, "--report")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/fig_multicore_report.json"));

    let mut mixes =
        MixConfig::parse_file(&config).unwrap_or_else(|e| panic!("{}: {e}", config.display()));
    let picked = flag_values(&args, "--mix");
    if !picked.is_empty() {
        for name in &picked {
            assert!(
                mixes.iter().any(|m| &m.name == name),
                "unknown mix {name:?}; {} declares: {:?}",
                config.display(),
                mixes.iter().map(|m| m.name.as_str()).collect::<Vec<_>>()
            );
        }
        mixes.retain(|m| picked.contains(&m.name));
    }
    let pressure_names = flag_values(&args, "--pressure");
    let pressures: Vec<Pressure> = if pressure_names.is_empty() {
        Pressure::LADDER.to_vec()
    } else {
        pressure_names
            .iter()
            .map(|name| {
                *Pressure::LADDER
                    .iter()
                    .find(|p| p.name == name)
                    .unwrap_or_else(|| {
                        let known: Vec<&str> = Pressure::LADDER.iter().map(|p| p.name).collect();
                        panic!("unknown pressure {name:?}; valid: {known:?}")
                    })
            })
            .collect()
    };

    // One flat grid over every (mix, pressure, ramp step): a single
    // harness call maximizes worker occupancy and dedups shared solos.
    let steps_of = |mix: &MixConfig| -> Vec<usize> {
        mix.ramp
            .map(|r| r.steps())
            .unwrap_or_else(|| vec![mix.core_count()])
    };
    let mut cells: Vec<MixCell> = Vec::new();
    for mix in &mixes {
        for &pressure in &pressures {
            for cores in steps_of(mix) {
                cells.push(MixCell {
                    mix: mix.clone(),
                    cores,
                    pressure,
                });
            }
        }
    }
    let mut harness = ParallelHarness::new(scale);
    let evals = harness.try_evaluate_mix_grid(&cells).into_complete();

    // Regroup the flat evaluations into per-(mix, pressure) searches.
    let mut searches: Vec<CapacitySearch> = Vec::new();
    let mut idx = 0;
    for mix in &mixes {
        for &pressure in &pressures {
            let steps = steps_of(mix);
            let measured: Vec<CapacityCell> = steps
                .iter()
                .map(|_| {
                    let e = &evals[idx];
                    idx += 1;
                    CapacityCell {
                        cores: e.cores,
                        fairness: e.fairness.clone(),
                    }
                })
                .collect();
            searches.push(CapacitySearch::from_steps(
                &mix.name,
                pressure.name,
                measured,
            ));
        }
    }
    assert_eq!(idx, evals.len(), "every evaluation was grouped");

    println!("Multi-core contention: capacity search over declared mixes");
    println!(
        "({} instructions/core after {} warmup, seed {}; knee = last core count",
        scale.instructions_per_core, scale.warmup_per_core, scale.seed
    );
    println!("whose added cores still earn >=50% of the un-contended per-core IPC)\n");
    let mut t = Table::new(vec![
        "Mix",
        "Pressure",
        "Cores",
        "Agg IPC",
        "Min/Max IPC",
        "Max slowdown",
        "Knee",
    ]);
    for s in &searches {
        for step in &s.steps {
            t.row(vec![
                s.mix.clone(),
                s.pressure.to_string(),
                step.cores.to_string(),
                f2(step.fairness.aggregate_ipc),
                f2(step.fairness.min_max_ipc_ratio),
                f2(step.fairness.max_slowdown()),
                if step.cores == s.knee {
                    "<-".to_string()
                } else {
                    String::new()
                },
            ]);
        }
    }
    println!("{}", t.render());

    let starvation = mixes
        .iter()
        .find(|m| m.name == STARVATION_MIX)
        .map(|mix| starvation_experiment(mix, scale));

    let mut report_lines: Vec<String> = searches.iter().map(CapacitySearch::to_json).collect();
    if let Some(line) = &starvation {
        report_lines.push(line.clone());
    }
    if let Some(parent) = report_path.parent() {
        std::fs::create_dir_all(parent)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
    }
    std::fs::write(&report_path, report_lines.join("\n") + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", report_path.display()));
    eprintln!(
        "[fig_multicore] report: {} search(es) -> {}",
        report_lines.len(),
        report_path.display()
    );
}

/// Runs the throttle-starvation experiment and returns its report JSON
/// line: `polite-vs-storm` at 2 cores under `constrained` pressure,
/// throttle off versus chip-wide feedback.
fn starvation_experiment(mix: &MixConfig, scale: RunScale) -> String {
    let pressure = Pressure::CONSTRAINED;
    let run = |throttle: ThrottleMode| -> SimResult {
        bingo_bench::run_mix_configured(
            mix,
            2,
            &pressure,
            scale,
            None,
            TelemetryLevel::Off,
            throttle,
        )
        .unwrap_or_else(|e| panic!("starvation cell aborted: {e}"))
    };
    let off = run(ThrottleMode::Off);
    let feedback = run(ThrottleMode::Feedback);
    let polite = (off.core_ipcs()[0], feedback.core_ipcs()[0]);
    let storm = (off.core_ipcs()[1], feedback.core_ipcs()[1]);
    let polite_ratio = polite.1 / polite.0;

    println!(
        "Throttle starvation: {} @ 2 cores, {} pressure",
        mix.name, pressure.name
    );
    println!("(the feedback throttle is chip-wide: the storm core's wasted");
    println!("prefetches clamp the polite core's Bingo instance too)\n");
    let mut t = Table::new(vec!["Core", "Unthrottled IPC", "Feedback IPC", "Ratio"]);
    t.row(vec![
        "polite (streaming)".to_string(),
        f2(polite.0),
        f2(polite.1),
        f2(polite_ratio),
    ]);
    t.row(vec![
        "storm (stress-storm)".to_string(),
        f2(storm.0),
        f2(storm.1),
        f2(storm.1 / storm.0),
    ]);
    println!("{}", t.render());
    let verdict = if polite_ratio >= 0.95 {
        "the polite core keeps >=95% of its unthrottled IPC: no starvation"
    } else {
        "the polite core loses >5% of its unthrottled IPC: the chip-wide throttle starves it"
    };
    println!("=> {verdict}");
    println!("   (fig_qos reruns this comparison with the per-core throttle arm)\n");

    format!(
        "{{\"starvation\":{{\"mix\":\"{}\",\"pressure\":\"{}\",\"cores\":2,\
         \"polite_ipc_unthrottled\":{:.6},\"polite_ipc_feedback\":{:.6},\
         \"polite_ratio\":{:.6},\"storm_ipc_unthrottled\":{:.6},\
         \"storm_ipc_feedback\":{:.6}}}}}",
        mix.name, pressure.name, polite.0, polite.1, polite_ratio, storm.0, storm.1
    )
}
