//! Figure 10 — iso-degree comparison: the SHH prefetchers with their
//! degree restrictions lifted (BOP and VLDP at degree 32, SPP at a 1%
//! confidence threshold) against their original configurations and Bingo.
//!
//! The paper's result: aggressiveness buys a little performance and a lot
//! of overprediction; Bingo still wins.

use bingo_bench::{geometric_mean, mean, pct, Harness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = Harness::new(scale);
    let pairs = [
        ("BOP", PrefetcherKind::Bop, PrefetcherKind::BopAggressive),
        ("SPP", PrefetcherKind::Spp, PrefetcherKind::SppAggressive),
        ("VLDP", PrefetcherKind::Vldp, PrefetcherKind::VldpAggressive),
    ];
    let mut t = Table::new(vec![
        "Prefetcher",
        "Perf gmean",
        "Coverage",
        "Overprediction",
    ]);
    for (name, orig, aggr) in pairs {
        for (suffix, kind) in [("Orig", orig), ("Aggr", aggr)] {
            let mut speedups = Vec::new();
            let mut covs = Vec::new();
            let mut ovs = Vec::new();
            for w in Workload::ALL {
                let e = harness.evaluate(w, kind);
                speedups.push(e.speedup);
                covs.push(e.coverage.coverage);
                ovs.push(e.coverage.overprediction);
                eprintln!("done {w} / {name}-{suffix}");
            }
            t.row(vec![
                format!("{name}-{suffix}"),
                pct(geometric_mean(&speedups) - 1.0),
                pct(mean(&covs)),
                pct(mean(&ovs)),
            ]);
        }
    }
    // Bingo reference row.
    let mut speedups = Vec::new();
    let mut covs = Vec::new();
    let mut ovs = Vec::new();
    for w in Workload::ALL {
        let e = harness.evaluate(w, PrefetcherKind::Bingo);
        speedups.push(e.speedup);
        covs.push(e.coverage.coverage);
        ovs.push(e.coverage.overprediction);
    }
    t.row(vec![
        "Bingo".to_string(),
        pct(geometric_mean(&speedups) - 1.0),
        pct(mean(&covs)),
        pct(mean(&ovs)),
    ]);
    t.write_csv_if_requested("fig10_isodegree");
    println!(
        "Figure 10. Iso-degree comparison (paper: lifting the degree raises\n\
         SHH coverage slightly and overprediction sharply; Bingo still wins).\n\n{t}"
    );
}
