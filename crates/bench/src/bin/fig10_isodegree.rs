//! Figure 10 — iso-degree comparison: the SHH prefetchers with their
//! degree restrictions lifted (BOP and VLDP at degree 32, SPP at a 1%
//! confidence threshold) against their original configurations and Bingo.
//!
//! The paper's result: aggressiveness buys a little performance and a lot
//! of overprediction; Bingo still wins.

use bingo_bench::{geometric_mean, mean, pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let rows = [
        ("BOP-Orig", PrefetcherKind::Bop),
        ("BOP-Aggr", PrefetcherKind::BopAggressive),
        ("SPP-Orig", PrefetcherKind::Spp),
        ("SPP-Aggr", PrefetcherKind::SppAggressive),
        ("VLDP-Orig", PrefetcherKind::Vldp),
        ("VLDP-Aggr", PrefetcherKind::VldpAggressive),
        ("Bingo", PrefetcherKind::Bingo),
    ];
    // Kind-major grid: all workloads of one row are contiguous.
    let cells: Vec<_> = rows
        .iter()
        .flat_map(|&(_, k)| Workload::ALL.into_iter().map(move |w| (w, k)))
        .collect();
    let evals = harness.evaluate_grid(&cells);
    let mut t = Table::new(vec![
        "Prefetcher",
        "Perf gmean",
        "Coverage",
        "Overprediction",
    ]);
    let n_workloads = Workload::ALL.len();
    for (i, (name, _)) in rows.into_iter().enumerate() {
        let chunk = &evals[i * n_workloads..(i + 1) * n_workloads];
        let speedups: Vec<f64> = chunk.iter().map(|e| e.speedup).collect();
        let covs: Vec<f64> = chunk.iter().map(|e| e.coverage.coverage).collect();
        let ovs: Vec<f64> = chunk.iter().map(|e| e.coverage.overprediction).collect();
        t.row(vec![
            name.to_string(),
            pct(geometric_mean(&speedups) - 1.0),
            pct(mean(&covs)),
            pct(mean(&ovs)),
        ]);
    }
    t.write_csv_if_requested("fig10_isodegree");
    println!(
        "Figure 10. Iso-degree comparison (paper: lifting the degree raises\n\
         SHH coverage slightly and overprediction sharply; Bingo still wins).\n\n{t}"
    );
}
