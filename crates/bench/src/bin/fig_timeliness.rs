//! Prefetch-lifecycle timeliness breakdown (observability companion to
//! Fig. 7): for every workload × headline prefetcher, the full fate of
//! every issued prefetch — used timely, used late, evicted unused, or
//! dropped before issue — plus the average fill latency, from the
//! [`bingo_sim::TelemetryReport`] attached to each run.
//!
//! A second table attributes Bingo's prefetches to the originating event
//! kind (long `PC+Address` event vs voted short `PC+Offset` event) and
//! reports per-event-kind accuracy — the observable counterpart of the
//! paper's Fig. 2 accuracy argument.
//!
//! Telemetry defaults to `counts` here (this binary is *about* telemetry);
//! `BINGO_TELEMETRY` still overrides, e.g. `trace` for the event ring.
//! Pass `--workload <name>` (repeatable) to restrict the sweep — the CI
//! smoke job runs a single cheap workload this way.

use bingo_bench::{f2, mean, pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_sim::{SourceCounters, TelemetryLevel, TelemetryReport};
use bingo_workloads::Workload;

/// Parses repeated `--workload <name>` arguments (case-insensitive,
/// spaces in paper names optional: `em3d`, `sat solver`, `SatSolver`).
/// No filter means every workload.
///
/// # Panics
///
/// Panics on an unknown workload name, listing the valid ones.
fn parse_workloads(args: &[String]) -> Vec<Workload> {
    let mut picked = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--workload" {
            let name = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--workload requires a name"));
            let canon = |s: &str| s.replace(' ', "").to_ascii_lowercase();
            let w = *Workload::ALL
                .iter()
                .find(|w| canon(w.name()) == canon(name) || canon(&format!("{w:?}")) == canon(name))
                .unwrap_or_else(|| {
                    let names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
                    panic!("unknown workload {name:?}; valid names: {names:?}")
                });
            if !picked.contains(&w) {
                picked.push(w);
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    if picked.is_empty() {
        Workload::ALL.to_vec()
    } else {
        picked
    }
}

fn report(e: &bingo_bench::Evaluation) -> &TelemetryReport {
    e.result
        .telemetry
        .as_ref()
        .expect("harness runs with telemetry enabled")
}

fn source_timeliness(c: &SourceCounters) -> f64 {
    let used = c.timely + c.late;
    if used == 0 {
        0.0
    } else {
        c.timely as f64 / used as f64
    }
}

fn main() {
    let scale = RunScale::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads = parse_workloads(&args);
    let mut harness = ParallelHarness::new(scale);
    if !harness.telemetry().enabled() {
        harness = harness.with_telemetry(TelemetryLevel::Counts);
    }
    let evals = harness.evaluate_all(&workloads, &PrefetcherKind::HEADLINE);

    let mut t = Table::new(vec![
        "Workload",
        "Prefetcher",
        "Coverage",
        "Accuracy",
        "Timeliness",
        "Timely",
        "Late",
        "Unused",
        "Dropped",
        "Fill lat",
    ]);
    let mut timeliness_by_kind: Vec<(String, Vec<f64>)> = PrefetcherKind::HEADLINE
        .iter()
        .map(|k| (k.name(), Vec::new()))
        .collect();
    for (idx, e) in evals.iter().enumerate() {
        let r = report(e);
        t.row(vec![
            e.workload.name().to_string(),
            e.kind.name(),
            pct(e.coverage.coverage),
            pct(r.accuracy()),
            pct(r.timeliness()),
            r.timely.to_string(),
            r.late.to_string(),
            r.unused.to_string(),
            (r.dropped_duplicate + r.dropped_mshr).to_string(),
            f2(r.avg_fill_latency()),
        ]);
        timeliness_by_kind[idx % PrefetcherKind::HEADLINE.len()]
            .1
            .push(r.timeliness());
    }
    for (name, vals) in &timeliness_by_kind {
        t.row(vec![
            "Average".to_string(),
            name.clone(),
            String::new(),
            String::new(),
            pct(mean(vals)),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }

    let mut s = Table::new(vec![
        "Workload",
        "Event kind",
        "Issued",
        "Accuracy",
        "Timeliness",
    ]);
    for e in evals.iter().filter(|e| e.kind == PrefetcherKind::Bingo) {
        for (label, c) in &report(e).by_source {
            s.row(vec![
                e.workload.name().to_string(),
                label.clone(),
                c.issued.to_string(),
                pct(c.accuracy()),
                pct(source_timeliness(c)),
            ]);
        }
    }

    t.write_csv_if_requested("fig_timeliness");
    s.write_csv_if_requested("fig_timeliness_sources");
    println!(
        "Prefetch lifecycle: timeliness and attribution of every issued\n\
         prefetch (timely + late + unused = issued minus still-in-flight).\n\n{t}"
    );
    println!(
        "Bingo prefetches by originating event kind (long = PC+Address\n\
         history replay, short = voted PC+Offset footprints).\n\n{s}"
    );
}
