//! Trace capture tool: records the synthetic evaluation suite (and the
//! stress workloads) as framed `.btrc` captures for offline replay.
//!
//! ```text
//! trace_capture [--out DIR] [--workload NAME]... [--quick] [--verify]
//! ```
//!
//! Each workload lands in `DIR/<slug>/core<i>.btrc` (default
//! `target/traces/`), one stream per core of the paper's 4-core system,
//! sized to the current [`RunScale`] plus fetch-ahead slack so a replay
//! at the same scale never wraps. `BINGO_TRACE_CHUNK` overrides the
//! records-per-chunk of the written files (the chunk size bounds replay
//! memory; see EXPERIMENTS.md).
//!
//! `--verify` replays every fresh capture through the no-prefetcher
//! system and asserts the [`bingo_sim::SimResult`] is bit-for-bit the
//! live generator run — the round-trip guarantee that makes captures
//! trustworthy substitutes for the generators. The process exits nonzero
//! on any divergence.

use std::path::PathBuf;
use std::process::ExitCode;

use bingo_bench::{
    run_one, run_trace_one_configured, trace_chunk_from_env, PrefetcherKind, RunScale,
};
use bingo_sim::{SystemConfig, TelemetryLevel, ThrottleMode};
use bingo_trace::DEFAULT_CHUNK_RECORDS;
use bingo_workloads::{capture_workload, TraceWorkload, Workload};

/// Fetch-ahead slack appended to every per-core stream: cores fetch a
/// handful of instructions past their retirement budget (stalled slots),
/// so a capture sized exactly to the budget would wrap into a second
/// replay pass and diverge from the live run.
const CAPTURE_SLACK: u64 = 256;

struct Args {
    out: PathBuf,
    workloads: Vec<Workload>,
    verify: bool,
}

fn suite() -> Vec<Workload> {
    Workload::ALL
        .iter()
        .chain(Workload::STRESS.iter())
        .copied()
        .collect()
}

fn parse_args() -> Args {
    let mut args = Args {
        out: PathBuf::from("target/traces"),
        workloads: Vec::new(),
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a path")),
            "--workload" => {
                let name = it.next().expect("--workload needs a name");
                let canon = |s: &str| s.replace([' ', '-'], "").to_ascii_lowercase();
                let w = *suite()
                    .iter()
                    .find(|w| canon(w.slug()) == canon(&name) || canon(w.name()) == canon(&name))
                    .unwrap_or_else(|| {
                        let slugs: Vec<&str> = suite().iter().map(|w| w.slug()).collect();
                        panic!("unknown workload {name:?}; valid slugs: {slugs:?}")
                    });
                if !args.workloads.contains(&w) {
                    args.workloads.push(w);
                }
            }
            "--verify" => args.verify = true,
            "--quick" => {} // consumed by RunScale::from_args
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.workloads.is_empty() {
        args.workloads = suite();
    }
    args
}

fn main() -> ExitCode {
    let scale = RunScale::from_args();
    let args = parse_args();
    let cores = SystemConfig::paper().cores;
    let records = scale.warmup_per_core + scale.instructions_per_core + CAPTURE_SLACK;
    let chunk = trace_chunk_from_env().unwrap_or(DEFAULT_CHUNK_RECORDS);
    let mut mismatches = 0usize;

    for &w in &args.workloads {
        let dir = args.out.join(w.slug());
        capture_workload(w, cores, scale.seed, records, chunk, &dir).unwrap_or_else(|e| {
            panic!("capture of {} into {} failed: {e}", w.name(), dir.display())
        });
        let bytes: u64 = (0..cores)
            .filter_map(|i| std::fs::metadata(dir.join(format!("core{i}.btrc"))).ok())
            .map(|m| m.len())
            .sum();
        println!(
            "captured {:<14} {} records/core x {cores} cores ({} bytes) -> {}",
            w.name(),
            records,
            bytes,
            dir.display()
        );
        if !args.verify {
            continue;
        }
        let trace = TraceWorkload::open(&dir)
            .unwrap_or_else(|e| panic!("reopening capture {}: {e}", dir.display()));
        let mut replayed = run_trace_one_configured(
            &trace,
            PrefetcherKind::None,
            scale,
            None,
            TelemetryLevel::Off,
            ThrottleMode::Off,
        )
        .unwrap_or_else(|abort| panic!("replay of {} aborted: {abort}", dir.display()));
        let ingest = replayed
            .ingest
            .take()
            .expect("replay attaches an ingest report");
        let live = run_one(w, PrefetcherKind::None, scale);
        if !ingest.is_clean() {
            eprintln!(
                "VERIFY FAIL {}: fresh capture reported quarantine: {ingest}",
                w.name()
            );
            mismatches += 1;
        } else if live != replayed {
            eprintln!(
                "VERIFY FAIL {}: replayed SimResult diverges from the live generator run",
                w.name()
            );
            mismatches += 1;
        } else {
            println!("verified {:<14} replay == live (bit-for-bit)", w.name());
        }
    }

    if mismatches > 0 {
        eprintln!("{mismatches} capture(s) failed round-trip verification");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
