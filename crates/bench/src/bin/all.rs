//! Runs every experiment binary in sequence, printing all tables/figures
//! and per-binary wall-clock timings. Pass `--quick` to run at CI scale.
//!
//! The binaries themselves parallelize across (workload, prefetcher)
//! cells — see `BINGO_JOBS` in EXPERIMENTS.md.

use std::process::Command;
use std::time::Instant;

const BINARIES: [&str; 17] = [
    "table1_config",
    "table2_workloads",
    "fig2_events",
    "fig3_num_events",
    "fig4_redundancy",
    "fig6_table_size",
    "fig7_coverage",
    "fig8_performance",
    "fig9_density",
    "fig10_isodegree",
    "fig_timeliness",
    "fig_traces",
    "fig_multicore",
    "ablation_voting",
    "ablation_region",
    "ablation_training",
    "workload_stats",
];

fn main() {
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| panic!("cannot resolve the current executable path: {e}"));
    let dir = exe
        .parent()
        .unwrap_or_else(|| panic!("executable {} has no parent directory", exe.display()))
        .to_path_buf();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let total = Instant::now();
    let mut timings = Vec::new();
    let mut failures: Vec<(&str, String)> = Vec::new();
    for bin in BINARIES {
        println!("\n================ {bin} ================\n");
        let start = Instant::now();
        // One failing figure must not cost the remaining thirteen: record
        // the failure, keep sweeping, and report everything at the end.
        let outcome = match Command::new(dir.join(bin)).args(&args).status() {
            Ok(status) if status.success() => Ok(()),
            Ok(status) => Err(format!("exited with {status}")),
            Err(e) => Err(format!("failed to launch: {e}")),
        };
        let secs = start.elapsed().as_secs_f64();
        match outcome {
            Ok(()) => eprintln!("[all] {bin} finished in {secs:.1}s"),
            Err(reason) => {
                eprintln!("[all] {bin} FAILED after {secs:.1}s: {reason}");
                failures.push((bin, reason));
            }
        }
        timings.push((bin, secs));
    }
    let total_secs = total.elapsed().as_secs_f64();
    println!("\n================ timing summary ================\n");
    for (bin, secs) in &timings {
        let mark = if failures.iter().any(|(f, _)| f == bin) {
            "  FAILED"
        } else {
            ""
        };
        println!("{bin:<18} {secs:>8.1}s{mark}");
    }
    println!("{:<18} {:>8.1}s", "total", total_secs);
    if !failures.is_empty() {
        eprintln!(
            "\nFAILURE REPORT: {} of {} binaries failed",
            failures.len(),
            BINARIES.len()
        );
        for (bin, reason) in &failures {
            eprintln!("  {bin}: {reason}");
        }
        std::process::exit(1);
    }
}
