//! Runs every experiment binary in sequence, printing all tables/figures.
//! Pass `--quick` to run at CI scale.

use std::process::Command;

const BINARIES: [&str; 14] = [
    "table1_config",
    "table2_workloads",
    "fig2_events",
    "fig3_num_events",
    "fig4_redundancy",
    "fig6_table_size",
    "fig7_coverage",
    "fig8_performance",
    "fig9_density",
    "fig10_isodegree",
    "ablation_voting",
    "ablation_region",
    "ablation_training",
    "workload_stats",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe directory").to_path_buf();
    let args: Vec<String> = std::env::args().skip(1).collect();
    for bin in BINARIES {
        println!("\n================ {bin} ================\n");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
