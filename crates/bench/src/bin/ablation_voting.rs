//! Ablation — Bingo's multi-match footprint-voting threshold.
//!
//! Section IV: when only the short event matches, possibly in several ways,
//! Bingo prefetches blocks present in ≥20% of the matching footprints. This
//! ablation sweeps the threshold from aggressive-union (5%) to strict
//! intersection (100%), confirming the paper's choice of 20%.

use bingo_bench::{geometric_mean, mean, pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

const THRESHOLDS: [f64; 6] = [0.05, 0.2, 0.35, 0.5, 0.75, 1.0];

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    // Threshold-major grid: all workloads of one threshold are contiguous.
    let cells: Vec<_> = THRESHOLDS
        .iter()
        .flat_map(|&th| {
            Workload::ALL
                .into_iter()
                .map(move |w| (w, PrefetcherKind::BingoVote(th)))
        })
        .collect();
    let evals = harness.evaluate_grid(&cells);
    let mut t = Table::new(vec![
        "Vote threshold",
        "Perf gmean",
        "Coverage",
        "Overprediction",
    ]);
    let n_workloads = Workload::ALL.len();
    for (i, &th) in THRESHOLDS.iter().enumerate() {
        let chunk = &evals[i * n_workloads..(i + 1) * n_workloads];
        let speedups: Vec<f64> = chunk.iter().map(|e| e.speedup).collect();
        let covs: Vec<f64> = chunk.iter().map(|e| e.coverage.coverage).collect();
        let ovs: Vec<f64> = chunk.iter().map(|e| e.coverage.overprediction).collect();
        t.row(vec![
            pct(th),
            pct(geometric_mean(&speedups) - 1.0),
            pct(mean(&covs)),
            pct(mean(&ovs)),
        ]);
    }
    println!("Ablation: Bingo footprint-voting threshold (paper picks 20%).\n\n{t}");
}
