//! Ablation — Bingo's multi-match footprint-voting threshold.
//!
//! Section IV: when only the short event matches, possibly in several ways,
//! Bingo prefetches blocks present in ≥20% of the matching footprints. This
//! ablation sweeps the threshold from aggressive-union (5%) to strict
//! intersection (100%), confirming the paper's choice of 20%.

use bingo_bench::{geometric_mean, mean, pct, Harness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

const THRESHOLDS: [f64; 6] = [0.05, 0.2, 0.35, 0.5, 0.75, 1.0];

fn main() {
    let scale = RunScale::from_args();
    let mut harness = Harness::new(scale);
    let mut t = Table::new(vec!["Vote threshold", "Perf gmean", "Coverage", "Overprediction"]);
    for &th in &THRESHOLDS {
        let mut speedups = Vec::new();
        let mut covs = Vec::new();
        let mut ovs = Vec::new();
        for w in Workload::ALL {
            let e = harness.evaluate(w, PrefetcherKind::BingoVote(th));
            speedups.push(e.speedup);
            covs.push(e.coverage.coverage);
            ovs.push(e.coverage.overprediction);
            eprintln!("done {w} / vote {th}");
        }
        t.row(vec![
            pct(th),
            pct(geometric_mean(&speedups) - 1.0),
            pct(mean(&covs)),
            pct(mean(&ovs)),
        ]);
    }
    println!(
        "Ablation: Bingo footprint-voting threshold (paper picks 20%).\n\n{t}"
    );
}
