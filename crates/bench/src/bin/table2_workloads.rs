//! Table II — application parameters: baseline LLC MPKI of every workload
//! (no prefetcher), compared against the paper's reported values.

use bingo_bench::{ParallelHarness, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    harness.prime_baselines(&Workload::ALL);
    let mut t = Table::new(vec!["Application", "Description", "MPKI", "Paper MPKI"]);
    for w in Workload::ALL {
        let base = harness.baseline(w);
        t.row(vec![
            w.name().to_string(),
            w.description().to_string(),
            format!("{:.1}", base.llc_mpki()),
            format!("{:.1}", w.paper_mpki()),
        ]);
    }
    t.write_csv_if_requested("table2_workloads");
    println!("Table II. Application parameters (baseline LLC MPKI).\n\n{t}");
}
