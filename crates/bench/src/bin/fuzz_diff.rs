//! Differential fuzzer CLI: real prefetchers vs their oracles.
//!
//! ```text
//! fuzz_diff [--traces N] [--out DIR]      run the fuzz sweep (default 125
//!                                         seeds x 4 presets = 500 traces)
//! fuzz_diff --fault [--out DIR]           demonstrate detection: find a
//!                                         seeded-fault divergence, shrink
//!                                         it, and write the minimal trace
//! fuzz_diff --throttle [--traces N]       sweep throttled Bingo against
//!                                         the unthrottled spec: the burst
//!                                         must stay a subsequence of the
//!                                         spec's at every step (exact at
//!                                         Full), under a deterministic
//!                                         level schedule
//! ```
//!
//! The sweep replays every generated trace through clean Bingo under all
//! [`bingo_config_variants`] geometries against `SpecBingo`, and through
//! the stride/BOP/next-line/SMS baselines against their invariant oracles.
//! On any divergence the failing trace is shrunk and written to `--out`
//! (default `target/differential/`), and the process exits nonzero — CI
//! uploads that directory as an artifact. `--fault` runs the same loop
//! with a deliberately corrupted Bingo ([`bingo::Bingo::with_faults`]) and
//! *expects* a divergence; it exits nonzero if none is found, because that
//! would mean the harness has lost its detection power.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bingo::{Bingo, BingoConfig};
use bingo_baselines::{Bop, BopConfig, Sms, SmsConfig, StrideConfig, StridePrefetcher};
use bingo_bench::differential::{
    bingo_config_variants, diff_bingo_instances, diff_bingo_throttled, fuzz_baseline, fuzz_bingo,
    fuzz_bingo_throttled, FuzzFailure,
};
use bingo_oracle::{
    generate, shrink, BopOracle, GeneratorConfig, NextLineOracle, SmsOracle, SpecBingo,
    StrideOracle,
};
use bingo_sim::{FaultPlan, NextLinePrefetcher, PrefetchTrace};

/// A fresh (prefetcher, oracle) pair for one baseline fuzz replay.
type OraclePair = (
    Box<dyn bingo_sim::Prefetcher>,
    Box<dyn bingo_oracle::StepOracle>,
);
type MakePair = Box<dyn FnMut(bingo_sim::RegionGeometry) -> OraclePair>;

struct Args {
    traces_per_preset: u64,
    out: PathBuf,
    fault: bool,
    throttle: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        traces_per_preset: 125,
        out: PathBuf::from("target/differential"),
        fault: false,
        throttle: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--traces" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--traces needs a number");
                args.traces_per_preset = n.div_ceil(GeneratorConfig::all().len() as u64).max(1);
            }
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a path")),
            "--fault" => args.fault = true,
            "--throttle" => args.throttle = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn write_trace(dir: &Path, name: &str, header: &str, trace: &PrefetchTrace) -> PathBuf {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("creating output dir {}: {e}", dir.display()));
    let path = dir.join(name);
    let mut text = String::new();
    for line in header.lines() {
        text.push_str(&format!("# {line}\n"));
    }
    text.push_str(&trace.to_text());
    std::fs::write(&path, text)
        .unwrap_or_else(|e| panic!("writing shrunk trace {}: {e}", path.display()));
    path
}

fn report_failure(out: &Path, who: &str, f: &FuzzFailure, shrunk: &PrefetchTrace) -> PathBuf {
    let header = format!(
        "differential mismatch: {who}\nseed {} variant {}\n{}",
        f.seed, f.variant, f.mismatch
    );
    write_trace(out, &format!("mismatch_{who}.txt"), &header, shrunk)
}

fn run_sweep(args: &Args) -> ExitCode {
    let seeds = 0..args.traces_per_preset;
    let mut total_traces = 0usize;
    let mut total_events = 0usize;

    for (pi, gen) in GeneratorConfig::all().iter().enumerate() {
        // Disjoint seed ranges per preset so every trace is distinct.
        let base = pi as u64 * args.traces_per_preset;
        let range = base..base + seeds.end;

        match fuzz_bingo(gen, range.clone()) {
            Ok(r) => {
                total_traces += r.traces;
                total_events += r.events;
            }
            Err(f) => {
                let cfg = bingo_config_variants(f.trace.geometry())
                    .into_iter()
                    .find(|(n, _)| *n == f.variant)
                    .map(|(_, c)| c)
                    .expect("variant came from the same table");
                let shrunk = bingo_bench::shrink_bingo_mismatch(&cfg, &f.trace);
                let path = report_failure(&args.out, "bingo", &f, &shrunk);
                eprintln!(
                    "FAIL bingo: {}\nshrunk trace: {}",
                    f.mismatch,
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }

        let baselines: Vec<(&str, MakePair)> = vec![
            (
                "stride",
                Box::new(|_g| {
                    let cfg = StrideConfig::typical();
                    (
                        Box::new(StridePrefetcher::new(cfg)) as Box<dyn bingo_sim::Prefetcher>,
                        Box::new(StrideOracle::new(&cfg)) as Box<dyn bingo_oracle::StepOracle>,
                    )
                }),
            ),
            (
                "bop",
                Box::new(|_g| {
                    let cfg = BopConfig::paper();
                    (
                        Box::new(Bop::new(cfg.clone())) as _,
                        Box::new(BopOracle::new(&cfg)) as _,
                    )
                }),
            ),
            (
                "next-line",
                Box::new(|_g| {
                    (
                        Box::new(NextLinePrefetcher::new(4)) as _,
                        Box::new(NextLineOracle::new(4)) as _,
                    )
                }),
            ),
            (
                "sms",
                Box::new(|g| {
                    let cfg = SmsConfig {
                        region: g,
                        ..SmsConfig::paper()
                    };
                    (
                        Box::new(Sms::new(cfg)) as _,
                        Box::new(SmsOracle::new(g)) as _,
                    )
                }),
            ),
        ];
        for (who, mut make) in baselines {
            match fuzz_baseline(gen, range.clone(), &mut *make) {
                Ok(r) => {
                    total_traces += r.traces;
                    total_events += r.events;
                }
                Err(f) => {
                    let path = report_failure(&args.out, who, &f, &f.trace);
                    eprintln!("FAIL {who}: {}\ntrace: {}", f.mismatch, path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    println!(
        "differential sweep clean: {total_traces} trace replays, {total_events} events, \
         {} Bingo config variants, 4 baseline oracles",
        bingo_config_variants(Default::default()).len()
    );
    ExitCode::SUCCESS
}

/// Sweeps throttled Bingo against the unthrottled spec (see
/// [`bingo_bench::differential::diff_bingo_throttled`]): with the level
/// walked up and down a deterministic schedule, every burst must stay an
/// ordered subsequence of the spec's, exactly equal whenever the schedule
/// says `Full`. Seed ranges are offset from the main sweep's so the two
/// modes cover disjoint traces.
fn run_throttle_sweep(args: &Args) -> ExitCode {
    const SEED_BASE: u64 = 31_000;
    let mut total_traces = 0usize;
    let mut total_events = 0usize;
    for (pi, gen) in GeneratorConfig::all().iter().enumerate() {
        let base = SEED_BASE + pi as u64 * args.traces_per_preset;
        match fuzz_bingo_throttled(gen, base..base + args.traces_per_preset) {
            Ok(r) => {
                total_traces += r.traces;
                total_events += r.events;
            }
            Err(f) => {
                let cfg = bingo_config_variants(f.trace.geometry())
                    .into_iter()
                    .find(|(n, _)| *n == f.variant)
                    .map(|(_, c)| c)
                    .expect("variant came from the same table");
                let shrunk = shrink(&f.trace, &mut |t| diff_bingo_throttled(&cfg, t).is_err());
                let path = report_failure(&args.out, "bingo_throttled", &f, &shrunk);
                eprintln!(
                    "FAIL throttled bingo: {}\nshrunk trace: {}",
                    f.mismatch,
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "throttled differential sweep clean: {total_traces} trace replays, {total_events} \
         events, {} Bingo config variants, subtractive contract held at every step",
        bingo_config_variants(Default::default()).len()
    );
    ExitCode::SUCCESS
}

/// Finds a trace on which a fault-injected Bingo diverges from the clean
/// spec, shrinks it under the same (deterministic) faulty predicate, and
/// writes the minimal trace. This is the harness's self-test: if a 10%
/// metadata-corruption rate can hide from the diff, a real bug could too.
fn run_fault_demo(args: &Args) -> ExitCode {
    const FAULT_SEED: u64 = 7;
    const FAULT_RATE: f64 = 0.1;
    let gen = GeneratorConfig::small();
    let diverges = |trace: &PrefetchTrace| {
        let cfg = BingoConfig {
            region: trace.geometry(),
            ..BingoConfig::paper()
        };
        let mut real = Bingo::with_faults(cfg, FaultPlan::uniform(FAULT_SEED, FAULT_RATE));
        let mut spec = SpecBingo::new(cfg);
        diff_bingo_instances(&mut real, &mut spec, trace).is_err()
    };
    for seed in 0..200 {
        let trace = generate(&gen, seed);
        if !diverges(&trace) {
            continue;
        }
        let shrunk = shrink(&trace, &mut |t| diverges(t));
        let header = format!(
            "fault-detection demo: Bingo with FaultPlan::uniform(seed={FAULT_SEED}, rate={FAULT_RATE})\n\
             diverges from SpecBingo on this trace (generator seed {seed}, shrunk from {} to {} events).\n\
             A clean Bingo must match the spec exactly on it.",
            trace.len(),
            shrunk.len()
        );
        let path = write_trace(&args.out, "fault_divergence.txt", &header, &shrunk);
        println!(
            "fault divergence found at generator seed {seed}; shrunk {} -> {} events: {}",
            trace.len(),
            shrunk.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("no divergence in 200 traces — the differential harness lost its detection power");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.fault {
        run_fault_demo(&args)
    } else if args.throttle {
        run_throttle_sweep(&args)
    } else {
        run_sweep(&args)
    }
}
