//! Ablation — spatial region size (1 KB / 2 KB / 4 KB).
//!
//! The region is the unit over which footprints are recorded and
//! prefetched; 2 KB is the reference ChampSim Bingo choice. Larger regions
//! amortize more blocks per trigger but dilute pattern stability.
//!
//! Because the region size changes the *system* configuration (not just
//! the prefetcher), this study runs outside the harness, fanning its cells
//! out with [`parallel_map`] directly.

use bingo::{Bingo, BingoConfig};
use bingo_bench::{default_jobs, geometric_mean, mean, parallel_map, pct, RunScale, Table};
use bingo_sim::{CoverageReport, NoPrefetcher, RegionGeometry, System, SystemConfig};
use bingo_workloads::Workload;

const REGION_BYTES: [u64; 3] = [1024, 2048, 4096];

fn run(w: Workload, region_bytes: Option<u64>, scale: RunScale) -> bingo_sim::SimResult {
    let mut cfg = SystemConfig::paper();
    if let Some(bytes) = region_bytes {
        cfg.region = RegionGeometry::new(bytes);
    }
    let sources = w.sources(cfg.cores, scale.seed);
    let system = System::with_prefetchers(
        cfg,
        sources,
        |_| match region_bytes {
            Some(bytes) => Box::new(Bingo::new(BingoConfig {
                region: RegionGeometry::new(bytes),
                ..BingoConfig::paper()
            })),
            None => Box::new(NoPrefetcher),
        },
        scale.instructions_per_core,
    )
    .with_warmup(scale.warmup_per_core);
    system.run()
}

fn main() {
    let scale = RunScale::from_args();
    // Cell list: first the per-workload baselines, then (region, workload)
    // in region-major order.
    let mut cells: Vec<(Option<u64>, Workload)> =
        Workload::ALL.iter().map(|&w| (None, w)).collect();
    for &bytes in &REGION_BYTES {
        cells.extend(Workload::ALL.iter().map(|&w| (Some(bytes), w)));
    }
    let results = parallel_map(default_jobs(), cells.len(), |i| {
        let (region, w) = cells[i];
        let r = run(w, region, scale);
        match region {
            Some(bytes) => eprintln!("done {w} / {bytes} B"),
            None => eprintln!("baseline {w}"),
        }
        r
    });
    let n_workloads = Workload::ALL.len();
    let baselines = &results[..n_workloads];
    let mut t = Table::new(vec!["Region", "Perf gmean", "Coverage", "Overprediction"]);
    for (ri, &bytes) in REGION_BYTES.iter().enumerate() {
        let chunk = &results[(ri + 1) * n_workloads..(ri + 2) * n_workloads];
        let mut speedups = Vec::new();
        let mut covs = Vec::new();
        let mut ovs = Vec::new();
        for (r, base) in chunk.iter().zip(baselines) {
            let c = CoverageReport::from_runs(r, base);
            speedups.push(r.speedup_over(base));
            covs.push(c.coverage);
            ovs.push(c.overprediction);
        }
        t.row(vec![
            format!("{} KB", bytes / 1024),
            pct(geometric_mean(&speedups) - 1.0),
            pct(mean(&covs)),
            pct(mean(&ovs)),
        ]);
    }
    println!("Ablation: spatial region size for Bingo.\n\n{t}");
}
