//! Ablation — spatial region size (1 KB / 2 KB / 4 KB).
//!
//! The region is the unit over which footprints are recorded and
//! prefetched; 2 KB is the reference ChampSim Bingo choice. Larger regions
//! amortize more blocks per trigger but dilute pattern stability.

use bingo::{Bingo, BingoConfig};
use bingo_bench::{geometric_mean, mean, pct, RunScale, Table};
use bingo_sim::{CoverageReport, NoPrefetcher, RegionGeometry, System, SystemConfig};
use bingo_workloads::Workload;

fn run(w: Workload, region_bytes: Option<u64>, scale: RunScale) -> bingo_sim::SimResult {
    let mut cfg = SystemConfig::paper();
    if let Some(bytes) = region_bytes {
        cfg.region = RegionGeometry::new(bytes);
    }
    let sources = w.sources(cfg.cores, scale.seed);
    let system = System::with_prefetchers(
        cfg,
        sources,
        |_| match region_bytes {
            Some(bytes) => Box::new(Bingo::new(BingoConfig {
                region: RegionGeometry::new(bytes),
                ..BingoConfig::paper()
            })),
            None => Box::new(NoPrefetcher),
        },
        scale.instructions_per_core,
    )
    .with_warmup(scale.warmup_per_core);
    system.run()
}

fn main() {
    let scale = RunScale::from_args();
    let mut t = Table::new(vec!["Region", "Perf gmean", "Coverage", "Overprediction"]);
    let baselines: Vec<_> = Workload::ALL
        .iter()
        .map(|&w| {
            eprintln!("baseline {w}");
            run(w, None, scale)
        })
        .collect();
    for bytes in [1024u64, 2048, 4096] {
        let mut speedups = Vec::new();
        let mut covs = Vec::new();
        let mut ovs = Vec::new();
        for (i, &w) in Workload::ALL.iter().enumerate() {
            let r = run(w, Some(bytes), scale);
            let c = CoverageReport::from_runs(&r, &baselines[i]);
            speedups.push(r.speedup_over(&baselines[i]));
            covs.push(c.coverage);
            ovs.push(c.overprediction);
            eprintln!("done {w} / {bytes} B");
        }
        t.row(vec![
            format!("{} KB", bytes / 1024),
            pct(geometric_mean(&speedups) - 1.0),
            pct(mean(&covs)),
            pct(mean(&ovs)),
        ]);
    }
    println!("Ablation: spatial region size for Bingo.\n\n{t}");
}
