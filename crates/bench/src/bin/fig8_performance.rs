//! Figure 8 — performance improvement of every prefetcher over the
//! no-prefetcher baseline, per workload plus the geometric mean.
//!
//! The paper reports Bingo at +60% gmean (11% in Zeus to 285% in em3d),
//! 11% above the best prior spatial prefetcher.

use bingo_bench::{geometric_mean, pct, ParallelHarness, PrefetcherKind, RunScale, Table};
use bingo_workloads::Workload;

fn main() {
    let scale = RunScale::from_args();
    let mut harness = ParallelHarness::new(scale);
    let evals = harness.evaluate_all(&Workload::ALL, &PrefetcherKind::HEADLINE);
    let mut header = vec!["Workload".to_string()];
    header.extend(PrefetcherKind::HEADLINE.iter().map(|k| k.name()));
    let mut t = Table::new(header);
    let n_kinds = PrefetcherKind::HEADLINE.len();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); n_kinds];
    for (wi, w) in Workload::ALL.into_iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        for (i, e) in evals[wi * n_kinds..(wi + 1) * n_kinds].iter().enumerate() {
            speedups[i].push(e.speedup);
            row.push(pct(e.improvement()));
        }
        t.row(row);
    }
    let mut gmean_row = vec!["GMean".to_string()];
    for s in &speedups {
        gmean_row.push(pct(geometric_mean(s) - 1.0));
    }
    t.row(gmean_row);
    t.write_csv_if_requested("fig8_performance");
    println!(
        "Figure 8. Performance improvement over the no-prefetcher baseline\n\
         (paper: Bingo +60% gmean, +11% Zeus, +285% em3d).\n\n{t}"
    );
}
