//! Analytical chip-area model for the performance-density study (Fig. 9).
//!
//! The paper uses CACTI 7.0 for cache/SRAM area and counts cores, caches,
//! interconnect, and memory channels (neglecting I/O). CACTI is not
//! available offline, so this module substitutes representative 14 nm area
//! constants. The figure only requires two properties to hold, and both are
//! robust to the exact constants: (1) prefetcher SRAM is a small fraction
//! of chip area, and (2) larger metadata tables cost proportionally more
//! area, so performance density slightly discounts storage-heavy designs.

/// Area model constants (14 nm-class, mm²).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AreaModel {
    /// One core including private L1s.
    pub core_mm2: f64,
    /// SRAM density for the LLC and prefetcher metadata, mm² per MB.
    pub sram_mm2_per_mb: f64,
    /// On-chip interconnect.
    pub noc_mm2: f64,
    /// Memory channels / controllers.
    pub memory_channels_mm2: f64,
}

impl AreaModel {
    /// Default constants for the Table I chip (4 cores, 8 MB LLC, 2
    /// channels).
    pub fn default_14nm() -> Self {
        AreaModel {
            core_mm2: 8.0,
            sram_mm2_per_mb: 2.0,
            noc_mm2: 6.0,
            memory_channels_mm2: 8.0,
        }
    }

    /// Baseline chip area (no prefetcher) for `cores` cores and
    /// `llc_mb` megabytes of LLC.
    pub fn chip_mm2(&self, cores: usize, llc_mb: f64) -> f64 {
        self.core_mm2 * cores as f64
            + self.sram_mm2_per_mb * llc_mb
            + self.noc_mm2
            + self.memory_channels_mm2
    }

    /// Chip area with a prefetcher of `prefetcher_kb` metadata per core.
    pub fn chip_with_prefetcher_mm2(
        &self,
        cores: usize,
        llc_mb: f64,
        prefetcher_kb_per_core: f64,
    ) -> f64 {
        self.chip_mm2(cores, llc_mb)
            + self.sram_mm2_per_mb * (prefetcher_kb_per_core * cores as f64) / 1024.0
    }

    /// Performance-density improvement of a prefetching design over the
    /// baseline: `(ipc_pf / area_pf) / (ipc_base / area_base) - 1`.
    pub fn density_improvement(
        &self,
        cores: usize,
        llc_mb: f64,
        prefetcher_kb_per_core: f64,
        speedup: f64,
    ) -> f64 {
        let base = self.chip_mm2(cores, llc_mb);
        let with = self.chip_with_prefetcher_mm2(cores, llc_mb, prefetcher_kb_per_core);
        speedup * base / with - 1.0
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::default_14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_chip_area_is_tens_of_mm2() {
        let m = AreaModel::default_14nm();
        let a = m.chip_mm2(4, 8.0);
        assert!(a > 40.0 && a < 100.0, "chip area {a} mm2");
    }

    #[test]
    fn bingo_storage_is_a_small_area_fraction() {
        // 119 KB per core x 4 cores at 2 mm2/MB ≈ 0.93 mm2 on a ~62 mm2
        // chip: the paper's "less than 1%" claim.
        let m = AreaModel::default_14nm();
        let base = m.chip_mm2(4, 8.0);
        let with = m.chip_with_prefetcher_mm2(4, 8.0, 119.0);
        let overhead = (with - base) / base;
        assert!(overhead < 0.02, "prefetcher area overhead {overhead:.3}");
    }

    #[test]
    fn density_improvement_slightly_below_speedup() {
        let m = AreaModel::default_14nm();
        let d = m.density_improvement(4, 8.0, 119.0, 1.60);
        assert!(d < 0.60, "density gain {d:.3} must trail the 60% speedup");
        assert!(d > 0.55, "but only slightly (paper: 59%)");
    }

    #[test]
    fn zero_storage_prefetcher_matches_speedup() {
        let m = AreaModel::default_14nm();
        let d = m.density_improvement(4, 8.0, 0.0, 1.25);
        assert!((d - 0.25).abs() < 1e-12);
    }
}
