//! Differential verification harness: real prefetchers vs their oracles.
//!
//! This module is the glue between three independently written pieces —
//! the optimized prefetchers (`bingo`, `bingo-baselines`), the executable
//! specification and invariant oracles (`bingo-oracle`), and the
//! step-level trace replay (`bingo-sim::replay`). A trace is replayed
//! through the real prefetcher one event at a time; the oracle sees the
//! same stimuli plus what the real side emitted, and the first divergence
//! is reported as a [`Mismatch`] naming the event index and both sides'
//! bursts. Fuzzing drivers ([`fuzz_bingo`], [`fuzz_baseline`]) sweep
//! seeded adversarial traces over a matrix of table geometries, and
//! [`shrink_bingo_mismatch`] reduces any counterexample to a minimal
//! trace fit for `tests/corpus/`.
//!
//! For Bingo the comparison is exact and three-way: trigger classification,
//! prediction source, and the full candidate burst must all match
//! [`SpecBingo`] at every step. For the baselines the oracles check
//! per-burst invariants instead (see `bingo-oracle`'s crate docs).

use std::fmt;
use std::ops::Range;

use bingo::{Bingo, BingoConfig};
use bingo_oracle::{generate, shrink, GeneratorConfig, SpecBingo, StepOracle};
use bingo_sim::AccessInfo;
use bingo_sim::{
    BlockAddr, Pc, PrefetchEvent, PrefetchTrace, Prefetcher, RegionGeometry, ReplayStep,
    ThrottleLevel,
};

/// The first divergence found while replaying a trace against an oracle.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Name of the oracle that flagged the divergence.
    pub oracle: String,
    /// Index of the offending event within the trace.
    pub index: usize,
    /// The offending event.
    pub event: PrefetchEvent,
    /// Human-readable explanation of what diverged.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] event {} ({:?}): {}",
            self.oracle, self.index, self.event, self.detail
        )
    }
}

fn blocks_hex(blocks: &[BlockAddr]) -> String {
    let inner: Vec<String> = blocks.iter().map(|b| format!("{:#x}", b.index())).collect();
    format!("[{}]", inner.join(", "))
}

/// Replays `trace` through already-constructed real and spec Bingo
/// instances, diffing every step exactly.
///
/// Exposed separately from [`diff_bingo`] so callers can pair a spec with
/// a [`Bingo::with_faults`] instance — the fault-detection test needs
/// precisely that asymmetry.
///
/// # Errors
///
/// The first step where trigger classification, prediction source, or the
/// emitted burst differ.
///
/// # Panics
///
/// Panics if the two sides or the trace disagree on region geometry —
/// that is a harness bug, not a prefetcher bug.
pub fn diff_bingo_instances(
    real: &mut Bingo,
    spec: &mut SpecBingo,
    trace: &PrefetchTrace,
) -> Result<(), Mismatch> {
    assert_eq!(
        real.config().region,
        trace.geometry(),
        "real prefetcher geometry must match the trace"
    );
    assert_eq!(
        spec.config().region,
        trace.geometry(),
        "spec geometry must match the trace"
    );
    let g = trace.geometry();
    for (i, &event) in trace.events().iter().enumerate() {
        match event {
            PrefetchEvent::Access { pc, block } => {
                let info = AccessInfo::demand(g, Pc::new(pc), BlockAddr::new(block), i as u64);
                let got = real.step(&info);
                let want = spec.step(&info);
                if got.trigger != want.trigger
                    || got.source != want.source
                    || got.prefetches != want.prefetches
                {
                    return Err(Mismatch {
                        oracle: "SpecBingo".into(),
                        index: i,
                        event,
                        detail: format!(
                            "real: trigger={} source={:?} burst={}; \
                             spec: trigger={} source={:?} burst={}",
                            got.trigger,
                            got.source,
                            blocks_hex(&got.prefetches),
                            want.trigger,
                            want.source,
                            blocks_hex(&want.prefetches),
                        ),
                    });
                }
            }
            PrefetchEvent::Evict { block } => {
                let block = BlockAddr::new(block);
                real.on_eviction(block);
                spec.evict(block);
            }
        }
    }
    Ok(())
}

/// Replays `trace` through a fresh clean [`Bingo`] built from `cfg` and a
/// fresh [`SpecBingo`], diffing every step exactly.
///
/// # Errors
///
/// See [`diff_bingo_instances`].
///
/// # Panics
///
/// Panics if `cfg.region` does not match the trace geometry.
pub fn diff_bingo(cfg: &BingoConfig, trace: &PrefetchTrace) -> Result<(), Mismatch> {
    let mut real = Bingo::new(*cfg);
    let mut spec = SpecBingo::new(*cfg);
    diff_bingo_instances(&mut real, &mut spec, trace)
}

/// Replays `trace` through any [`Prefetcher`], feeding every step to a
/// [`StepOracle`] and stopping at the first violation.
///
/// # Errors
///
/// The first event the oracle rejects, with its explanation.
pub fn diff_with_oracle(
    prefetcher: &mut dyn Prefetcher,
    oracle: &mut dyn StepOracle,
    trace: &PrefetchTrace,
) -> Result<(), Mismatch> {
    let mut failure: Option<Mismatch> = None;
    trace.replay_with(prefetcher, |i, step| {
        let verdict = match step {
            ReplayStep::Access { info, emitted } => oracle.check_access(&info, emitted),
            ReplayStep::Evict { block } => oracle.check_eviction(block),
        };
        match verdict {
            Ok(()) => true,
            Err(detail) => {
                failure = Some(Mismatch {
                    oracle: oracle.name().to_string(),
                    index: i,
                    event: trace.events()[i],
                    detail,
                });
                false
            }
        }
    });
    match failure {
        Some(m) => Err(m),
        None => Ok(()),
    }
}

/// The deterministic throttle-level schedule the throttled differential
/// drives: a fixed dwell per rung, walking the ladder down and back up so
/// every level and both transition directions are exercised, keyed purely
/// by the event index so replays are reproducible.
pub fn throttle_schedule(step: usize) -> ThrottleLevel {
    const LADDER: [ThrottleLevel; 6] = [
        ThrottleLevel::Full,
        ThrottleLevel::RaisedVote,
        ThrottleLevel::TriggerOnly,
        ThrottleLevel::Stopped,
        ThrottleLevel::TriggerOnly,
        ThrottleLevel::RaisedVote,
    ];
    // A dwell of 7 keeps level boundaries sliding relative to the
    // generators' power-of-two burst structure.
    LADDER[(step / 7) % LADDER.len()]
}

/// `sub` appears within `sup` in order (possibly with gaps).
fn is_subsequence(sub: &[BlockAddr], sup: &[BlockAddr]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|b| it.any(|s| s == b))
}

/// Replays `trace` through a throttled real Bingo — its level driven by
/// [`throttle_schedule`] — against an *unthrottled* [`SpecBingo`],
/// checking the subtractive-throttling contract at every step:
///
/// * trigger classification matches exactly (throttling must not disturb
///   observation or training),
/// * the throttled burst is an ordered subsequence of the unthrottled
///   spec burst (throttling only ever removes candidates),
/// * at [`ThrottleLevel::Full`] the burst and prediction source match the
///   spec exactly (no residue from earlier throttled steps).
///
/// # Errors
///
/// The first step where any of the three checks fails.
///
/// # Panics
///
/// Panics if `cfg.region` does not match the trace geometry.
pub fn diff_bingo_throttled(cfg: &BingoConfig, trace: &PrefetchTrace) -> Result<(), Mismatch> {
    let mut real = Bingo::new(*cfg);
    let mut spec = SpecBingo::new(*cfg);
    assert_eq!(
        cfg.region,
        trace.geometry(),
        "config geometry must match the trace"
    );
    let g = trace.geometry();
    for (i, &event) in trace.events().iter().enumerate() {
        match event {
            PrefetchEvent::Access { pc, block } => {
                let level = throttle_schedule(i);
                real.set_throttle_level(level);
                let info = AccessInfo::demand(g, Pc::new(pc), BlockAddr::new(block), i as u64);
                let got = real.step(&info);
                let want = spec.step(&info);
                let fail = if got.trigger != want.trigger {
                    Some("trigger classification diverged under throttling")
                } else if !is_subsequence(&got.prefetches, &want.prefetches) {
                    Some("throttled burst is not a subsequence of the unthrottled spec burst")
                } else if level == ThrottleLevel::Full
                    && (got.source != want.source || got.prefetches != want.prefetches)
                {
                    Some("Full level must match the spec exactly")
                } else {
                    None
                };
                if let Some(why) = fail {
                    return Err(Mismatch {
                        oracle: "SpecBingo(throttled)".into(),
                        index: i,
                        event,
                        detail: format!(
                            "{why} at level {level}: real: trigger={} source={:?} burst={}; \
                             spec: trigger={} source={:?} burst={}",
                            got.trigger,
                            got.source,
                            blocks_hex(&got.prefetches),
                            want.trigger,
                            want.source,
                            blocks_hex(&want.prefetches),
                        ),
                    });
                }
            }
            PrefetchEvent::Evict { block } => {
                let block = BlockAddr::new(block);
                real.on_eviction(block);
                spec.evict(block);
            }
        }
    }
    Ok(())
}

/// Fuzzes throttled Bingo against the unthrottled [`SpecBingo`]: for every
/// seed, generates a trace and checks [`diff_bingo_throttled`] under every
/// [`bingo_config_variants`] geometry.
///
/// # Errors
///
/// The first (seed, variant) pair that violated the subtractive contract.
pub fn fuzz_bingo_throttled(
    gen: &GeneratorConfig,
    seeds: Range<u64>,
) -> Result<FuzzReport, Box<FuzzFailure>> {
    let mut report = FuzzReport::default();
    for seed in seeds {
        let trace = generate(gen, seed);
        for (name, cfg) in bingo_config_variants(trace.geometry()) {
            if let Err(mismatch) = diff_bingo_throttled(&cfg, &trace) {
                return Err(Box::new(FuzzFailure {
                    seed,
                    variant: name.to_string(),
                    trace,
                    mismatch,
                }));
            }
        }
        report.traces += 1;
        report.events += trace.len();
    }
    Ok(report)
}

/// The matrix of Bingo table geometries the differential fuzzer sweeps:
/// the paper's configuration plus deliberately cramped and degenerate
/// variants, because capacity pressure (evictions, filter overflow,
/// LRU tie-breaks) is where an optimized implementation diverges from a
/// naive one, and the paper-sized tables barely evict on short traces.
pub fn bingo_config_variants(region: RegionGeometry) -> Vec<(&'static str, BingoConfig)> {
    let paper = BingoConfig {
        region,
        ..BingoConfig::paper()
    };
    let small = BingoConfig {
        history_entries: 64,
        history_ways: 4,
        accumulation_entries: 4,
        ..paper
    };
    vec![
        ("paper", paper),
        ("small", small),
        (
            "strict-vote",
            BingoConfig {
                vote_threshold: 0.9,
                ..small
            },
        ),
        (
            "unanimous-vote",
            BingoConfig {
                vote_threshold: 1.0,
                ..small
            },
        ),
        (
            "train-all",
            BingoConfig {
                min_footprint_blocks: 1,
                ..small
            },
        ),
        (
            "overflow-training-only",
            BingoConfig {
                train_on_eviction: false,
                ..small
            },
        ),
    ]
}

/// A completed fuzzing sweep: how much ground it covered.
#[derive(Copy, Clone, Debug, Default)]
pub struct FuzzReport {
    /// Traces replayed without a divergence.
    pub traces: usize,
    /// Total events across those traces.
    pub events: usize,
}

/// One fuzz counterexample: the seed and trace that diverged, and how.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Generator seed that produced the failing trace.
    pub seed: u64,
    /// Name of the config variant that diverged (Bingo sweeps only).
    pub variant: String,
    /// The unshrunk failing trace.
    pub trace: PrefetchTrace,
    /// The divergence itself.
    pub mismatch: Mismatch,
}

/// Fuzzes clean Bingo against [`SpecBingo`]: for every seed in `seeds`,
/// generates a trace from `gen` and diffs it under every
/// [`bingo_config_variants`] geometry.
///
/// # Errors
///
/// The first (seed, variant) pair that diverged. Shrink it with
/// [`shrink_bingo_mismatch`] before reporting.
pub fn fuzz_bingo(
    gen: &GeneratorConfig,
    seeds: Range<u64>,
) -> Result<FuzzReport, Box<FuzzFailure>> {
    let mut report = FuzzReport::default();
    for seed in seeds {
        let trace = generate(gen, seed);
        for (name, cfg) in bingo_config_variants(trace.geometry()) {
            if let Err(mismatch) = diff_bingo(&cfg, &trace) {
                return Err(Box::new(FuzzFailure {
                    seed,
                    variant: name.to_string(),
                    trace,
                    mismatch,
                }));
            }
        }
        report.traces += 1;
        report.events += trace.len();
    }
    Ok(report)
}

/// Fuzzes one baseline prefetcher against its invariant oracle. `make` is
/// called once per trace with the trace's geometry and must return a fresh
/// (prefetcher, oracle) pair.
///
/// # Errors
///
/// The first seed whose replay violated the oracle.
pub fn fuzz_baseline(
    gen: &GeneratorConfig,
    seeds: Range<u64>,
    mut make: impl FnMut(RegionGeometry) -> (Box<dyn Prefetcher>, Box<dyn StepOracle>),
) -> Result<FuzzReport, Box<FuzzFailure>> {
    let mut report = FuzzReport::default();
    for seed in seeds {
        let trace = generate(gen, seed);
        let (mut prefetcher, mut oracle) = make(trace.geometry());
        if let Err(mismatch) = diff_with_oracle(prefetcher.as_mut(), oracle.as_mut(), &trace) {
            return Err(Box::new(FuzzFailure {
                seed,
                variant: oracle.name().to_string(),
                trace,
                mismatch,
            }));
        }
        report.traces += 1;
        report.events += trace.len();
    }
    Ok(report)
}

/// Shrinks a trace on which `diff_bingo(cfg, ..)` fails to a minimal,
/// canonicalized trace that still fails, for committing to the corpus.
///
/// # Panics
///
/// Panics if the trace does not actually diverge under `cfg` (see
/// [`bingo_oracle::shrink`]).
pub fn shrink_bingo_mismatch(cfg: &BingoConfig, trace: &PrefetchTrace) -> PrefetchTrace {
    shrink(trace, &mut |t| diff_bingo(cfg, t).is_err())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_oracle::NextLineOracle;
    use bingo_sim::NextLinePrefetcher;

    fn small_trace() -> PrefetchTrace {
        generate(&GeneratorConfig::small(), 42)
    }

    #[test]
    fn clean_bingo_matches_spec_on_a_fuzzed_trace() {
        let trace = small_trace();
        for (name, cfg) in bingo_config_variants(trace.geometry()) {
            let res = diff_bingo(&cfg, &trace);
            assert!(res.is_ok(), "variant {name}: {}", res.unwrap_err());
        }
    }

    #[test]
    fn throttle_schedule_covers_every_level_and_starts_full() {
        assert_eq!(throttle_schedule(0), ThrottleLevel::Full);
        let seen: std::collections::BTreeSet<_> = (0..100).map(throttle_schedule).collect();
        assert_eq!(seen.len(), 4, "all four levels exercised: {seen:?}");
    }

    #[test]
    fn throttled_bingo_stays_a_subset_of_the_spec_on_a_fuzzed_trace() {
        let trace = small_trace();
        for (name, cfg) in bingo_config_variants(trace.geometry()) {
            let res = diff_bingo_throttled(&cfg, &trace);
            assert!(res.is_ok(), "variant {name}: {}", res.unwrap_err());
        }
    }

    #[test]
    fn a_throttle_that_added_candidates_would_be_caught() {
        // Drive the throttled diff with a spec built strictly *tighter*
        // than the real side: the real bursts are then supersets, so the
        // subsequence check must fire — proving the harness can fail.
        let caught = GeneratorConfig::all().iter().any(|gen| {
            (0..30).any(|seed| {
                let trace = generate(gen, seed);
                let loose = BingoConfig {
                    region: trace.geometry(),
                    vote_threshold: 0.2,
                    ..BingoConfig::paper()
                };
                let tight = BingoConfig {
                    vote_threshold: 1.0,
                    ..loose
                };
                let mut real = Bingo::new(loose);
                let mut spec = SpecBingo::new(tight);
                let g = trace.geometry();
                trace
                    .events()
                    .iter()
                    .enumerate()
                    .any(|(i, &event)| match event {
                        PrefetchEvent::Access { pc, block } => {
                            real.set_throttle_level(throttle_schedule(i));
                            let info =
                                AccessInfo::demand(g, Pc::new(pc), BlockAddr::new(block), i as u64);
                            let got = real.step(&info);
                            let want = spec.step(&info);
                            !is_subsequence(&got.prefetches, &want.prefetches)
                        }
                        PrefetchEvent::Evict { block } => {
                            let block = BlockAddr::new(block);
                            real.on_eviction(block);
                            spec.evict(block);
                            false
                        }
                    })
            })
        });
        assert!(
            caught,
            "no trace ever separated a loose real from a tight spec"
        );
    }

    #[test]
    fn faulty_bingo_is_caught_by_the_spec() {
        use bingo_sim::FaultPlan;
        // A fault rate this high corrupts some footprint within a few
        // hundred events; the diff must notice.
        let gen = GeneratorConfig::small();
        let caught = (0..20).any(|seed| {
            let trace = generate(&gen, seed);
            let cfg = BingoConfig {
                region: trace.geometry(),
                ..BingoConfig::paper()
            };
            let mut real = Bingo::with_faults(cfg, FaultPlan::uniform(7, 0.2));
            let mut spec = SpecBingo::new(cfg);
            diff_bingo_instances(&mut real, &mut spec, &trace).is_err()
        });
        assert!(caught, "20 fuzzed traces never exposed a 20% fault rate");
    }

    #[test]
    fn oracle_diff_reports_the_failing_event_index() {
        let mut trace = PrefetchTrace::new(2048);
        trace.access(0x400, 100);
        trace.access(0x400, 101);
        // Degree-2 prefetcher checked against a degree-1 oracle: the very
        // first access diverges.
        let mut p = NextLinePrefetcher::new(2);
        let mut o = NextLineOracle::new(1);
        let m = diff_with_oracle(&mut p, &mut o, &trace).unwrap_err();
        assert_eq!(m.index, 0);
        assert_eq!(m.oracle, "NextLineMirror");
        assert!(m.to_string().contains("event 0"), "{m}");
    }

    #[test]
    fn fuzz_report_counts_cover_the_sweep() {
        let report = fuzz_bingo(&GeneratorConfig::tiny_regions(), 0..3).expect("no divergence");
        assert_eq!(report.traces, 3);
        assert_eq!(report.events, 3 * GeneratorConfig::tiny_regions().events);
    }

    #[test]
    fn shrink_bingo_mismatch_produces_a_minimal_failing_trace() {
        // Manufacture a "bug" by diffing a spec against a real instance
        // with a different vote threshold.
        let gen = GeneratorConfig::small();
        let (trace, strict) = (0..50)
            .find_map(|seed| {
                let t = generate(&gen, seed);
                let strict = BingoConfig {
                    region: t.geometry(),
                    vote_threshold: 0.9,
                    ..BingoConfig::paper()
                };
                let loose = BingoConfig {
                    vote_threshold: 0.2,
                    ..strict
                };
                let mut real = Bingo::new(loose);
                let mut spec = SpecBingo::new(strict);
                diff_bingo_instances(&mut real, &mut spec, &t)
                    .is_err()
                    .then_some((t, strict))
            })
            .expect("some seed separates 20% from 90% voting");
        let mut fails = |t: &PrefetchTrace| {
            let loose = BingoConfig {
                vote_threshold: 0.2,
                ..strict
            };
            let mut real = Bingo::new(loose);
            let mut spec = SpecBingo::new(strict);
            diff_bingo_instances(&mut real, &mut spec, t).is_err()
        };
        let small = shrink(&trace, &mut fails);
        assert!(fails(&small));
        assert!(small.len() < trace.len());
    }
}
