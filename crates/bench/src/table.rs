//! Plain-text table / series formatting for the experiment binaries.
//!
//! Every figure binary prints its data as an aligned text table with the
//! same rows/series the paper's figure shows, so results can be diffed
//! against EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<width$}", c, width = widths[i]);
                } else {
                    let _ = write!(out, "  {:>width$}", c, width = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

impl Table {
    /// Renders the table as RFC 4180-ish CSV (quotes fields containing
    /// commas or quotes), for downstream plotting.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Writes the CSV rendering to `path` when the process was launched
    /// with `--csv <dir>`; returns whether a file was written.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be written to.
    pub fn write_csv_if_requested(&self, name: &str) -> bool {
        let args: Vec<String> = std::env::args().collect();
        let Some(pos) = args.iter().position(|a| a == "--csv") else {
            return false;
        };
        let dir = args.get(pos + 1).cloned().unwrap_or_else(|| ".".into());
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create csv directory {dir:?}: {e}"));
        std::fs::write(&path, self.to_csv())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
        true
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Workload", "MPKI"]);
        t.row(vec!["em3d", "32.4"]);
        t.row(vec!["Data Serving", "6.7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Workload"));
        assert!(lines[2].contains("em3d"));
        // Right-aligned numeric column: both numbers end at same offset.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn pct_and_f2() {
        assert_eq!(pct(0.634), "63.4%");
        assert_eq!(f2(1.23456), "1.23");
    }

    #[test]
    fn csv_escapes_fields() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["plain", "with,comma"]);
        t.row(vec!["with\"quote", "x"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn csv_round_trips_simple_tables() {
        let mut t = Table::new(vec!["Workload", "MPKI"]);
        t.row(vec!["em3d", "32.4"]);
        assert_eq!(t.to_csv(), "Workload,MPKI\nem3d,32.4\n");
    }
}
