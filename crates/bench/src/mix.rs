//! Declarative multi-core workload mixes and the contention capacity
//! search.
//!
//! A *mix* assigns each core of an N-core machine its own workload,
//! prefetcher, and instruction-budget scale. Mixes live in committed
//! config files with a deliberately tiny line-oriented grammar (no
//! dependencies, mirroring the trace-container and checkpoint formats):
//!
//! ```text
//! # comment
//! mix polite-vs-storm
//! core 0 workload=streaming prefetcher=bingo
//! core 1 workload=stress-storm prefetcher=bingo scale=50%
//! ramp initial=2 increment=2 max=8
//! end
//! ```
//!
//! Every parse failure is a typed [`MixError`] carrying the 1-based line
//! number — a torn or hand-mangled config aborts loudly, never panics,
//! and never half-loads.
//!
//! On top of the mix type sit the contention primitives the capacity
//! search is built from: shared-resource [`Pressure`] presets,
//! per-core [`FairnessReport`]s (min/max IPC ratio, slowdown versus a
//! solo run on the same machine), and the capacity-knee rule
//! ([`find_knee`]) that decides how many cores a mix scales to before
//! shared-resource contention eats the added throughput.

use std::fmt;
use std::io;
use std::path::Path;

use bingo_sim::{SimResult, SystemConfig};
use bingo_workloads::Workload;

use crate::runner::PrefetcherKind;

/// One level of memory-system resource pressure applied on top of a
/// [`SystemConfig`]: DRAM channel count, per-transfer occupancy, and the
/// prefetch-queue bound. The paper machine itself is the `NONE` preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pressure {
    /// Short name used in report rows and checkpoint-key suffixes.
    pub name: &'static str,
    /// DRAM channels (the paper machine has 2).
    pub channels: usize,
    /// Channel occupancy per 64 B transfer (the paper machine: 14 cycles).
    pub transfer_cycles: u64,
    /// Prefetch-queue bound; `None` leaves the queue unbounded (paper
    /// machine).
    pub queue: Option<usize>,
}

impl Pressure {
    /// The unmodified paper machine: 2 channels, 14-cycle transfers,
    /// unbounded prefetch queue.
    pub const NONE: Pressure = Pressure {
        name: "none",
        channels: 2,
        transfer_cycles: 14,
        queue: None,
    };

    /// Half the paper's DRAM bandwidth with a bounded prefetch queue.
    pub const CONSTRAINED: Pressure = Pressure {
        name: "constrained",
        channels: 1,
        transfer_cycles: 28,
        queue: Some(16),
    };

    /// Roughly a quarter of the paper's bandwidth; the queue bound
    /// tightens alongside so both drop paths (bandwidth contention and
    /// queue-full) carry load.
    pub const SCARCE: Pressure = Pressure {
        name: "scarce",
        channels: 1,
        transfer_cycles: 56,
        queue: Some(8),
    };

    /// The capacity-search ladder, mildest first.
    pub const LADDER: [Pressure; 3] = [Pressure::NONE, Pressure::CONSTRAINED, Pressure::SCARCE];

    /// Applies this pressure level to a machine configuration. The `NONE`
    /// preset restates the paper defaults, so applying it to a paper
    /// config is a no-op.
    pub fn apply(&self, cfg: &mut SystemConfig) {
        cfg.dram.channels = self.channels;
        cfg.dram.transfer_cycles = self.transfer_cycles;
        cfg.prefetch_queue_depth = self.queue;
    }

    /// Checkpoint/stats key suffix. `NONE` contributes nothing, so
    /// un-pressured mix keys stay byte-for-byte stable (the same rule the
    /// telemetry and throttle suffixes follow).
    pub fn key_suffix(&self) -> String {
        if *self == Pressure::NONE {
            String::new()
        } else {
            format!("/pressure={}", self.name)
        }
    }
}

/// A mix-config parse failure. Every variant names the 1-based line it
/// was detected on, so a bad committed config points straight at the
/// offending text.
#[derive(Debug)]
pub enum MixError {
    /// Underlying I/O failure reading the config file.
    Io(io::Error),
    /// A line started with a word that is not a directive.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The unrecognized first word.
        directive: String,
    },
    /// `core`, `ramp`, or `end` appeared outside a `mix … end` block.
    OutsideMix {
        /// 1-based line number.
        line: usize,
        /// The directive that appeared too early.
        directive: String,
    },
    /// A `mix` directive opened while the previous block was still open.
    NestedMix {
        /// 1-based line number.
        line: usize,
    },
    /// A directive was missing a required token or `key=value` field.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The field that was absent.
        field: &'static str,
    },
    /// A field's value failed to parse or was out of range.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The field whose value is bad.
        field: &'static str,
        /// The offending text.
        value: String,
    },
    /// A `core` or `ramp` field name is not recognized.
    UnknownField {
        /// 1-based line number.
        line: usize,
        /// The unrecognized field name.
        field: String,
    },
    /// Two mixes in one file share a name.
    DuplicateMixName {
        /// 1-based line number of the second definition.
        line: usize,
        /// The repeated name.
        name: String,
    },
    /// The same core id was assigned twice in one mix.
    DuplicateCore {
        /// 1-based line number of the second assignment.
        line: usize,
        /// The repeated core id.
        core: usize,
    },
    /// Core ids are not contiguous from 0 (a slot has no assignment).
    MissingCore {
        /// 1-based line number of the `end` directive.
        line: usize,
        /// The first unassigned core id.
        core: usize,
    },
    /// `workload=` named something [`Workload::from_slug`] rejects.
    UnknownWorkload {
        /// 1-based line number.
        line: usize,
        /// The unrecognized workload slug.
        name: String,
    },
    /// `prefetcher=` named something [`PrefetcherKind::from_slug`]
    /// rejects.
    UnknownPrefetcher {
        /// 1-based line number.
        line: usize,
        /// The unrecognized prefetcher slug.
        name: String,
    },
    /// A mix block closed without a single `core` line.
    ZeroCores {
        /// 1-based line number of the `end` directive.
        line: usize,
        /// The empty mix's name.
        name: String,
    },
    /// The input ended inside a `mix … end` block (a torn file).
    UnterminatedMix {
        /// 1-based line number of the `mix` directive left open.
        line: usize,
        /// The unterminated mix's name.
        name: String,
    },
    /// The input contained no mix at all — an empty or fully-torn config
    /// is indistinguishable from a wrong path, so it is an error rather
    /// than an empty grid.
    NoMixes,
}

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixError::Io(e) => write!(f, "mix config i/o error: {e}"),
            MixError::UnknownDirective { line, directive } => {
                write!(f, "line {line}: unknown directive {directive:?}")
            }
            MixError::OutsideMix { line, directive } => {
                write!(f, "line {line}: {directive:?} outside a mix block")
            }
            MixError::NestedMix { line } => {
                write!(
                    f,
                    "line {line}: mix block opened before the previous one ended"
                )
            }
            MixError::MissingField { line, field } => {
                write!(f, "line {line}: missing {field}")
            }
            MixError::BadValue { line, field, value } => {
                write!(f, "line {line}: bad {field} value {value:?}")
            }
            MixError::UnknownField { line, field } => {
                write!(f, "line {line}: unknown field {field:?}")
            }
            MixError::DuplicateMixName { line, name } => {
                write!(f, "line {line}: duplicate mix name {name:?}")
            }
            MixError::DuplicateCore { line, core } => {
                write!(f, "line {line}: core {core} assigned twice")
            }
            MixError::MissingCore { line, core } => {
                write!(
                    f,
                    "line {line}: core {core} has no assignment (ids must be contiguous from 0)"
                )
            }
            MixError::UnknownWorkload { line, name } => {
                write!(f, "line {line}: unknown workload {name:?}")
            }
            MixError::UnknownPrefetcher { line, name } => {
                write!(f, "line {line}: unknown prefetcher {name:?}")
            }
            MixError::ZeroCores { line, name } => {
                write!(f, "line {line}: mix {name:?} declares zero cores")
            }
            MixError::UnterminatedMix { line, name } => {
                write!(
                    f,
                    "line {line}: mix {name:?} never reached its end directive"
                )
            }
            MixError::NoMixes => write!(f, "config contains no mixes"),
        }
    }
}

impl std::error::Error for MixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MixError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// One core slot of a mix: which workload's instruction stream it runs,
/// which prefetcher guards its L1, and what fraction of the grid's
/// instruction budget it commits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixAssignment {
    /// The workload whose per-core source this slot replays.
    pub workload: Workload,
    /// The prefetcher instance attached to this core's L1.
    pub prefetcher: PrefetcherKind,
    /// Instruction budget as an integer percentage of the grid's full
    /// per-core budget (100 = the full budget). Integer so scaled targets
    /// are exact and platform-independent.
    pub scale_percent: u32,
}

impl MixAssignment {
    /// The slot's committed-instruction target given the grid's full
    /// per-core budget.
    pub fn instructions(&self, full_budget: u64) -> u64 {
        full_budget * u64::from(self.scale_percent) / 100
    }

    /// Canonical `c<slot>=<workload>+<Prefetcher>[*<pct>%]` description
    /// of this assignment on core `slot` — the building block of mix
    /// checkpoint/stats keys (the `*…%` suffix appears only for scaled
    /// slots, so unscaled keys stay compact and stable).
    pub fn slot_spec(&self, slot: usize) -> String {
        let mut out = format!(
            "c{slot}={}+{}",
            self.workload.slug(),
            self.prefetcher.name()
        );
        if self.scale_percent != 100 {
            out.push_str(&format!("*{}%", self.scale_percent));
        }
        out
    }
}

/// A core-count ramp for the capacity search: run the mix at `initial`,
/// `initial + increment`, … cores, stopping at `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ramp {
    /// First core count evaluated (≥ 1).
    pub initial: usize,
    /// Cores added per step (≥ 1).
    pub increment: usize,
    /// Largest core count evaluated (≥ `initial`).
    pub max: usize,
}

impl Ramp {
    /// The core counts the search visits, ascending. `initial` is always
    /// included; counts past `max` are not.
    pub fn steps(&self) -> Vec<usize> {
        let mut steps = Vec::new();
        let mut n = self.initial;
        while n <= self.max {
            steps.push(n);
            n += self.increment;
        }
        steps
    }
}

/// A parsed workload mix: a name, one [`MixAssignment`] per core id
/// (contiguous from 0), and an optional capacity-search [`Ramp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MixConfig {
    /// The mix's name (`[A-Za-z0-9_-]+`) — embedded in checkpoint/stats
    /// keys and report rows.
    pub name: String,
    /// Per-core assignments; index is the core id.
    pub cores: Vec<MixAssignment>,
    /// Optional core-count ramp for the capacity search.
    pub ramp: Option<Ramp>,
}

impl MixConfig {
    /// The number of cores the mix declares.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The assignment of core `core` on a machine of any size: a ramped
    /// run replicates the declared pattern cyclically, so a 2-slot mix at
    /// 6 cores runs three copies of the pattern, each core keeping its
    /// own seed and address space via
    /// [`Workload::source_for_core`].
    pub fn assignment(&self, core: usize) -> MixAssignment {
        self.cores[core % self.cores.len()]
    }

    /// Canonical single-line description of the declared slots, used as
    /// the mix's identity inside checkpoint/stats keys:
    /// `c0=streaming+Bingo,c1=stress-storm+None*50%` (the `*…%` suffix
    /// appears only for scaled slots, so unscaled keys stay compact and
    /// stable).
    pub fn spec(&self) -> String {
        let specs: Vec<String> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, a)| a.slot_spec(i))
            .collect();
        specs.join(",")
    }

    /// Parses every mix in a config file. See the module docs for the
    /// grammar.
    ///
    /// # Errors
    ///
    /// [`MixError::Io`] if the file cannot be read; otherwise any of the
    /// typed parse failures, each carrying its 1-based line number.
    pub fn parse_file(path: impl AsRef<Path>) -> Result<Vec<MixConfig>, MixError> {
        let text = std::fs::read_to_string(path).map_err(MixError::Io)?;
        Self::parse_str(&text)
    }

    /// Parses every mix in the given text. See the module docs for the
    /// grammar.
    ///
    /// # Errors
    ///
    /// Any of the typed [`MixError`] parse failures, each carrying its
    /// 1-based line number.
    pub fn parse_str(text: &str) -> Result<Vec<MixConfig>, MixError> {
        let mut mixes: Vec<MixConfig> = Vec::new();
        // (name, start line, per-core assignments as (line, core, a), ramp)
        let mut open: Option<OpenMix> = None;

        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut tokens = content.split_whitespace();
            let directive = tokens.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = tokens.collect();
            match directive {
                "mix" => {
                    if open.is_some() {
                        return Err(MixError::NestedMix { line });
                    }
                    let name = match rest.as_slice() {
                        [name] => (*name).to_string(),
                        [] => {
                            return Err(MixError::MissingField {
                                line,
                                field: "mix name",
                            })
                        }
                        _ => {
                            return Err(MixError::BadValue {
                                line,
                                field: "mix name",
                                value: rest.join(" "),
                            })
                        }
                    };
                    if !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                    {
                        return Err(MixError::BadValue {
                            line,
                            field: "mix name",
                            value: name,
                        });
                    }
                    if mixes.iter().any(|m| m.name == name) {
                        return Err(MixError::DuplicateMixName { line, name });
                    }
                    open = Some(OpenMix {
                        name,
                        start_line: line,
                        cores: Vec::new(),
                        ramp: None,
                    });
                }
                "core" => {
                    let block = open.as_mut().ok_or(MixError::OutsideMix {
                        line,
                        directive: directive.to_string(),
                    })?;
                    let (core, assignment) = parse_core(line, &rest)?;
                    if block.cores.iter().any(|&(id, _)| id == core) {
                        return Err(MixError::DuplicateCore { line, core });
                    }
                    block.cores.push((core, assignment));
                }
                "ramp" => {
                    let block = open.as_mut().ok_or(MixError::OutsideMix {
                        line,
                        directive: directive.to_string(),
                    })?;
                    if block.ramp.is_some() {
                        return Err(MixError::BadValue {
                            line,
                            field: "ramp",
                            value: "declared twice".to_string(),
                        });
                    }
                    block.ramp = Some(parse_ramp(line, &rest)?);
                }
                "end" => {
                    let block = open.take().ok_or(MixError::OutsideMix {
                        line,
                        directive: directive.to_string(),
                    })?;
                    mixes.push(block.close(line)?);
                }
                other => {
                    return Err(MixError::UnknownDirective {
                        line,
                        directive: other.to_string(),
                    })
                }
            }
        }
        if let Some(block) = open {
            return Err(MixError::UnterminatedMix {
                line: block.start_line,
                name: block.name,
            });
        }
        if mixes.is_empty() {
            return Err(MixError::NoMixes);
        }
        Ok(mixes)
    }
}

/// A `mix … end` block mid-parse.
struct OpenMix {
    name: String,
    start_line: usize,
    cores: Vec<(usize, MixAssignment)>,
    ramp: Option<Ramp>,
}

impl OpenMix {
    /// Validates the finished block at its `end` line: at least one core,
    /// ids contiguous from 0.
    fn close(self, end_line: usize) -> Result<MixConfig, MixError> {
        if self.cores.is_empty() {
            return Err(MixError::ZeroCores {
                line: end_line,
                name: self.name,
            });
        }
        let mut cores = self.cores;
        cores.sort_by_key(|&(id, _)| id);
        for (expect, &(id, _)) in cores.iter().enumerate() {
            if id != expect {
                return Err(MixError::MissingCore {
                    line: end_line,
                    core: expect,
                });
            }
        }
        Ok(MixConfig {
            name: self.name,
            cores: cores.into_iter().map(|(_, a)| a).collect(),
            ramp: self.ramp,
        })
    }
}

/// Parses `core <id> workload=<slug> prefetcher=<slug> [scale=<pct>%]`.
fn parse_core(line: usize, rest: &[&str]) -> Result<(usize, MixAssignment), MixError> {
    let (id_token, fields) = rest.split_first().ok_or(MixError::MissingField {
        line,
        field: "core id",
    })?;
    let core: usize = id_token.parse().map_err(|_| MixError::BadValue {
        line,
        field: "core id",
        value: (*id_token).to_string(),
    })?;
    let mut workload: Option<Workload> = None;
    let mut prefetcher: Option<PrefetcherKind> = None;
    let mut scale_percent: u32 = 100;
    for field in fields {
        let (key, value) = split_field(line, field)?;
        match key {
            "workload" => {
                workload =
                    Some(
                        Workload::from_slug(value).ok_or_else(|| MixError::UnknownWorkload {
                            line,
                            name: value.to_string(),
                        })?,
                    );
            }
            "prefetcher" => {
                prefetcher = Some(PrefetcherKind::from_slug(value).ok_or_else(|| {
                    MixError::UnknownPrefetcher {
                        line,
                        name: value.to_string(),
                    }
                })?);
            }
            "scale" => {
                let digits = value.strip_suffix('%').unwrap_or(value);
                let pct: u32 = digits.parse().map_err(|_| MixError::BadValue {
                    line,
                    field: "scale",
                    value: value.to_string(),
                })?;
                if pct == 0 || pct > 100 {
                    return Err(MixError::BadValue {
                        line,
                        field: "scale",
                        value: value.to_string(),
                    });
                }
                scale_percent = pct;
            }
            other => {
                return Err(MixError::UnknownField {
                    line,
                    field: other.to_string(),
                })
            }
        }
    }
    let workload = workload.ok_or(MixError::MissingField {
        line,
        field: "workload",
    })?;
    let prefetcher = prefetcher.ok_or(MixError::MissingField {
        line,
        field: "prefetcher",
    })?;
    Ok((
        core,
        MixAssignment {
            workload,
            prefetcher,
            scale_percent,
        },
    ))
}

/// Parses `ramp initial=<n> increment=<n> max=<n>`.
fn parse_ramp(line: usize, rest: &[&str]) -> Result<Ramp, MixError> {
    let mut initial: Option<usize> = None;
    let mut increment: Option<usize> = None;
    let mut max: Option<usize> = None;
    for field in rest {
        let (key, value) = split_field(line, field)?;
        let slot = match key {
            "initial" => &mut initial,
            "increment" => &mut increment,
            "max" => &mut max,
            other => {
                return Err(MixError::UnknownField {
                    line,
                    field: other.to_string(),
                })
            }
        };
        let n: usize = value.parse().map_err(|_| MixError::BadValue {
            line,
            field: "ramp",
            value: value.to_string(),
        })?;
        if n == 0 {
            return Err(MixError::BadValue {
                line,
                field: "ramp",
                value: value.to_string(),
            });
        }
        *slot = Some(n);
    }
    let initial = initial.ok_or(MixError::MissingField {
        line,
        field: "initial",
    })?;
    let increment = increment.ok_or(MixError::MissingField {
        line,
        field: "increment",
    })?;
    let max = max.ok_or(MixError::MissingField { line, field: "max" })?;
    if max < initial {
        return Err(MixError::BadValue {
            line,
            field: "max",
            value: max.to_string(),
        });
    }
    Ok(Ramp {
        initial,
        increment,
        max,
    })
}

/// Splits one `key=value` token.
fn split_field(line: usize, token: &str) -> Result<(&str, &str), MixError> {
    token.split_once('=').ok_or(MixError::BadValue {
        line,
        field: "field",
        value: token.to_string(),
    })
}

/// Per-core fairness of one mix run: who got what share of the machine.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Committed IPC of each core in the mix run.
    pub core_ipcs: Vec<f64>,
    /// Sum of the per-core IPCs — the machine's aggregate throughput.
    pub aggregate_ipc: f64,
    /// `min(core IPC) / max(core IPC)`; 1.0 is perfectly fair, small
    /// values mean some core is starved.
    pub min_max_ipc_ratio: f64,
    /// Per-core slowdown versus its solo run (`solo IPC / mix IPC`, same
    /// shared resources, machine to itself); ≥ 1.0 means contention cost.
    pub slowdowns: Vec<f64>,
}

impl FairnessReport {
    /// Computes the fairness of a mix run given each core's solo result
    /// (the identical instruction stream alone on a 1-core machine with
    /// the same shared resources). `solos[i]` pairs with mix core `i`.
    ///
    /// # Panics
    ///
    /// Panics if the solo count does not match the mix's core count.
    pub fn compute(mix: &SimResult, solos: &[SimResult]) -> FairnessReport {
        let core_ipcs = mix.core_ipcs();
        assert_eq!(solos.len(), core_ipcs.len(), "one solo run per mix core");
        let slowdowns = core_ipcs
            .iter()
            .zip(solos)
            .map(|(&mix_ipc, solo)| {
                let solo_ipc = solo.core_ipcs().iter().sum::<f64>();
                if mix_ipc == 0.0 {
                    f64::INFINITY
                } else {
                    solo_ipc / mix_ipc
                }
            })
            .collect();
        FairnessReport {
            aggregate_ipc: core_ipcs.iter().sum(),
            min_max_ipc_ratio: mix.min_max_ipc_ratio(),
            core_ipcs,
            slowdowns,
        }
    }

    /// The worst per-core slowdown — the most-starved core's cost.
    pub fn max_slowdown(&self) -> f64 {
        self.slowdowns.iter().cloned().fold(1.0_f64, f64::max)
    }
}

/// Marginal-throughput floor of the capacity-knee rule: a ramp step
/// "still scales" while each added core contributes at least this
/// fraction of the first step's per-core IPC.
pub const KNEE_FRACTION: f64 = 0.5;

/// Finds the capacity knee of a ramp: `points` is `(cores,
/// aggregate IPC)` ascending in cores, and the knee is the last core
/// count reached before a step whose *marginal* IPC per added core falls
/// below [`KNEE_FRACTION`] of the first point's per-core IPC. If every
/// step keeps scaling, the knee is the largest count measured.
///
/// # Panics
///
/// Panics on an empty or unsorted ramp.
pub fn find_knee(points: &[(usize, f64)]) -> usize {
    assert!(!points.is_empty(), "capacity search measured no points");
    let (first_cores, first_ipc) = points[0];
    assert!(first_cores > 0, "a ramp starts at one core or more");
    let base_per_core = first_ipc / first_cores as f64;
    let mut knee = first_cores;
    for pair in points.windows(2) {
        let (prev_cores, prev_ipc) = pair[0];
        let (cores, ipc) = pair[1];
        assert!(cores > prev_cores, "ramp points must ascend");
        let marginal = (ipc - prev_ipc) / (cores - prev_cores) as f64;
        if marginal < KNEE_FRACTION * base_per_core {
            return knee;
        }
        knee = cores;
    }
    knee
}

/// One measured step of a capacity search, ready for the JSON report.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityCell {
    /// Core count of this step.
    pub cores: usize,
    /// Fairness of the mix run at this step.
    pub fairness: FairnessReport,
}

/// The capacity search of one (mix, pressure) pair: every ramp step's
/// fairness plus the knee the steps imply.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitySearch {
    /// The mix's name.
    pub mix: String,
    /// The pressure level's name.
    pub pressure: &'static str,
    /// Every measured ramp step, ascending in cores.
    pub steps: Vec<CapacityCell>,
    /// The capacity knee per [`find_knee`].
    pub knee: usize,
}

impl CapacitySearch {
    /// Builds the search summary from measured steps, computing the knee.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or not ascending in cores.
    pub fn from_steps(mix: &str, pressure: &'static str, steps: Vec<CapacityCell>) -> Self {
        let points: Vec<(usize, f64)> = steps
            .iter()
            .map(|s| (s.cores, s.fairness.aggregate_ipc))
            .collect();
        let knee = find_knee(&points);
        CapacitySearch {
            mix: mix.to_string(),
            pressure,
            steps,
            knee,
        }
    }

    /// One JSON object describing the search — hand-rolled like every
    /// other export in this repo, floats in plain decimal (this artifact
    /// is for humans and CI plots, not bit-exact resume).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"mix\":\"{}\",\"pressure\":\"{}\",\"knee\":{},\"steps\":[",
            self.mix, self.pressure, self.knee
        ));
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"cores\":{},\"aggregate_ipc\":{:.6},\"min_max_ipc_ratio\":{:.6},\"max_slowdown\":{:.6},\"core_ipcs\":[{}],\"slowdowns\":[{}]}}",
                step.cores,
                step.fairness.aggregate_ipc,
                step.fairness.min_max_ipc_ratio,
                step.fairness.max_slowdown(),
                join_f64(&step.fairness.core_ipcs),
                join_f64(&step.fairness.slowdowns),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Formats a float slice as comma-separated JSON numbers.
fn join_f64(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:.6}"))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# two committed mixes
mix polite-vs-storm
core 0 workload=streaming prefetcher=bingo
core 1 workload=stress-storm prefetcher=bingo scale=50%
ramp initial=2 increment=2 max=6
end

mix solo-baseline # trailing comment
core 0 workload=data-serving prefetcher=none
end
";

    #[test]
    fn parses_a_two_mix_file() {
        let mixes = MixConfig::parse_str(GOOD).unwrap();
        assert_eq!(mixes.len(), 2);
        let m = &mixes[0];
        assert_eq!(m.name, "polite-vs-storm");
        assert_eq!(m.core_count(), 2);
        assert_eq!(m.cores[0].workload, Workload::Streaming);
        assert_eq!(m.cores[0].prefetcher, PrefetcherKind::Bingo);
        assert_eq!(m.cores[0].scale_percent, 100);
        assert_eq!(m.cores[1].workload, Workload::StressStorm);
        assert_eq!(m.cores[1].scale_percent, 50);
        assert_eq!(
            m.ramp,
            Some(Ramp {
                initial: 2,
                increment: 2,
                max: 6
            })
        );
        assert_eq!(mixes[1].name, "solo-baseline");
        assert_eq!(mixes[1].cores[0].prefetcher, PrefetcherKind::None);
        assert_eq!(mixes[1].ramp, None);
    }

    #[test]
    fn spec_is_compact_and_marks_scaled_slots() {
        let mixes = MixConfig::parse_str(GOOD).unwrap();
        assert_eq!(
            mixes[0].spec(),
            "c0=streaming+Bingo,c1=stress-storm+Bingo*50%"
        );
        assert_eq!(mixes[1].spec(), "c0=data-serving+None");
    }

    #[test]
    fn assignment_replicates_cyclically() {
        let mixes = MixConfig::parse_str(GOOD).unwrap();
        let m = &mixes[0];
        assert_eq!(m.assignment(0), m.cores[0]);
        assert_eq!(m.assignment(1), m.cores[1]);
        assert_eq!(m.assignment(2), m.cores[0]);
        assert_eq!(m.assignment(5), m.cores[1]);
    }

    #[test]
    fn ramp_steps_stop_at_max() {
        let r = Ramp {
            initial: 2,
            increment: 2,
            max: 7,
        };
        assert_eq!(r.steps(), vec![2, 4, 6]);
        let r1 = Ramp {
            initial: 1,
            increment: 3,
            max: 1,
        };
        assert_eq!(r1.steps(), vec![1]);
    }

    #[test]
    fn knee_is_last_point_that_still_scales() {
        // Perfect scaling: knee at the largest measured count.
        assert_eq!(find_knee(&[(1, 1.0), (2, 2.0), (4, 4.0)]), 4);
        // Collapse at 4 cores: the 2→4 step adds 0.1 IPC over 2 cores,
        // far below half the 1.0 base per-core IPC.
        assert_eq!(find_knee(&[(1, 1.0), (2, 1.9), (4, 2.0)]), 2);
        // Single point: the knee is that point.
        assert_eq!(find_knee(&[(2, 1.4)]), 2);
    }

    #[test]
    fn pressure_none_is_the_paper_machine() {
        let mut cfg = SystemConfig::paper();
        let reference = SystemConfig::paper();
        Pressure::NONE.apply(&mut cfg);
        assert_eq!(cfg.dram.channels, reference.dram.channels);
        assert_eq!(cfg.dram.transfer_cycles, reference.dram.transfer_cycles);
        assert_eq!(cfg.prefetch_queue_depth, reference.prefetch_queue_depth);
        assert_eq!(Pressure::NONE.key_suffix(), "");
        assert_eq!(Pressure::SCARCE.key_suffix(), "/pressure=scarce");
    }

    #[test]
    fn scaled_instruction_targets_are_exact() {
        let a = MixAssignment {
            workload: Workload::Streaming,
            prefetcher: PrefetcherKind::Bingo,
            scale_percent: 50,
        };
        assert_eq!(a.instructions(1_000_000), 500_000);
        let full = MixAssignment {
            scale_percent: 100,
            ..a
        };
        assert_eq!(full.instructions(999_999), 999_999);
    }

    // Error paths have a dedicated integration suite
    // (crates/bench/tests/mix_parser.rs); these two lock the torn-file
    // and empty-file behavior at the unit level.
    #[test]
    fn torn_file_names_the_open_mix() {
        let torn = "mix half\ncore 0 workload=zeus prefetcher=bingo\n";
        match MixConfig::parse_str(torn) {
            Err(MixError::UnterminatedMix { line: 1, name }) => assert_eq!(name, "half"),
            other => panic!("expected UnterminatedMix, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_an_error_not_an_empty_grid() {
        assert!(matches!(
            MixConfig::parse_str("# only a comment\n"),
            Err(MixError::NoMixes)
        ));
    }
}
