//! Machine-readable bench records: the perf-trajectory file format.
//!
//! The two `harness = false` bench binaries emit one JSON line per timed
//! case — `{"key":..,"unit":..,"median":..,"lo":..,"hi":..,"samples":..}`
//! — into the file named by `BINGO_BENCH_JSON`. The committed snapshot
//! (`BENCH_simulator.json` at the repo root) pins the current performance
//! baseline; the `bench_compare` binary diffs a fresh candidate against it
//! with a noise threshold and fails CI on regressions.
//!
//! Writing follows the same discipline as [`crate::stats_export`]: errors
//! are loud (a run asked to record measurements must not silently drop
//! them) and a key is recorded once per writer (re-runs of a case inside
//! one process dedupe instead of double-reporting). Unlike the stats
//! export, the target file is *merged*, not truncated: both bench binaries
//! write to the one snapshot file, so a writer loads existing records,
//! replaces only the keys it re-measured, and atomically rewrites the
//! whole file via a temp-file rename — a crashed writer can never leave a
//! half-written snapshot behind.
//!
//! The `unit` string doubles as the comparison direction: units ending in
//! `/s` are throughputs (higher is better); everything else (`ms/run`,
//! `ns/op`) is a cost (lower is better).

use std::collections::HashSet;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Environment variable naming the bench-record output file.
pub const BENCH_JSON_ENV: &str = "BINGO_BENCH_JSON";

/// Environment variable overriding the regression threshold of
/// `bench_compare` (a fraction, e.g. `0.15`).
pub const BENCH_THRESHOLD_ENV: &str = "BINGO_BENCH_THRESHOLD";

/// Key of the host-speed calibration case every bench binary records.
///
/// The snapshot is a file of absolute times, but the machine that
/// produced it is not the machine checking against it — a different
/// runner class, or the same shared box under different co-tenant load,
/// shifts *every* case by a common factor. The calibration case is a
/// fixed CPU-bound spin whose time tracks that common factor;
/// `bench_compare` divides it out before applying the threshold, so the
/// gate measures the simulator against the host, not the host against
/// itself.
pub const CALIBRATION_KEY: &str = "calibration/spin";

/// Measures the calibration spin (median of 5 passes, ms/run).
pub fn calibration_record() -> BenchRecord {
    time_median(5, calibration_spin).cost_record(CALIBRATION_KEY)
}

/// A fixed workload whose profile resembles the simulator's: integer
/// arithmetic interleaved with random loads over a 32 MiB buffer (far
/// beyond any LLC), so its wall-clock tracks both CPU speed and the
/// memory-subsystem pressure a co-tenant or a different runner class
/// imposes. A pure ALU spin would miss bandwidth contention — the
/// component that hits the cache-model-heavy simulator hardest.
fn calibration_spin() {
    use std::sync::OnceLock;
    static BUF: OnceLock<Vec<u64>> = OnceLock::new();
    let buf = BUF.get_or_init(|| {
        let mut x = 0x1234_5678_9abc_def0u64;
        (0..(4usize << 20))
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    });
    let mask = (buf.len() - 1) as u64;
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut sum = 0u64;
    for _ in 0..2_000_000u64 {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        x ^= x >> 33;
        sum = sum.wrapping_add(buf[(x & mask) as usize]);
    }
    std::hint::black_box(sum);
}

/// One measured case: a median over `samples` repeats with the observed
/// spread.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Case name, e.g. `fig8/Em3d/Bingo` or `prefetcher_access/spp`.
    pub key: String,
    /// Measurement unit; `…/s` units compare higher-is-better.
    pub unit: String,
    /// Median over the samples.
    pub median: f64,
    /// Smallest observed sample.
    pub lo: f64,
    /// Largest observed sample.
    pub hi: f64,
    /// Number of samples the median was taken over.
    pub samples: u32,
}

impl BenchRecord {
    /// Whether larger values of this record's unit are better.
    pub fn higher_is_better(&self) -> bool {
        self.unit.ends_with("/s")
    }

    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"key\":{},\"unit\":{},\"median\":{},\"lo\":{},\"hi\":{},\"samples\":{}}}",
            json_string(&self.key),
            json_string(&self.unit),
            json_f64(self.median),
            json_f64(self.lo),
            json_f64(self.hi),
            self.samples,
        )
    }

    /// Parses one JSON line produced by [`BenchRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(line: &str) -> Result<BenchRecord, String> {
        let fields = parse_flat_object(line)?;
        let get = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("missing field {name:?} in {line:?}"))
        };
        let num = |name: &str| -> Result<f64, String> {
            let raw = get(name)?;
            raw.parse::<f64>()
                .map_err(|e| format!("field {name:?}: {e} in {line:?}"))
        };
        Ok(BenchRecord {
            key: unquote(get("key")?)?,
            unit: unquote(get("unit")?)?,
            median: num("median")?,
            lo: num("lo")?,
            hi: num("hi")?,
            samples: num("samples")? as u32,
        })
    }
}

/// Formats a float so that `f64::parse` round-trips it.
fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Minimal JSON string escaping (keys and units are ASCII identifiers).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn unquote(raw: &str) -> Result<String, String> {
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a JSON string, got {raw:?}"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => return Err(format!("unsupported escape {other:?} in {raw:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Splits a flat one-line JSON object into raw `(key, value)` pairs.
/// Handles only what [`BenchRecord::to_json`] emits: string and number
/// values, no nesting.
fn parse_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
    let mut fields = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (key_raw, after_key) = take_token(rest)?;
        let after_colon = after_key
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after {key_raw:?} in {line:?}"))?;
        let (value, after_value) = take_token(after_colon)?;
        fields.push((unquote(&key_raw)?, value));
        rest = after_value.strip_prefix(',').unwrap_or(after_value);
        if after_value == rest && !rest.is_empty() && !after_value.starts_with(',') {
            return Err(format!("expected ',' between fields in {line:?}"));
        }
    }
    Ok(fields)
}

/// Takes one string or number token off the front of `rest`.
fn take_token(rest: &str) -> Result<(String, &str), String> {
    let rest = rest.trim_start();
    if let Some(inner) = rest.strip_prefix('"') {
        let mut escaped = false;
        for (i, c) in inner.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Ok((rest[..i + 2].to_string(), &inner[i + 1..]));
            }
        }
        Err(format!("unterminated string in {rest:?}"))
    } else {
        let end = rest.find([':', ',', '}']).unwrap_or(rest.len());
        if end == 0 {
            return Err(format!("empty token at {rest:?}"));
        }
        Ok((rest[..end].trim().to_string(), &rest[end..]))
    }
}

/// Loads every record of a bench-JSON file, in file order.
///
/// # Errors
///
/// Returns I/O errors and the first malformed line (with its number).
pub fn load_records(path: &Path) -> io::Result<Vec<BenchRecord>> {
    let text = std::fs::read_to_string(path)?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = BenchRecord::from_json(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), i + 1),
            )
        })?;
        records.push(record);
    }
    Ok(records)
}

/// A merging, deduplicating writer of [`BenchRecord`]s.
///
/// Each [`BenchWriter::record`] call rewrites the target file atomically
/// (temp file + rename) with the merged record set: existing keys not
/// re-measured by this process are preserved, re-measured keys are
/// replaced, and a key recorded twice by this process is written once
/// (first measurement wins, matching the stats-export dedup policy).
///
/// With `BINGO_BENCH_MERGE=best` a re-measured key instead keeps
/// whichever record is *better* (by its unit's direction). Repeated
/// `cargo bench` runs into the same file then accumulate a best-of-runs
/// snapshot: contention from co-tenant load only ever adds time, so the
/// per-key minimum converges on the host's intrinsic speed — the right
/// baseline to commit from a shared or otherwise noisy machine.
#[derive(Debug)]
pub struct BenchWriter {
    path: PathBuf,
    records: Vec<BenchRecord>,
    written: HashSet<String>,
    keep_best: bool,
}

/// Environment variable selecting the writer's cross-run merge policy:
/// unset/`replace` overwrites re-measured keys, `best` keeps the better
/// of the existing and new record.
pub const BENCH_MERGE_ENV: &str = "BINGO_BENCH_MERGE";

impl BenchWriter {
    /// Opens (or creates) the bench-record file at `path`, loading any
    /// existing records for merging.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from reading an existing file, and data errors
    /// from malformed existing records — a corrupt snapshot must be fixed
    /// or deleted explicitly, never silently clobbered.
    pub fn open(path: impl AsRef<Path>) -> io::Result<BenchWriter> {
        let path = path.as_ref().to_path_buf();
        let records = match load_records(&path) {
            Ok(records) => records,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(BenchWriter {
            path,
            records,
            written: HashSet::new(),
            keep_best: false,
        })
    }

    /// Switches the cross-run merge policy to keep-the-better-record.
    pub fn keep_best(mut self) -> BenchWriter {
        self.keep_best = true;
        self
    }

    /// Builds the writer named by `BINGO_BENCH_JSON`, or `None` when the
    /// variable is unset. `BINGO_BENCH_MERGE=best` selects the
    /// keep-the-better-record policy.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set but the file cannot be opened or
    /// parsed (a run asked to record measurements must not drop them), or
    /// if `BINGO_BENCH_MERGE` names an unknown policy.
    pub fn from_env() -> Option<BenchWriter> {
        let path = std::env::var(BENCH_JSON_ENV).ok()?;
        let writer = BenchWriter::open(&path)
            .unwrap_or_else(|e| panic!("{BENCH_JSON_ENV}: cannot open {path:?}: {e}"));
        match std::env::var(BENCH_MERGE_ENV).as_deref() {
            Ok("best") => Some(writer.keep_best()),
            Ok("replace") | Err(_) => Some(writer),
            Ok(other) => panic!("{BENCH_MERGE_ENV}={other:?}: expected \"best\" or \"replace\""),
        }
    }

    /// The target file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records one measurement and rewrites the file. A key already
    /// recorded by this writer is skipped.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from rewriting the file.
    pub fn record(&mut self, record: BenchRecord) -> io::Result<()> {
        if !self.written.insert(record.key.clone()) {
            return Ok(());
        }
        if let Some(existing) = self.records.iter_mut().find(|r| r.key == record.key) {
            let keep_existing = self.keep_best
                && existing.unit == record.unit
                && if record.higher_is_better() {
                    existing.median >= record.median
                } else {
                    existing.median <= record.median
                };
            if !keep_existing {
                *existing = record;
            }
        } else {
            self.records.push(record);
        }
        self.rewrite()
    }

    /// Records and panics on failure — the loud path for bench binaries.
    ///
    /// # Panics
    ///
    /// Panics on any I/O error, naming the file.
    pub fn record_or_die(&mut self, record: BenchRecord) {
        let key = record.key.clone();
        if let Err(e) = self.record(record) {
            panic!("cannot record {key:?} to {:?}: {e}", self.path);
        }
    }

    /// Atomically replaces the target file with the merged record set.
    fn rewrite(&self) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = self.path.with_extension("json.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            for r in &self.records {
                f.write_all(r.to_json().as_bytes())?;
                f.write_all(b"\n")?;
            }
            f.flush()?;
        }
        std::fs::rename(&tmp, &self.path)
    }
}

/// Median-of-N timing: runs `f` once untimed (warmup), then `samples`
/// timed passes, and returns the per-pass statistics in milliseconds.
pub fn time_median(samples: u32, mut f: impl FnMut()) -> Sample {
    assert!(samples > 0, "need at least one sample");
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    Sample {
        median: times[times.len() / 2],
        lo: times[0],
        hi: times[times.len() - 1],
        samples,
    }
}

/// Per-pass wall-clock statistics from [`time_median`], in milliseconds.
#[derive(Copy, Clone, Debug)]
pub struct Sample {
    /// Median pass time (ms).
    pub median: f64,
    /// Fastest pass (ms).
    pub lo: f64,
    /// Slowest pass (ms).
    pub hi: f64,
    /// Number of timed passes.
    pub samples: u32,
}

impl Sample {
    /// Converts to a record measuring cost in `ms/run`.
    pub fn cost_record(&self, key: &str) -> BenchRecord {
        BenchRecord {
            key: key.to_string(),
            unit: "ms/run".to_string(),
            median: self.median,
            lo: self.lo,
            hi: self.hi,
            samples: self.samples,
        }
    }

    /// Converts to a throughput record in `Minstr/s`, given the number of
    /// simulated instructions each pass executes. The spread maps
    /// inversely: the fastest pass is the highest throughput.
    pub fn throughput_record(&self, key: &str, instructions: f64) -> BenchRecord {
        let to_minstr_s = |ms: f64| instructions / (ms * 1e-3) / 1e6;
        BenchRecord {
            key: key.to_string(),
            unit: "Minstr/s".to_string(),
            median: to_minstr_s(self.median),
            lo: to_minstr_s(self.hi),
            hi: to_minstr_s(self.lo),
            samples: self.samples,
        }
    }
}

impl fmt::Display for BenchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} {} (lo {:.3}, hi {:.3}, n={})",
            self.key, self.median, self.unit, self.lo, self.hi, self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: &str, median: f64) -> BenchRecord {
        BenchRecord {
            key: key.to_string(),
            unit: "ms/run".to_string(),
            median,
            lo: median * 0.9,
            hi: median * 1.1,
            samples: 5,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn json_round_trips() {
        let r = BenchRecord {
            key: "fig8/Em3d/Bingo".to_string(),
            unit: "Minstr/s".to_string(),
            median: 12.625,
            lo: 11.0,
            hi: 13.5,
            samples: 5,
        };
        let parsed = BenchRecord::from_json(&r.to_json()).expect("parse back");
        assert_eq!(parsed, r);
        assert!(parsed.higher_is_better());
        assert!(!rec("x", 1.0).higher_is_better());
    }

    #[test]
    fn malformed_lines_are_rejected_loudly() {
        for bad in [
            "not json",
            "{\"key\":\"a\"}",
            "{\"key\":\"a\",\"unit\":\"ms/run\",\"median\":\"abc\",\"lo\":1,\"hi\":2,\"samples\":3}",
        ] {
            assert!(BenchRecord::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn writer_merges_and_replaces_by_key() {
        let path = tmp("merge.json");
        let _ = std::fs::remove_file(&path);
        let mut w = BenchWriter::open(&path).expect("open fresh");
        w.record(rec("a", 1.0)).expect("a");
        w.record(rec("b", 2.0)).expect("b");
        drop(w);
        // A second writer (another bench binary) updates one key and adds
        // another; the untouched key survives.
        let mut w = BenchWriter::open(&path).expect("reopen");
        w.record(rec("b", 5.0)).expect("update b");
        w.record(rec("c", 3.0)).expect("add c");
        drop(w);
        let records = load_records(&path).expect("load");
        let get = |k: &str| {
            records
                .iter()
                .find(|r| r.key == k)
                .unwrap_or_else(|| panic!("missing {k}"))
                .median
        };
        assert_eq!(records.len(), 3);
        assert_eq!(get("a"), 1.0);
        assert_eq!(get("b"), 5.0);
        assert_eq!(get("c"), 3.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keep_best_policy_prefers_better_existing_records() {
        let path = tmp("keepbest.json");
        let _ = std::fs::remove_file(&path);
        let mut w = BenchWriter::open(&path).expect("open").keep_best();
        w.record(rec("cost", 5.0)).expect("seed cost");
        drop(w);
        // Second "run": a slower cost is discarded, a faster one kept.
        let mut w = BenchWriter::open(&path).expect("reopen").keep_best();
        w.record(rec("cost", 9.0)).expect("slower ignored");
        drop(w);
        let mut w = BenchWriter::open(&path).expect("reopen").keep_best();
        w.record(rec("cost", 3.0)).expect("faster kept");
        // Throughput direction: higher wins.
        let thru = |median: f64| BenchRecord {
            key: "thru".to_string(),
            unit: "Minstr/s".to_string(),
            median,
            lo: median,
            hi: median,
            samples: 3,
        };
        w.record(thru(40.0)).expect("seed thru");
        drop(w);
        let mut w = BenchWriter::open(&path).expect("reopen").keep_best();
        w.record(thru(55.0)).expect("higher kept");
        drop(w);
        let records = load_records(&path).expect("load");
        let get = |k: &str| records.iter().find(|r| r.key == k).expect(k).median;
        assert_eq!(get("cost"), 3.0);
        assert_eq!(get("thru"), 55.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repeat_keys_in_one_process_dedupe() {
        let path = tmp("dedupe.json");
        let _ = std::fs::remove_file(&path);
        let mut w = BenchWriter::open(&path).expect("open");
        w.record(rec("a", 1.0)).expect("first");
        w.record(rec("a", 9.0)).expect("dup is a no-op");
        drop(w);
        let records = load_records(&path).expect("load");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].median, 1.0, "first measurement wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_existing_file_fails_open_instead_of_clobbering() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, "{malformed\n").expect("seed corrupt file");
        let err = BenchWriter::open(&path).expect_err("must refuse to open");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The corrupt content is still there for inspection.
        let text = std::fs::read_to_string(&path).expect("still readable");
        assert!(text.contains("malformed"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn time_median_orders_spread() {
        let mut n = 0u64;
        let s = time_median(5, || {
            n += 1;
            std::hint::black_box(n);
        });
        assert!(s.lo <= s.median && s.median <= s.hi);
        assert_eq!(s.samples, 5);
        let t = s.throughput_record("k", 1_000_000.0);
        assert!(t.lo <= t.median && t.median <= t.hi);
    }
}
