//! Shared parsing for `BINGO_*` environment knobs.
//!
//! Every harness knob — scale overrides, telemetry level, throttle mode,
//! queue-depth overrides — funnels its failure path through [`parse`], so
//! a typo'd value aborts the run with one uniform message shape
//! (`<NAME> must be <expectation>, got <value>`) instead of each call
//! site inventing its own, or worse, silently falling back to a default
//! and producing numbers from the wrong configuration.

/// Parses a knob value, aborting loudly on garbage.
///
/// The value is trimmed before parsing; the panic message quotes the
/// original untrimmed value so the user sees exactly what the
/// environment held.
///
/// # Panics
///
/// Panics with `"{name} must be {expectation}, got {value:?}"` if
/// `parser` rejects the trimmed value.
pub fn parse<T>(
    name: &str,
    value: &str,
    expectation: &str,
    parser: impl FnOnce(&str) -> Option<T>,
) -> T {
    parser(value.trim()).unwrap_or_else(|| panic!("{name} must be {expectation}, got {value:?}"))
}

/// Reads and parses an optional knob from the environment: `None` when
/// the variable is unset.
///
/// # Panics
///
/// Panics (via [`parse`]) if the variable is set but malformed — a set
/// knob is a statement of intent, and intent that cannot be honored must
/// abort the run, not degrade it silently.
pub fn from_env<T>(
    name: &str,
    expectation: &str,
    parser: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    std::env::var(name)
        .ok()
        .map(|v| parse(name, &v, expectation, parser))
}

/// Environment variable overriding the LLC prefetch-queue depth for
/// pressure studies (consumed by the `stress_degrade` binary; the
/// default harness keeps the paper configuration's unbounded queue so
/// checkpoint keys stay stable).
pub const PF_QUEUE_ENV: &str = "BINGO_PF_QUEUE";

/// Reads [`PF_QUEUE_ENV`]: `None` when unset.
///
/// # Panics
///
/// Panics if the variable is set but not a positive integer.
pub fn pf_queue_from_env() -> Option<usize> {
    let depth = from_env(PF_QUEUE_ENV, "a positive integer", |v| {
        v.parse::<usize>().ok()
    })?;
    assert!(
        depth > 0,
        "{PF_QUEUE_ENV} must be a positive integer, got 0"
    );
    Some(depth)
}

/// Environment variable overriding the records-per-chunk of captured
/// traces (consumed by `trace_capture` and the trace fuzzer; replay
/// reads the chunk size from the file header, so this only affects
/// newly written captures).
pub const TRACE_CHUNK_ENV: &str = "BINGO_TRACE_CHUNK";

/// Reads [`TRACE_CHUNK_ENV`]: `None` when unset.
///
/// # Panics
///
/// Panics if the variable is set but not a positive integer within the
/// format's per-chunk cap.
pub fn trace_chunk_from_env() -> Option<u32> {
    let records = from_env(TRACE_CHUNK_ENV, "a positive integer", |v| {
        v.parse::<u32>().ok()
    })?;
    assert!(
        records > 0 && records <= bingo_trace::MAX_CHUNK_RECORDS,
        "{TRACE_CHUNK_ENV} must be a positive integer <= {}, got {records}",
        bingo_trace::MAX_CHUNK_RECORDS
    );
    Some(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_trims_and_converts() {
        let n: u64 = parse("BINGO_TEST", " 42 ", "an unsigned integer", |v| {
            v.parse().ok()
        });
        assert_eq!(n, 42);
    }

    #[test]
    #[should_panic(expected = "BINGO_TEST must be an unsigned integer, got \"4x2\"")]
    fn parse_panics_with_the_uniform_message() {
        let _: u64 = parse("BINGO_TEST", "4x2", "an unsigned integer", |v| {
            v.parse().ok()
        });
    }

    #[test]
    #[should_panic(expected = "BINGO_TRACE_CHUNK must be a positive integer")]
    fn trace_chunk_rejects_zero() {
        // Hermetic mirror of `trace_chunk_from_env`'s bounds check.
        let records: u32 = parse(TRACE_CHUNK_ENV, "0", "a positive integer", |v| {
            v.parse().ok()
        });
        assert!(
            records > 0 && records <= bingo_trace::MAX_CHUNK_RECORDS,
            "{TRACE_CHUNK_ENV} must be a positive integer <= {}, got {records}",
            bingo_trace::MAX_CHUNK_RECORDS
        );
    }

    #[test]
    #[should_panic(expected = "BINGO_PF_QUEUE must be a positive integer")]
    fn pf_queue_rejects_zero() {
        // Exercised through `parse` directly to stay hermetic (no process
        // environment mutation in tests): zero passes the integer parse
        // and must be caught by the positivity assert.
        let depth: usize = parse(PF_QUEUE_ENV, "0", "a positive integer", |v| v.parse().ok());
        assert!(
            depth > 0,
            "{PF_QUEUE_ENV} must be a positive integer, got 0"
        );
    }
}
