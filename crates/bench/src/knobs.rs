//! Shared parsing for `BINGO_*` environment knobs.
//!
//! Every harness knob — scale overrides, telemetry level, throttle mode,
//! queue-depth overrides — funnels its failure path through [`parse`], so
//! a typo'd value aborts the run with one uniform message shape
//! (`<NAME> must be <expectation>, got <value>`) instead of each call
//! site inventing its own, or worse, silently falling back to a default
//! and producing numbers from the wrong configuration.

/// Parses a knob value, aborting loudly on garbage.
///
/// The value is trimmed before parsing; the panic message quotes the
/// original untrimmed value so the user sees exactly what the
/// environment held.
///
/// # Panics
///
/// Panics with `"{name} must be {expectation}, got {value:?}"` if
/// `parser` rejects the trimmed value.
pub fn parse<T>(
    name: &str,
    value: &str,
    expectation: &str,
    parser: impl FnOnce(&str) -> Option<T>,
) -> T {
    parser(value.trim()).unwrap_or_else(|| panic!("{name} must be {expectation}, got {value:?}"))
}

/// Reads and parses an optional knob from the environment: `None` when
/// the variable is unset.
///
/// # Panics
///
/// Panics (via [`parse`]) if the variable is set but malformed — a set
/// knob is a statement of intent, and intent that cannot be honored must
/// abort the run, not degrade it silently.
pub fn from_env<T>(
    name: &str,
    expectation: &str,
    parser: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    std::env::var(name)
        .ok()
        .map(|v| parse(name, &v, expectation, parser))
}

/// Environment variable overriding the LLC prefetch-queue depth for
/// pressure studies (consumed by the `stress_degrade` binary; the
/// default harness keeps the paper configuration's unbounded queue so
/// checkpoint keys stay stable).
pub const PF_QUEUE_ENV: &str = "BINGO_PF_QUEUE";

/// Reads [`PF_QUEUE_ENV`]: `None` when unset.
///
/// # Panics
///
/// Panics if the variable is set but not a positive integer.
pub fn pf_queue_from_env() -> Option<usize> {
    let depth = from_env(PF_QUEUE_ENV, "a positive integer", |v| {
        v.parse::<usize>().ok()
    })?;
    assert!(
        depth > 0,
        "{PF_QUEUE_ENV} must be a positive integer, got 0"
    );
    Some(depth)
}

/// Environment variable overriding the records-per-chunk of captured
/// traces (consumed by `trace_capture` and the trace fuzzer; replay
/// reads the chunk size from the file header, so this only affects
/// newly written captures).
pub const TRACE_CHUNK_ENV: &str = "BINGO_TRACE_CHUNK";

/// Reads [`TRACE_CHUNK_ENV`]: `None` when unset.
///
/// # Panics
///
/// Panics if the variable is set but not a positive integer within the
/// format's per-chunk cap.
pub fn trace_chunk_from_env() -> Option<u32> {
    let records = from_env(TRACE_CHUNK_ENV, "a positive integer", |v| {
        v.parse::<u32>().ok()
    })?;
    assert!(
        records > 0 && records <= bingo_trace::MAX_CHUNK_RECORDS,
        "{TRACE_CHUNK_ENV} must be a positive integer <= {}, got {records}",
        bingo_trace::MAX_CHUNK_RECORDS
    );
    Some(records)
}

/// Environment variable overriding the per-core QoS starvation SLO used
/// by `BINGO_THROTTLE=percore`: the minimum acceptable min/max progress
/// ratio across cores before the watchdog clamps the offending cores.
/// Unset falls back to [`bingo_sim::DEFAULT_QOS_SLO`].
pub const QOS_SLO_ENV: &str = "BINGO_QOS_SLO";

/// Reads [`QOS_SLO_ENV`]: `None` when unset.
///
/// # Panics
///
/// Panics if the variable is set but is not a finite ratio in `(0, 1]`.
pub fn qos_slo_from_env() -> Option<f64> {
    let slo = from_env(QOS_SLO_ENV, "a ratio in (0, 1]", |v| v.parse::<f64>().ok())?;
    assert!(
        slo.is_finite() && slo > 0.0 && slo <= 1.0,
        "{QOS_SLO_ENV} must be a ratio in (0, 1], got {slo}"
    );
    Some(slo)
}

/// Environment variable gating the chaos cells of the figure binaries:
/// `standard` (the [`bingo_sim::ChaosPlan::standard`] perturbation
/// schedule, seeded from [`CHAOS_SEED_ENV`]) or `off` to skip them. The
/// chaos cells are part of the committed figures, so unset means
/// `standard`.
pub const CHAOS_ENV: &str = "BINGO_CHAOS";

/// Reads [`CHAOS_ENV`]: `true` when unset.
///
/// # Panics
///
/// Panics if the variable is set but is neither `off` nor `standard` —
/// an unrecognized chaos spec must not silently run a calm simulation
/// and report its numbers as chaos-hardened.
pub fn chaos_from_env() -> bool {
    from_env(CHAOS_ENV, "one of off/standard", |v| match v {
        "off" => Some(false),
        "standard" => Some(true),
        _ => None,
    })
    .unwrap_or(true)
}

/// Environment variable seeding the chaos injector's PRNG when
/// [`CHAOS_ENV`] is `standard`. Unset uses the documented default so CI
/// cells replay bit-for-bit.
pub const CHAOS_SEED_ENV: &str = "BINGO_CHAOS_SEED";

/// Default chaos seed: committed so every CI chaos cell replays the same
/// perturbation log.
pub const DEFAULT_CHAOS_SEED: u64 = 0xB1A60;

/// Reads [`CHAOS_SEED_ENV`], defaulting to [`DEFAULT_CHAOS_SEED`].
///
/// # Panics
///
/// Panics if the variable is set but not an unsigned 64-bit integer.
pub fn chaos_seed_from_env() -> u64 {
    from_env(CHAOS_SEED_ENV, "an unsigned 64-bit integer", |v| {
        v.parse::<u64>().ok()
    })
    .unwrap_or(DEFAULT_CHAOS_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_trims_and_converts() {
        let n: u64 = parse("BINGO_TEST", " 42 ", "an unsigned integer", |v| {
            v.parse().ok()
        });
        assert_eq!(n, 42);
    }

    #[test]
    #[should_panic(expected = "BINGO_TEST must be an unsigned integer, got \"4x2\"")]
    fn parse_panics_with_the_uniform_message() {
        let _: u64 = parse("BINGO_TEST", "4x2", "an unsigned integer", |v| {
            v.parse().ok()
        });
    }

    #[test]
    #[should_panic(expected = "BINGO_TRACE_CHUNK must be a positive integer")]
    fn trace_chunk_rejects_zero() {
        // Hermetic mirror of `trace_chunk_from_env`'s bounds check.
        let records: u32 = parse(TRACE_CHUNK_ENV, "0", "a positive integer", |v| {
            v.parse().ok()
        });
        assert!(
            records > 0 && records <= bingo_trace::MAX_CHUNK_RECORDS,
            "{TRACE_CHUNK_ENV} must be a positive integer <= {}, got {records}",
            bingo_trace::MAX_CHUNK_RECORDS
        );
    }

    #[test]
    #[should_panic(expected = "BINGO_QOS_SLO must be a ratio in (0, 1], got \"fast\"")]
    fn qos_slo_rejects_non_numeric() {
        let _: f64 = parse(QOS_SLO_ENV, "fast", "a ratio in (0, 1]", |v| v.parse().ok());
    }

    #[test]
    #[should_panic(expected = "BINGO_QOS_SLO must be a ratio in (0, 1], got 0")]
    fn qos_slo_rejects_zero() {
        // Hermetic mirror of `qos_slo_from_env`'s bounds check: zero parses
        // as a float and must be caught by the range assert.
        let slo: f64 = parse(QOS_SLO_ENV, "0", "a ratio in (0, 1]", |v| v.parse().ok());
        assert!(
            slo.is_finite() && slo > 0.0 && slo <= 1.0,
            "{QOS_SLO_ENV} must be a ratio in (0, 1], got {slo}"
        );
    }

    #[test]
    #[should_panic(expected = "BINGO_QOS_SLO must be a ratio in (0, 1], got 1.5")]
    fn qos_slo_rejects_above_one() {
        let slo: f64 = parse(QOS_SLO_ENV, "1.5", "a ratio in (0, 1]", |v| v.parse().ok());
        assert!(
            slo.is_finite() && slo > 0.0 && slo <= 1.0,
            "{QOS_SLO_ENV} must be a ratio in (0, 1], got {slo}"
        );
    }

    #[test]
    #[should_panic(expected = "BINGO_QOS_SLO must be a ratio in (0, 1], got NaN")]
    fn qos_slo_rejects_nan() {
        let slo: f64 = parse(QOS_SLO_ENV, "NaN", "a ratio in (0, 1]", |v| v.parse().ok());
        assert!(
            slo.is_finite() && slo > 0.0 && slo <= 1.0,
            "{QOS_SLO_ENV} must be a ratio in (0, 1], got {slo}"
        );
    }

    #[test]
    #[should_panic(expected = "BINGO_CHAOS must be one of off/standard, got \"maximum\"")]
    fn chaos_rejects_unknown_spec() {
        let _: bool = parse(CHAOS_ENV, "maximum", "one of off/standard", |v| match v {
            "off" => Some(false),
            "standard" => Some(true),
            _ => None,
        });
    }

    #[test]
    fn chaos_parses_both_modes() {
        let spec = |v: &str| match v {
            "off" => Some(false),
            "standard" => Some(true),
            _ => None,
        };
        assert!(!parse(CHAOS_ENV, "off", "one of off/standard", spec));
        assert!(parse(CHAOS_ENV, " standard ", "one of off/standard", spec));
    }

    #[test]
    #[should_panic(expected = "BINGO_CHAOS_SEED must be an unsigned 64-bit integer, got \"-1\"")]
    fn chaos_seed_rejects_negative() {
        let _: u64 = parse(CHAOS_SEED_ENV, "-1", "an unsigned 64-bit integer", |v| {
            v.parse().ok()
        });
    }

    #[test]
    #[should_panic(expected = "BINGO_PF_QUEUE must be a positive integer")]
    fn pf_queue_rejects_zero() {
        // Exercised through `parse` directly to stay hermetic (no process
        // environment mutation in tests): zero passes the integer parse
        // and must be caught by the positivity assert.
        let depth: usize = parse(PF_QUEUE_ENV, "0", "a positive integer", |v| v.parse().ok());
        assert!(
            depth > 0,
            "{PF_QUEUE_ENV} must be a positive integer, got 0"
        );
    }
}
