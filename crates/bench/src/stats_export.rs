//! Machine-readable stats export: one JSON line per completed sweep cell.
//!
//! Point `BINGO_STATS` at a file (or a directory — the file is then named
//! after the running binary) and every bench binary writes each completed
//! cell's full [`SimResult`] — telemetry report included, when enabled —
//! as one self-contained JSON line, in the same format the crash-safe
//! checkpoint uses (floats as IEEE-754 bit patterns, see
//! [`crate::checkpoint`]). CI uploads the file as an artifact; offline
//! analysis parses it with any JSON reader.
//!
//! Unlike the checkpoint (an append-only resume log), the export is a
//! *report*: it is truncated on creation, written in deterministic order
//! (baselines first, then cells in grid order), and deduplicates keys so
//! repeated grids over the same harness cannot double-report a cell.

use std::collections::HashSet;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use bingo_sim::SimResult;

use crate::checkpoint::serialize_entry;

/// Environment variable naming the stats-export file (or directory) for
/// CLI sweeps.
pub const STATS_ENV: &str = "BINGO_STATS";

/// A deduplicating JSONL writer of completed cell results.
#[derive(Debug)]
pub struct StatsExport {
    path: PathBuf,
    writer: Mutex<File>,
    written: Mutex<HashSet<String>>,
}

impl StatsExport {
    /// Creates (truncating) the export file. A path that names an existing
    /// directory or ends in a separator is treated as a directory and the
    /// file inside it is named `<binary>.json` after the running
    /// executable, so one `BINGO_STATS=results/` serves every binary of a
    /// multi-figure run.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file (parent directories
    /// are created as needed).
    pub fn create(path: impl AsRef<Path>) -> io::Result<StatsExport> {
        let path = resolve_path(path.as_ref());
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let writer = File::create(&path)?;
        Ok(StatsExport {
            path,
            writer: Mutex::new(writer),
            written: Mutex::new(HashSet::new()),
        })
    }

    /// Builds the export named by `BINGO_STATS`, or `None` when unset.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set but the file cannot be created: a
    /// run asked to export stats must not silently drop them.
    pub fn from_env() -> Option<StatsExport> {
        let path = std::env::var(STATS_ENV).ok()?;
        Some(
            StatsExport::create(&path)
                .unwrap_or_else(|e| panic!("{STATS_ENV}: cannot create {path:?}: {e}")),
        )
    }

    /// The resolved output file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one cell as a JSON line, flushed immediately. A key already
    /// written is skipped — repeated grids over one harness report each
    /// cell once.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from appending to the export file.
    pub fn record(&self, key: &str, result: &SimResult) -> io::Result<()> {
        if !lock(&self.written).insert(key.to_string()) {
            return Ok(());
        }
        let line = serialize_entry(key, result);
        let mut writer = lock(&self.writer);
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()
    }
}

/// Maps a directory-like path to `<dir>/<binary>.json`.
fn resolve_path(path: &Path) -> PathBuf {
    let dir_like = path.is_dir()
        || path
            .to_str()
            .is_some_and(|s| s.ends_with('/') || s.ends_with(std::path::MAIN_SEPARATOR));
    if dir_like {
        path.join(format!("{}.json", current_binary_name()))
    } else {
        path.to_path_buf()
    }
}

/// The running executable's stem, for directory-target file naming.
fn current_binary_name() -> String {
    std::env::current_exe()
        .ok()
        .as_deref()
        .and_then(Path::file_stem)
        .and_then(|s| s.to_str())
        // Test binaries carry a `-<hash>` suffix; strip it so reruns
        // overwrite instead of accumulating.
        .map(|s| s.rsplit_once('-').map_or(s, |(stem, _)| stem).to_string())
        .unwrap_or_else(|| "bench".to_string())
}

/// Locks a mutex, ignoring poisoning: the export state is a plain set and
/// file handle, consistent even if another thread panicked mid-sweep.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{CacheStats, CoreStats};

    fn sample(salt: u64) -> SimResult {
        SimResult {
            cores: vec![CoreStats {
                instructions: salt,
                cycles: 2 * salt,
                ..CoreStats::default()
            }],
            l1d: CacheStats::default(),
            llc: CacheStats::default(),
            dram_transfers: 1,
            total_cycles: 2 * salt,
            prefetcher_debug: vec![],
            prefetcher_metrics: vec![vec![]],
            telemetry: None,
            ingest: None,
            qos: None,
        }
    }

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-stats-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn writes_one_line_per_unique_key() {
        let path = tmp_dir().join("unique.json");
        let export = StatsExport::create(&path).expect("create");
        export.record("a", &sample(1)).expect("write a");
        export.record("b", &sample(2)).expect("write b");
        export.record("a", &sample(3)).expect("dup is a no-op");
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "duplicate key must not re-export");
        assert!(lines[0].contains("\"key\":\"a\""));
        assert!(lines[1].contains("\"key\":\"b\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_truncates_previous_report() {
        let path = tmp_dir().join("truncate.json");
        let export = StatsExport::create(&path).expect("create");
        export.record("stale", &sample(1)).expect("write");
        drop(export);
        let export = StatsExport::create(&path).expect("recreate");
        export.record("fresh", &sample(2)).expect("write");
        drop(export);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(!text.contains("stale"), "report is truncated, not appended");
        assert!(text.contains("fresh"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn directory_target_names_file_after_binary() {
        let dir = tmp_dir().join("results");
        std::fs::create_dir_all(&dir).expect("dir");
        let export = StatsExport::create(&dir).expect("create in dir");
        assert_eq!(export.path().parent(), Some(dir.as_path()));
        assert!(export.path().extension().is_some_and(|e| e == "json"));
        let _ = std::fs::remove_file(export.path());
    }

    #[test]
    fn missing_parent_directories_are_created() {
        let path = tmp_dir().join("deep/nested/out.json");
        let export = StatsExport::create(&path).expect("create with parents");
        export.record("k", &sample(1)).expect("write");
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }
}
