//! # bingo-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation. Each
//! binary in `src/bin/` prints one figure's data; `cargo run -p bingo-bench
//! --release --bin all` regenerates everything. Pass `--quick` for a
//! reduced instruction budget (CI scale).
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table1_config` | Table I system configuration + Bingo storage (§VI-A) |
//! | `table2_workloads` | Table II baseline LLC MPKI |
//! | `fig2_events` | Fig. 2: accuracy & match probability of 5 event heuristics |
//! | `fig3_num_events` | Fig. 3: coverage & accuracy vs number of events |
//! | `fig4_redundancy` | Fig. 4: metadata redundancy of two-table TAGE |
//! | `fig6_table_size` | Fig. 6: Bingo coverage vs history entries |
//! | `fig7_coverage` | Fig. 7: coverage & overprediction, 6 prefetchers |
//! | `fig8_performance` | Fig. 8: performance improvement |
//! | `fig9_density` | Fig. 9: performance-density improvement |
//! | `fig10_isodegree` | Fig. 10: iso-degree comparison |
//! | `fig_timeliness` | prefetch-lifecycle timeliness & event-kind attribution |
//! | `ablation_voting` / `ablation_region` | design-choice ablations |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod checkpoint;
pub mod differential;
pub mod knobs;
pub mod mix;
pub mod perf_record;
pub mod runner;
pub mod stats_export;
pub mod table;

pub use area::AreaModel;
pub use checkpoint::{Checkpoint, CHECKPOINT_ENV};
pub use differential::{
    bingo_config_variants, diff_bingo, diff_bingo_instances, diff_with_oracle, fuzz_baseline,
    fuzz_bingo, shrink_bingo_mismatch, FuzzFailure, FuzzReport, Mismatch,
};
pub use knobs::{
    chaos_from_env, chaos_seed_from_env, pf_queue_from_env, qos_slo_from_env, trace_chunk_from_env,
    CHAOS_ENV, CHAOS_SEED_ENV, DEFAULT_CHAOS_SEED, PF_QUEUE_ENV, QOS_SLO_ENV, TRACE_CHUNK_ENV,
};
pub use mix::{
    find_knee, CapacityCell, CapacitySearch, FairnessReport, MixAssignment, MixConfig, MixError,
    Pressure, Ramp, KNEE_FRACTION,
};
pub use perf_record::{
    calibration_record, load_records, time_median, BenchRecord, BenchWriter, Sample,
    BENCH_JSON_ENV, BENCH_MERGE_ENV, BENCH_THRESHOLD_ENV, CALIBRATION_KEY,
};
pub use runner::{
    cell_key, cell_key_with_options, cell_key_with_telemetry, default_jobs, geometric_mean, mean,
    mix_cell_key, mix_solo_key, parallel_map, run_cell, run_cell_configured, run_mix_configured,
    run_mix_qos, run_mix_solo_configured, run_one, run_one_configured, run_one_with_deadline,
    run_trace_cell, run_trace_one_configured, telemetry_from_env, throttle_from_env,
    trace_cell_key, CellFailure, CellOutcome, Evaluation, GridReport, Harness, MixCell,
    MixCellFailure, MixEvaluation, MixGridReport, ParallelHarness, PrefetcherKind, RunScale,
    TraceCellFailure, TraceEvaluation, TraceGridReport, CELL_TIMEOUT_ENV, TELEMETRY_ENV,
    THROTTLE_ENV,
};
pub use stats_export::{StatsExport, STATS_ENV};
pub use table::{f2, pct, Table};
